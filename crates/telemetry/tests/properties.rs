//! Property tests for the telemetry core: histogram merging is
//! commutative and associative, and the log2 bucketing tiles the full
//! `u64` range.

use proptest::prelude::*;

use orscope_telemetry::{bucket_bounds, bucket_index, HistogramSnapshot, Scope, BUCKET_COUNT};

/// Builds a histogram snapshot directly from samples.
fn histogram(samples: &[u64]) -> HistogramSnapshot {
    HistogramSnapshot::from_samples(Scope::Global, samples)
}

/// `a.absorb(b)` as a value.
fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.absorb(b);
    out
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merging per-shard histograms must not care which shard finishes
    /// first: `a + b == b + a`.
    #[test]
    fn histogram_absorb_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (histogram(&a), histogram(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    /// Nor how the merge tree is shaped: `(a + b) + c == a + (b + c)`.
    #[test]
    fn histogram_absorb_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (histogram(&a), histogram(&b), histogram(&c));
        prop_assert_eq!(
            merged(&merged(&ha, &hb), &hc),
            merged(&ha, &merged(&hb, &hc))
        );
    }

    /// Merging all shards at once equals merging them pairwise, and the
    /// result equals bucketing the concatenated sample stream directly.
    #[test]
    fn histogram_absorb_matches_concatenation(a in samples(), b in samples()) {
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged(&histogram(&a), &histogram(&b)), histogram(&all));
    }

    /// Every value lands in a bucket whose inclusive bounds contain it.
    #[test]
    fn bucket_bounds_round_trip(value in any::<u64>()) {
        let index = bucket_index(value);
        prop_assert!(index < BUCKET_COUNT);
        let (low, high) = bucket_bounds(index);
        prop_assert!(low <= value && value <= high);
    }

    /// Bucket boundaries themselves round-trip: the min and max of each
    /// bucket map back to that bucket.
    #[test]
    fn bucket_extremes_round_trip(index in 0usize..BUCKET_COUNT) {
        let (low, high) = bucket_bounds(index);
        prop_assert_eq!(bucket_index(low), index);
        prop_assert_eq!(bucket_index(high), index);
    }
}
