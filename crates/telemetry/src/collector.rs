//! The per-shard metric registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metric::{Counter, Gauge, Histogram, HistogramCore, BUCKET_COUNT};
use crate::snapshot::{HistogramSnapshot, MetricValue, SpanSnapshot, TelemetrySnapshot};
use crate::span::PhaseSpan;

/// Whether a metric is deterministic across shard layouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Per-flow deterministic: for a failure-free configuration the
    /// merged value is byte-identical across shard counts, so the metric
    /// joins the JSON-lines export.
    Global,
    /// Layout-dependent diagnostics (event counts, queue depths, pacer
    /// ticks): exported only in the Prometheus-style dump.
    Shard,
}

impl Scope {
    /// The label value used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Scope::Global => "global",
            Scope::Shard => "shard",
        }
    }
}

/// Per-span accumulation: count of recordings plus the maximum wall and
/// virtual duration seen (max, not sum, so merging parallel shards keeps
/// slowest-shard semantics, like `Dataset::merge` does for duration).
struct SpanCell {
    count: AtomicU64,
    wall_nanos: AtomicU64,
    virt_nanos: AtomicU64,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, (Scope, Arc<AtomicU64>)>,
    gauges: BTreeMap<String, (Scope, Arc<AtomicU64>)>,
    histograms: BTreeMap<String, (Scope, Arc<HistogramCore>)>,
    spans: BTreeMap<String, Arc<SpanCell>>,
}

/// A metric registry. Cloning shares the registry (it is a handle);
/// instrumented crates request pre-resolved [`Counter`]/[`Gauge`]/
/// [`Histogram`] handles once at wiring time and touch only atomics
/// afterwards.
///
/// A collector built with [`Collector::disabled`] hands out no-op
/// handles and snapshots to nothing, which is how the zero-overhead
/// configuration (and the `telemetry_overhead` bench baseline) works.
#[derive(Clone)]
pub struct Collector {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Collector {
    /// Same as [`Collector::new`]: enabled, with an empty registry.
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// An enabled collector with an empty registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// A disabled collector: every handle it hands out is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-opens) the counter `name` under `scope`.
    pub fn counter(&self, scope: Scope, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut registry = inner.lock().expect("registry poisoned");
        let (existing, cell) = registry
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| (scope, Arc::new(AtomicU64::new(0))));
        debug_assert_eq!(*existing, scope, "scope mismatch re-opening counter {name}");
        Counter(Some(cell.clone()))
    }

    /// Registers (or re-opens) the high-water gauge `name` under `scope`.
    pub fn gauge(&self, scope: Scope, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut registry = inner.lock().expect("registry poisoned");
        let (existing, cell) = registry
            .gauges
            .entry(name.to_owned())
            .or_insert_with(|| (scope, Arc::new(AtomicU64::new(0))));
        debug_assert_eq!(*existing, scope, "scope mismatch re-opening gauge {name}");
        Gauge(Some(cell.clone()))
    }

    /// Registers (or re-opens) the histogram `name` under `scope`.
    pub fn histogram(&self, scope: Scope, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::default();
        };
        let mut registry = inner.lock().expect("registry poisoned");
        let (existing, core) = registry
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| (scope, Arc::new(HistogramCore::new())));
        debug_assert_eq!(
            *existing, scope,
            "scope mismatch re-opening histogram {name}"
        );
        Histogram(Some(core.clone()))
    }

    /// Starts a phase span; finish it with
    /// [`PhaseSpan::finish_with_virtual`] (or drop it) to record.
    pub fn phase(&self, name: &str) -> PhaseSpan {
        PhaseSpan::start(self.clone(), name)
    }

    /// Records one completed span: `wall` from a monotonic clock, plus
    /// the virtual-time duration in SimNet nanoseconds.
    pub fn record_span(&self, name: &str, wall: Duration, virt_nanos: u64) {
        let Some(inner) = &self.inner else { return };
        let wall_nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        let mut registry = inner.lock().expect("registry poisoned");
        let cell = registry.spans.entry(name.to_owned()).or_insert_with(|| {
            Arc::new(SpanCell {
                count: AtomicU64::new(0),
                wall_nanos: AtomicU64::new(0),
                virt_nanos: AtomicU64::new(0),
            })
        });
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.wall_nanos.fetch_max(wall_nanos, Ordering::Relaxed);
        cell.virt_nanos.fetch_max(virt_nanos, Ordering::Relaxed);
    }

    /// Freezes the registry into an exportable snapshot. A disabled
    /// collector snapshots to the empty snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snapshot = TelemetrySnapshot::default();
        let Some(inner) = &self.inner else {
            return snapshot;
        };
        let registry = inner.lock().expect("registry poisoned");
        for (name, (scope, cell)) in &registry.counters {
            snapshot.counters.insert(
                name.clone(),
                MetricValue {
                    scope: *scope,
                    value: cell.load(Ordering::Relaxed),
                },
            );
        }
        for (name, (scope, cell)) in &registry.gauges {
            snapshot.gauges.insert(
                name.clone(),
                MetricValue {
                    scope: *scope,
                    value: cell.load(Ordering::Relaxed),
                },
            );
        }
        for (name, (scope, core)) in &registry.histograms {
            let count = core.count.load(Ordering::Relaxed);
            let mut buckets = vec![0u64; BUCKET_COUNT];
            for (slot, bucket) in buckets.iter_mut().zip(&core.buckets) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            snapshot.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    scope: *scope,
                    count,
                    sum: core.sum.load(Ordering::Relaxed),
                    min: if count == 0 {
                        0
                    } else {
                        core.min.load(Ordering::Relaxed)
                    },
                    max: core.max.load(Ordering::Relaxed),
                    buckets,
                },
            );
        }
        for (name, cell) in &registry.spans {
            snapshot.spans.insert(
                name.clone(),
                SpanSnapshot {
                    count: cell.count.load(Ordering::Relaxed),
                    wall_nanos: cell.wall_nanos.load(Ordering::Relaxed),
                    virt_nanos: cell.virt_nanos.load(Ordering::Relaxed),
                },
            );
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_by_name() {
        let collector = Collector::new();
        let a = collector.counter(Scope::Global, "x");
        let b = collector.counter(Scope::Global, "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(collector.snapshot().counters["x"].value, 3);
    }

    #[test]
    fn disabled_collector_snapshots_to_empty() {
        let collector = Collector::disabled();
        collector.counter(Scope::Global, "x").inc();
        collector.histogram(Scope::Global, "h").record(9);
        collector.record_span("s", Duration::from_millis(1), 5);
        let snapshot = collector.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.spans.is_empty());
    }

    #[test]
    fn span_merges_by_max() {
        let collector = Collector::new();
        collector.record_span("phase.x", Duration::from_nanos(10), 100);
        collector.record_span("phase.x", Duration::from_nanos(30), 40);
        let span = &collector.snapshot().spans["phase.x"];
        assert_eq!(span.count, 2);
        assert_eq!(span.wall_nanos, 30);
        assert_eq!(span.virt_nanos, 100);
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let collector = Collector::new();
        let _ = collector.histogram(Scope::Global, "h");
        let h = &collector.snapshot().histograms["h"];
        assert_eq!((h.count, h.min, h.max), (0, 0, 0));
    }
}
