//! Metric handles: pre-resolved atomics behind `Option`, so the hot path
//! is one branch plus one relaxed atomic operation (or nothing when the
//! owning collector is disabled).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a value lands in: bucket 0 holds exactly zero, bucket `i`
/// (`i >= 1`) holds `2^(i-1) ..= 2^i - 1`, and bucket 64 is capped at
/// `u64::MAX`.
///
/// ```
/// use orscope_telemetry::{bucket_bounds, bucket_index};
/// for v in [0, 1, 2, 3, 1_000_000, u64::MAX] {
///     let (lo, hi) = bucket_bounds(bucket_index(v));
///     assert!(lo <= v && v <= hi);
/// }
/// ```
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `(low, high)` range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    if index == 0 {
        (0, 0)
    } else {
        let low = 1u64 << (index - 1);
        let high = if index == 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        };
        (low, high)
    }
}

/// A monotonically increasing counter. Cloning shares the cell; the
/// default handle is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op when `n == 0` or the handle is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A high-water-mark gauge: `record_max` keeps the largest value seen,
/// which merges order-insensitively across shards.
///
/// Long-running services (the observatory's population-size and
/// epochs-completed gauges) instead use [`Gauge::set`], which stores the
/// current value: a population that shrinks must be able to pull its
/// gauge back down. Pick one discipline per gauge — a metric that mixes
/// `set` and `record_max` has no coherent merge semantics.
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Raises the gauge to `value` if it is a new maximum.
    #[inline]
    pub fn record_max(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Stores `value`, replacing whatever the gauge held (level
    /// semantics, for service gauges that go down as well as up).
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared storage behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: [AtomicU64; BUCKET_COUNT],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    /// `u64::MAX` until the first record.
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// depths, sizes). Recording is five relaxed atomic operations.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let Some(core) = &self.0 else { return };
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.count.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        // Buckets tile 0..=u64::MAX with no gaps or overlaps.
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut expected_low = 1u64;
        for index in 1..BUCKET_COUNT {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, expected_low, "gap before bucket {index}");
            assert!(high >= low);
            expected_low = high.wrapping_add(1);
        }
        assert_eq!(expected_low, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn bounds_round_trip_extremes() {
        for value in [0u64, 1, 2, u64::MAX - 1, u64::MAX] {
            let (low, high) = bucket_bounds(bucket_index(value));
            assert!(
                low <= value && value <= high,
                "{value} outside ({low}, {high})"
            );
        }
    }

    #[test]
    fn disabled_handles_are_no_ops() {
        let counter = Counter::default();
        counter.inc();
        assert_eq!(counter.get(), 0);
        let gauge = Gauge::default();
        gauge.record_max(7);
        assert_eq!(gauge.get(), 0);
        let histogram = Histogram::default();
        histogram.record(7);
        assert_eq!(histogram.count(), 0);
    }
}
