//! Phase spans: wall-clock plus virtual-time timers.

use std::time::Instant;

use crate::collector::Collector;

/// A running phase timer. Wall time runs from [`Collector::phase`] until
/// the span is finished (or dropped); the SimNet virtual-time component
/// is supplied explicitly via [`PhaseSpan::finish_with_virtual`], since
/// only the caller knows how much simulated time the phase covered.
///
/// Dropping a span records it with whatever virtual duration has been
/// set (zero by default), so early returns still produce a measurement.
#[derive(Debug)]
pub struct PhaseSpan {
    collector: Collector,
    name: String,
    started: Instant,
    virt_nanos: u64,
}

impl PhaseSpan {
    pub(crate) fn start(collector: Collector, name: &str) -> Self {
        Self {
            collector,
            name: name.to_owned(),
            started: Instant::now(),
            virt_nanos: 0,
        }
    }

    /// Ends the span, recording only wall-clock time (virtual time zero).
    /// Use for host-side phases like population build or analysis that
    /// consume no simulated time.
    pub fn finish(self) {
        drop(self);
    }

    /// Ends the span, recording `virt_nanos` of SimNet virtual time
    /// alongside the measured wall-clock duration.
    pub fn finish_with_virtual(mut self, virt_nanos: u64) {
        self.virt_nanos = virt_nanos;
        drop(self);
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        self.collector
            .record_span(&self.name, self.started.elapsed(), self.virt_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_wall_only() {
        let collector = Collector::new();
        collector.phase("phase.analyze").finish();
        let span = &collector.snapshot().spans["phase.analyze"];
        assert_eq!(span.count, 1);
        assert_eq!(span.virt_nanos, 0);
    }

    #[test]
    fn finish_with_virtual_records_both() {
        let collector = Collector::new();
        collector.phase("phase.probe").finish_with_virtual(42);
        let span = &collector.snapshot().spans["phase.probe"];
        assert_eq!(span.count, 1);
        assert_eq!(span.virt_nanos, 42);
    }

    #[test]
    fn disabled_collector_spans_are_no_ops() {
        let collector = Collector::disabled();
        collector.phase("phase.probe").finish_with_virtual(42);
        assert!(collector.snapshot().spans.is_empty());
    }
}
