//! Frozen telemetry: order-insensitive merging and the two exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::collector::Scope;
use crate::metric::{bucket_bounds, BUCKET_COUNT};

/// A counter or gauge value with its scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricValue {
    /// Shard-invariance class.
    pub scope: Scope,
    /// The recorded value.
    pub value: u64,
}

/// A frozen histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Shard-invariance class.
    pub scope: Scope,
    /// Total samples.
    pub count: u64,
    /// Sum of samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; see [`bucket_bounds`] for the ranges.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty histogram under `scope`.
    pub fn empty(scope: Scope) -> Self {
        Self {
            scope,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; BUCKET_COUNT],
        }
    }

    /// Builds a snapshot from raw samples (test and proptest helper).
    pub fn from_samples(scope: Scope, samples: &[u64]) -> Self {
        let mut snapshot = Self::empty(scope);
        for &value in samples {
            snapshot.buckets[crate::bucket_index(value)] += 1;
            snapshot.count += 1;
            snapshot.sum = snapshot.sum.wrapping_add(value);
            snapshot.min = if snapshot.count == 1 {
                value
            } else {
                snapshot.min.min(value)
            };
            snapshot.max = snapshot.max.max(value);
        }
        snapshot
    }

    /// Merges `other` in. Commutative and associative: bucket counts and
    /// totals add, extremes take min/max, so any merge order produces
    /// the same snapshot.
    pub fn absorb(&mut self, other: &Self) {
        debug_assert_eq!(self.scope, other.scope, "scope mismatch in absorb");
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// A frozen phase span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    /// Recordings merged in (one per shard for per-shard phases).
    pub count: u64,
    /// Maximum wall-clock duration in nanoseconds.
    pub wall_nanos: u64,
    /// Maximum SimNet virtual duration in nanoseconds.
    pub virt_nanos: u64,
}

impl SpanSnapshot {
    /// Merges `other` in: counts add, durations take the max (parallel
    /// shards overlap in wall time, so the sum would be meaningless).
    pub fn absorb(&mut self, other: &Self) {
        self.count += other.count;
        self.wall_nanos = self.wall_nanos.max(other.wall_nanos);
        self.virt_nanos = self.virt_nanos.max(other.virt_nanos);
    }
}

/// Everything a [`crate::Collector`] recorded, frozen for merging and
/// export. `BTreeMap` keys give both exporters a deterministic order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, MetricValue>,
    /// High-water gauges by name.
    pub gauges: BTreeMap<String, MetricValue>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Phase spans by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl TelemetrySnapshot {
    /// Merges `other` in, order-insensitively (mirroring
    /// `NetStats::absorb`): counters add, gauges keep the high-water
    /// mark, histograms and spans merge via their own `absorb`.
    ///
    /// ```
    /// use orscope_telemetry::{Collector, Scope};
    /// let shard = |n: u64| {
    ///     let c = Collector::new();
    ///     c.counter(Scope::Global, "x").add(n);
    ///     c.snapshot()
    /// };
    /// let (a, b) = (shard(3), shard(4));
    /// let mut ab = a.clone();
    /// ab.absorb(&b);
    /// let mut ba = b.clone();
    /// ba.absorb(&a);
    /// assert_eq!(ab, ba);
    /// assert_eq!(ab.counters["x"].value, 7);
    /// ```
    pub fn absorb(&mut self, other: &TelemetrySnapshot) {
        for (name, theirs) in &other.counters {
            let mine = self.counters.entry(name.clone()).or_insert(MetricValue {
                scope: theirs.scope,
                value: 0,
            });
            debug_assert_eq!(mine.scope, theirs.scope, "scope mismatch for {name}");
            mine.value += theirs.value;
        }
        for (name, theirs) in &other.gauges {
            let mine = self.gauges.entry(name.clone()).or_insert(MetricValue {
                scope: theirs.scope,
                value: 0,
            });
            debug_assert_eq!(mine.scope, theirs.scope, "scope mismatch for {name}");
            mine.value = mine.value.max(theirs.value);
        }
        for (name, theirs) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| HistogramSnapshot::empty(theirs.scope))
                .absorb(theirs);
        }
        for (name, theirs) in &other.spans {
            self.spans.entry(name.clone()).or_default().absorb(theirs);
        }
    }

    /// The JSON-lines export: one object per [`Scope::Global`] metric,
    /// in deterministic (sorted) order. Shard-scope diagnostics and
    /// spans are deliberately excluded — they are layout- or wall-clock-
    /// dependent, and this export is the surface the shard-invariance
    /// guarantee covers.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_tagged(&[])
    }

    /// [`Self::to_jsonl`] with extra numeric fields prefixed onto every
    /// line (e.g. `("year", 2018)` when one file carries both scans).
    pub fn to_jsonl_tagged(&self, tags: &[(&str, u64)]) -> String {
        let mut out = String::new();
        let tag_fragment: String = tags
            .iter()
            .map(|(key, value)| format!("{}:{value},", json_string(key)))
            .collect();
        for (name, metric) in &self.counters {
            if metric.scope != Scope::Global {
                continue;
            }
            let _ = writeln!(
                out,
                "{{{tag_fragment}\"kind\":\"counter\",\"name\":{},\"value\":{}}}",
                json_string(name),
                metric.value
            );
        }
        for (name, metric) in &self.gauges {
            if metric.scope != Scope::Global {
                continue;
            }
            let _ = writeln!(
                out,
                "{{{tag_fragment}\"kind\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_string(name),
                metric.value
            );
        }
        for (name, histogram) in &self.histograms {
            if histogram.scope != Scope::Global {
                continue;
            }
            let buckets: String = histogram
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, count)| **count > 0)
                .map(|(index, count)| {
                    let (low, high) = bucket_bounds(index);
                    format!("[{low},{high},{count}]")
                })
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                "{{{tag_fragment}\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"buckets\":[{buckets}]}}",
                json_string(name),
                histogram.count,
                histogram.sum,
                histogram.min,
                histogram.max,
            );
        }
        out
    }

    /// The Prometheus-style text dump: every metric of every scope plus
    /// the phase spans, with a `scope` label distinguishing global from
    /// per-shard diagnostics.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled(&[])
    }

    /// [`Self::to_prometheus`] with extra labels on every series.
    pub fn to_prometheus_labeled(&self, labels: &[(&str, &str)]) -> String {
        let extra: String = labels
            .iter()
            .map(|(key, value)| format!("{key}=\"{value}\","))
            .collect();
        let mut out = String::new();
        for (name, metric) in &self.counters {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom} counter");
            let _ = writeln!(
                out,
                "{prom}{{{extra}scope=\"{}\"}} {}",
                metric.scope.as_str(),
                metric.value
            );
        }
        for (name, metric) in &self.gauges {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom} gauge");
            let _ = writeln!(
                out,
                "{prom}{{{extra}scope=\"{}\"}} {}",
                metric.scope.as_str(),
                metric.value
            );
        }
        for (name, histogram) in &self.histograms {
            let prom = prom_name(name);
            let scope = histogram.scope.as_str();
            let _ = writeln!(out, "# TYPE {prom} histogram");
            let mut cumulative = 0u64;
            for (index, count) in histogram.buckets.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                cumulative += count;
                let (_, high) = bucket_bounds(index);
                let le = if high == u64::MAX {
                    "+Inf".to_owned()
                } else {
                    high.to_string()
                };
                let _ = writeln!(
                    out,
                    "{prom}_bucket{{{extra}scope=\"{scope}\",le=\"{le}\"}} {cumulative}"
                );
            }
            if bucket_bounds(BUCKET_COUNT - 1).1 == u64::MAX
                && histogram.buckets[BUCKET_COUNT - 1] == 0
            {
                let _ = writeln!(
                    out,
                    "{prom}_bucket{{{extra}scope=\"{scope}\",le=\"+Inf\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "{prom}_sum{{{extra}scope=\"{scope}\"}} {}",
                histogram.sum
            );
            let _ = writeln!(
                out,
                "{prom}_count{{{extra}scope=\"{scope}\"}} {}",
                histogram.count
            );
        }
        for (name, span) in &self.spans {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom}_wall_seconds gauge");
            let _ = writeln!(
                out,
                "{prom}_wall_seconds{{{extra}}} {}",
                span.wall_nanos as f64 / 1e9
            );
            let _ = writeln!(out, "# TYPE {prom}_virt_seconds gauge");
            let _ = writeln!(
                out,
                "{prom}_virt_seconds{{{extra}}} {}",
                span.virt_nanos as f64 / 1e9
            );
            let _ = writeln!(out, "# TYPE {prom}_count counter");
            let _ = writeln!(out, "{prom}_count{{{extra}}} {}", span.count);
        }
        out
    }
}

/// `name` as a Prometheus series name: `orscope_` prefix, with every
/// non-alphanumeric byte flattened to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("orscope_");
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
    }
    out
}

/// `value` as a quoted JSON string (metric names are plain ASCII, but
/// escaping keeps the exporter total).
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snapshot = TelemetrySnapshot::default();
        snapshot.counters.insert(
            "net.datagrams_sent".into(),
            MetricValue {
                scope: Scope::Global,
                value: 12,
            },
        );
        snapshot.counters.insert(
            "net.events_processed".into(),
            MetricValue {
                scope: Scope::Shard,
                value: 99,
            },
        );
        snapshot.gauges.insert(
            "net.event_queue_depth_hwm".into(),
            MetricValue {
                scope: Scope::Shard,
                value: 5,
            },
        );
        snapshot.histograms.insert(
            "prober.q1_r2_latency_ns".into(),
            HistogramSnapshot::from_samples(Scope::Global, &[3, 900, 900_000]),
        );
        snapshot.spans.insert(
            "phase.probe".into(),
            SpanSnapshot {
                count: 1,
                wall_nanos: 2_000_000,
                virt_nanos: 3_000_000_000,
            },
        );
        snapshot
    }

    #[test]
    fn jsonl_exports_only_global_scope() {
        let jsonl = sample().to_jsonl();
        assert!(jsonl.contains("net.datagrams_sent"));
        assert!(jsonl.contains("q1_r2_latency_ns"));
        assert!(!jsonl.contains("events_processed"), "shard scope leaked");
        assert!(!jsonl.contains("phase.probe"), "spans leaked into jsonl");
        for line in jsonl.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line}"
            );
        }
    }

    #[test]
    fn jsonl_tags_prefix_every_line() {
        let jsonl = sample().to_jsonl_tagged(&[("year", 2018)]);
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"year\":2018,"), "untagged line {line}");
        }
    }

    #[test]
    fn prometheus_includes_shard_scope_and_spans() {
        let text = sample().to_prometheus();
        assert!(text.contains("orscope_net_events_processed{scope=\"shard\"} 99"));
        assert!(text.contains("orscope_net_datagrams_sent{scope=\"global\"} 12"));
        assert!(text.contains("orscope_phase_probe_virt_seconds{} 3"));
        assert!(text.contains("orscope_prober_q1_r2_latency_ns_count{scope=\"global\"} 3"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn absorb_is_commutative_on_mixed_snapshots() {
        let a = sample();
        let mut b = TelemetrySnapshot::default();
        b.counters.insert(
            "net.datagrams_sent".into(),
            MetricValue {
                scope: Scope::Global,
                value: 8,
            },
        );
        b.histograms.insert(
            "prober.q1_r2_latency_ns".into(),
            HistogramSnapshot::from_samples(Scope::Global, &[1, u64::MAX]),
        );
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["net.datagrams_sent"].value, 20);
        let histogram = &ab.histograms["prober.q1_r2_latency_ns"];
        assert_eq!(histogram.count, 5);
        assert_eq!(histogram.min, 1);
        assert_eq!(histogram.max, u64::MAX);
    }

    #[test]
    fn gauges_absorb_by_max() {
        let mut a = TelemetrySnapshot::default();
        a.gauges.insert(
            "g".into(),
            MetricValue {
                scope: Scope::Shard,
                value: 3,
            },
        );
        let mut b = TelemetrySnapshot::default();
        b.gauges.insert(
            "g".into(),
            MetricValue {
                scope: Scope::Shard,
                value: 9,
            },
        );
        a.absorb(&b);
        assert_eq!(a.gauges["g"].value, 9);
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
