//! Virtual-time-aware telemetry for the campaign pipeline.
//!
//! A campaign is a black box without structured per-stage output: pacer
//! throughput, simulated-wire delivery rates, resolver cache behaviour,
//! and per-phase wall/virtual time are invisible from the final tables.
//! This crate provides the measurement substrate:
//!
//! - **[`Collector`]** — a per-shard metric registry handing out
//!   [`Counter`], [`Gauge`], and [`Histogram`] handles. Registration
//!   takes a lock once, at wiring time; the hot path afterwards is a
//!   single relaxed atomic add. A disabled collector hands out no-op
//!   handles so instrumented code pays one branch when telemetry is off.
//! - **[`PhaseSpan`]** — lightweight phase timers keyed to **SimNet
//!   virtual time**: each span records wall-clock nanoseconds from a
//!   monotonic clock *and* virtual nanoseconds supplied by the caller
//!   (e.g. `finished_at` from the probe phase).
//! - **[`TelemetrySnapshot`]** — a frozen, order-insensitive view.
//!   Per-shard snapshots merge via [`TelemetrySnapshot::absorb`],
//!   mirroring `NetStats::absorb`, so a sharded campaign exports the
//!   same [`Scope::Global`] metrics regardless of the shard layout.
//!
//! # Scopes and shard invariance
//!
//! Not every quantity survives re-partitioning: event-loop counts, pacer
//! tick counts, and queue depths depend on how the address space was
//! split. Metrics therefore carry a [`Scope`]:
//!
//! - [`Scope::Global`] — per-flow deterministic quantities (datagrams
//!   sent/delivered, cache hits, latency histograms). For a failure-free
//!   configuration these are byte-identical across `shards ∈ {1,4,8}`,
//!   and they form the JSON-lines export
//!   ([`TelemetrySnapshot::to_jsonl`]).
//! - [`Scope::Shard`] — layout-dependent diagnostics (queue high-water
//!   marks, timer counts). They appear only in the Prometheus-style text
//!   dump ([`TelemetrySnapshot::to_prometheus`]), alongside spans, whose
//!   wall-clock component is inherently non-deterministic.

#![warn(missing_docs)]

mod collector;
mod metric;
mod snapshot;
mod span;

pub use collector::{Collector, Scope};
pub use metric::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, BUCKET_COUNT};
pub use snapshot::{HistogramSnapshot, MetricValue, SpanSnapshot, TelemetrySnapshot};
pub use span::PhaseSpan;
