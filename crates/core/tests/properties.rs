//! Property tests over the tap predicate language: parse/display must
//! round-trip for every well-formed predicate, and arbitrary input —
//! however malformed — must come back as `Err`, never a panic. The
//! parser fronts an open HTTP surface (`GET /tap?match=`), so hostile
//! input is its normal diet.

use proptest::prelude::*;

use orscope_core::TapPredicate;

/// A canonical qname glob: the restricted character set the parser
/// admits, in lowercase (parsing lowercases, so canonical form is the
/// fixed point).
fn qname_glob() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9*][a-z0-9._*-]{0,30}").expect("valid regex")
}

/// A canonical rcode clause value: the named variants `Display` emits.
fn rcode_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("NoError"),
        Just("FormErr"),
        Just("ServFail"),
        Just("NXDomain"),
        Just("NotImp"),
        Just("Refused"),
        Just("YXDomain"),
        Just("YXRRSet"),
        Just("NXRRSet"),
        Just("NotAuth"),
        Just("NotZone"),
    ]
}

fn class_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("honest"),
        Just("filtering"),
        Just("forwarder"),
        Just("misdirecting"),
        Just("malicious"),
        Just("refusing"),
        Just("nxwall"),
        Just("other"),
        Just("silent"),
    ]
}

/// A canonical address pattern: a dotted prefix or a CIDR, as
/// `Display` renders them.
fn addr_pattern() -> impl Strategy<Value = String> {
    prop_oneof![
        // Dotted prefix of 1..=4 octets.
        proptest::collection::vec(0u8..=255, 1..=4).prop_map(|octets| octets
            .iter()
            .map(u8::to_string)
            .collect::<Vec<_>>()
            .join(".")),
        // CIDR over a full address.
        (any::<[u8; 4]>(), 0u8..=32)
            .prop_map(|(a, len)| format!("{}.{}.{}.{}/{len}", a[0], a[1], a[2], a[3])),
    ]
}

/// One canonical clause, exactly as `Display` would print it.
fn clause() -> impl Strategy<Value = String> {
    prop_oneof![
        qname_glob().prop_map(|g| format!("qname={g}")),
        rcode_name().prop_map(|r| format!("rcode={r}")),
        (0u8..=15).prop_map(|v| format!("rcode={v}")),
        class_name().prop_map(|c| format!("class={c}")),
        addr_pattern().prop_map(|a| format!("src={a}")),
        addr_pattern().prop_map(|a| format!("dst={a}")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Canonical predicates are a fixed point of parse ∘ display:
    /// parsing the display of a parsed predicate yields the same
    /// clauses and the same display string.
    #[test]
    fn parse_display_round_trips(clauses in proptest::collection::vec(clause(), 0..5)) {
        let text = clauses.join(" ");
        let parsed: TapPredicate = text.parse().expect("canonical predicate parses");
        let displayed = parsed.to_string();
        let reparsed: TapPredicate = displayed.parse().expect("displayed predicate reparses");
        prop_assert_eq!(&parsed, &reparsed);
        prop_assert_eq!(displayed.clone(), reparsed.to_string());
    }

    /// Arbitrary input never panics: it either parses (and then
    /// round-trips) or returns a structured error.
    #[test]
    fn arbitrary_input_parses_or_errs(text in ".{0,80}") {
        match text.parse::<TapPredicate>() {
            Ok(predicate) => {
                let reparsed: TapPredicate = predicate
                    .to_string()
                    .parse()
                    .expect("display of a parsed predicate must reparse");
                prop_assert_eq!(predicate, reparsed);
            }
            Err(err) => prop_assert!(!err.0.is_empty(), "errors must say what went wrong"),
        }
    }

    /// The numeric rcode form for named rcodes normalizes to the name,
    /// and stays matchable either way.
    #[test]
    fn numeric_rcodes_normalize(v in 0u8..=15) {
        let numeric: TapPredicate = format!("rcode={v}").parse().expect("numeric rcode parses");
        let named: TapPredicate = numeric.to_string().parse().expect("normalized form reparses");
        prop_assert_eq!(numeric, named);
    }
}
