#![warn(missing_docs)]
//! End-to-end reproduction campaigns: the paper's whole measurement
//! pipeline, wired together and runnable at any scale.
//!
//! A [`Campaign`] assembles the full Fig. 1 / Fig. 2 topology on the
//! simulated internet — root and TLD servers, the authoritative server
//! for `ucfsealresearch.net` with its zone clusters, the ZMap-style
//! prober, and a calibrated population of (mis)behaving resolvers — runs
//! the scan, classifies the captured R2 stream, and produces every table
//! of the paper's evaluation alongside the published figures.
//!
//! # Quick start
//!
//! ```
//! use orscope_core::{Campaign, CampaignConfig};
//! use orscope_resolver::paper::Year;
//!
//! // A 1:20,000-scale replay of the 2018 scan (fast enough for a test).
//! let config = CampaignConfig::new(Year::Y2018, 20_000.0);
//! let result = Campaign::new(config).run().unwrap();
//! let t3 = result.table3_measured();
//! assert!(t3.0.total() > 200, "hundreds of responders at this scale");
//! assert!(t3.0.err_pct() > 2.0, "2018's elevated error rate shows up");
//! ```

pub mod bus;
pub mod campaign;
pub mod checkpoint;
pub mod error;
pub mod infra;
pub mod result;
pub mod tap;
pub mod trend;

pub use bus::{BusStats, ClassIndex, Record, RecordBus, TapLaneStats, DEFAULT_TAP_CAPACITY};
pub use campaign::{Campaign, CampaignConfig, Materialization};
pub use checkpoint::{integrity, CampaignCheckpoint};
pub use error::{CampaignError, DegradedReport, ShardFailure, ShardSabotage};
pub use infra::Infra;
pub use orscope_analysis::AnalysisMode;
pub use result::CampaignResult;
pub use tap::{PredicateError, TapEvent, TapKind, TapPredicate, TapSubscriber};
pub use trend::{run_trend, TrendConfig, TrendPoint};
