//! The fixed measurement infrastructure: addresses and database seeding.

use std::net::Ipv4Addr;

use orscope_dns_wire::Name;
use orscope_geo::{GeoDb, GeoRecord};
use orscope_resolver::population::Population;
use orscope_threatintel::{Category, Report, ReportSource, ThreatDb};

/// Well-known addresses of the measurement infrastructure.
///
/// These mirror the paper's setup: a root server, the `.net` TLD server,
/// the authoritative server on a cloud host, and the campus prober.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infra {
    /// The root name server (a.root-servers.net).
    pub root: Ipv4Addr,
    /// The `.net` TLD server (a.gtld-servers.net).
    pub tld: Ipv4Addr,
    /// The authoritative server for the measurement zone.
    pub auth: Ipv4Addr,
    /// The prober.
    pub prober: Ipv4Addr,
    /// The measurement zone.
    pub zone: Name,
    /// The zone's name-server name.
    pub auth_ns_name: Name,
}

impl Default for Infra {
    fn default() -> Self {
        Self {
            root: Ipv4Addr::new(198, 41, 0, 4),
            tld: Ipv4Addr::new(192, 5, 6, 30),
            // A cloud-hosting address outside the ground-truth range.
            auth: Ipv4Addr::new(104, 238, 191, 60),
            // The campus network the probes originate from.
            prober: Ipv4Addr::new(132, 170, 5, 53),
            zone: "ucfsealresearch.net".parse().expect("static name"),
            auth_ns_name: "ns1.ucfsealresearch.net".parse().expect("static name"),
        }
    }
}

impl Infra {
    /// All infrastructure addresses (for population exclusion).
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        vec![self.root, self.tld, self.auth, self.prober]
    }
}

/// Builds the threat-intelligence database for a generated population:
/// every malicious answer address gets reports under its category
/// (multiple categories for the headline addresses, mirroring Fig. 4's
/// multi-category Cymon card for 208.91.197.91).
pub fn seed_threat_db(population: &Population) -> ThreatDb {
    let mut db = ThreatDb::new();
    for answer in &population.malicious_answers {
        // Dominant category: several reports.
        db.seed(answer.ip, answer.category, 3);
        // The Fig. 4 address carries extra categories and a ransomware-
        // tracker report; give every malware IP one secondary report so
        // dominant-category selection is actually exercised.
        if answer.category == Category::Malware {
            db.add_report(
                answer.ip,
                Report::new(Category::Phishing).with_source(ReportSource::Honeypot),
            );
            db.add_report(
                answer.ip,
                Report::new(Category::Botnet).with_source(ReportSource::RansomwareTracker),
            );
        }
    }
    db
}

/// Builds the geolocation database: org names for the Table VIII answer
/// addresses, country entries for every malicious resolver, and a
/// default US record for everything else (the long benign tail the
/// paper does not geolocate).
pub fn seed_geo_db(population: &Population) -> GeoDb {
    let mut db = GeoDb::new();
    for &(ip, org) in &population.answer_orgs {
        if org == "private network" {
            continue; // intrinsic private-range handling answers these
        }
        db.insert_exact(
            ip,
            GeoRecord::new(country_of_org(org), asn_of_org(org), org),
        );
    }
    for resolver in population.resolvers() {
        if let Some(country) = resolver.country {
            db.insert_exact(
                resolver.addr,
                GeoRecord::new(country, 64_512, "open resolver operator"),
            );
        }
    }
    db.finalize();
    db
}

/// Country attribution for the named Table VIII organizations.
fn country_of_org(org: &str) -> &'static str {
    match org {
        "Tera-byte Dot Com" => "CA",
        "Unified Layer" => "US",
        "Confluence Network Inc" => "VG",
        "Rook Media GmbH" => "CH",
        "Chunghwa Telecom" => "TW",
        "Microsoft Corporation" => "US",
        "China Unicom" | "China Telecom" => "CN",
        "SoftLayer Technologies" | "Comcast Cable" => "US",
        _ => "US",
    }
}

/// Stable fake ASNs for the named organizations.
fn asn_of_org(org: &str) -> u32 {
    match org {
        "Tera-byte Dot Com" => 10_929,
        "Unified Layer" => 46_606,
        "Confluence Network Inc" => 40_034,
        "Rook Media GmbH" => 49_693,
        "Chunghwa Telecom" => 3_462,
        "Microsoft Corporation" => 8_075,
        "China Unicom" => 4_837,
        "China Telecom" => 4_134,
        "SoftLayer Technologies" => 36_351,
        "Comcast Cable" => 7_922,
        _ => 64_496,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orscope_resolver::paper::Year;
    use orscope_resolver::population::PopulationConfig;

    #[test]
    fn infra_addresses_are_distinct_and_public() {
        let infra = Infra::default();
        let addrs = infra.addresses();
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(unique.len(), addrs.len());
        for addr in addrs {
            assert!(!orscope_ipspace::reserved::is_reserved(u32::from(addr)));
        }
        assert!(!orscope_authns::scheme::in_ground_truth_range(infra.auth));
    }

    #[test]
    fn threat_db_reports_every_malicious_answer() {
        let pop = Population::generate(&PopulationConfig::new(Year::Y2018, 500.0));
        let db = seed_threat_db(&pop);
        for answer in &pop.malicious_answers {
            assert!(db.is_reported(answer.ip));
            assert_eq!(
                db.dominant_category(answer.ip),
                Some(answer.category),
                "dominant category survives secondary reports for {}",
                answer.ip
            );
        }
    }

    #[test]
    fn geo_db_covers_malicious_resolvers() {
        let pop = Population::generate(&PopulationConfig::new(Year::Y2018, 500.0));
        let db = seed_geo_db(&pop);
        for resolver in pop.resolvers() {
            if let Some(country) = resolver.country {
                assert_eq!(db.lookup(resolver.addr).country, country);
            }
        }
    }

    #[test]
    fn geo_db_has_table_8_orgs() {
        let pop = Population::generate(&PopulationConfig::new(Year::Y2018, 1000.0));
        let db = seed_geo_db(&pop);
        assert_eq!(
            db.lookup(Ipv4Addr::new(216, 194, 64, 193)).org,
            "Tera-byte Dot Com"
        );
        assert_eq!(
            db.lookup(Ipv4Addr::new(208, 91, 197, 91)).org,
            "Confluence Network Inc"
        );
        assert!(db.lookup(Ipv4Addr::new(192, 168, 1, 1)).is_private());
    }
}
