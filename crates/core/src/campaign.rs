//! Campaign assembly and execution.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use orscope_analysis::Dataset;
use orscope_authns::{
    AuthTelemetry, AuthoritativeServer, CaptureHandle, CapturedPacket, ClusterZone, RootServer,
    TldServer, Zone,
};
use orscope_ipspace::{AllowedSpace, ScanPermutation};
use orscope_netsim::{HashLatency, NetStats, NetTelemetry, SchedulerKind, SimNet, SimTime};
use orscope_prober::{ProbeStats, Prober, ProberConfig, ProberHandle, ProberTelemetry, R2Capture};
use orscope_resolver::paper::{Year, YearSpec};
use orscope_resolver::population::{shard_index, Population, PopulationConfig};
use orscope_resolver::{ProfiledResolver, ResolverConfig, ResolverTelemetry};
use orscope_telemetry::{Collector, TelemetrySnapshot};

use crate::infra::{seed_geo_db, seed_threat_db, Infra};
use crate::result::CampaignResult;

/// Configuration of one reproduction campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Which scan to reproduce.
    pub year: Year,
    /// Down-scaling factor (1.0 = full Internet scale).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Independent per-datagram loss probability (failure injection).
    pub loss_probability: f64,
    /// Independent per-datagram duplication probability (failure
    /// injection; UDP may deliver twice).
    pub duplicate_probability: f64,
    /// Extra off-port responders (the §V blind-spot ablation).
    pub off_port_responders: u64,
    /// Fraction of standard honest resolvers replaced by CPE forwarders
    /// relaying to shared upstream resolvers.
    pub forwarder_fraction: f64,
    /// Probe-rate override; default is the year's published rate.
    pub probe_rate_pps: Option<u64>,
    /// When `true`, probe the full scaled address space
    /// (`round(Q1/scale)` targets), reproducing Table II's Q1 exactly.
    /// When `false`, probe only responders plus
    /// `non_responder_factor x` as many silent targets — the fast mode
    /// for tests and examples (every non-Q1 quantity is unaffected
    /// because silent hosts contribute nothing but Q1 volume).
    pub full_q1: bool,
    /// Silent-target multiple in fast mode.
    pub non_responder_factor: f64,
    /// Number of independent shards to partition the campaign across
    /// (1 = the classic single-`SimNet` run). Each shard owns a disjoint
    /// slice of the address space and runs on its own OS thread; results
    /// are merged afterwards. Must be in `1..=64`.
    pub shards: usize,
    /// Whether to collect telemetry (metrics, phase spans) during the
    /// run. On by default; the counters cost one relaxed atomic add per
    /// recording. When off, [`CampaignResult::telemetry`] is `None`.
    pub telemetry: bool,
    /// Event-scheduler implementation for every shard's `SimNet`. The
    /// default timing wheel and the reference binary heap produce
    /// identical event orderings (see the scheduler-invariance tests);
    /// the knob exists for oracle testing and benchmarking.
    pub scheduler: SchedulerKind,
    /// Infrastructure addresses.
    pub infra: Infra,
}

impl CampaignConfig {
    /// A fast-mode campaign for `year` at `scale`.
    pub fn new(year: Year, scale: f64) -> Self {
        Self {
            year,
            scale,
            seed: 0xD5A1_2019,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            off_port_responders: 0,
            forwarder_fraction: 0.0,
            probe_rate_pps: None,
            full_q1: false,
            non_responder_factor: 2.0,
            shards: 1,
            telemetry: true,
            scheduler: SchedulerKind::default(),
            infra: Infra::default(),
        }
    }

    /// Switches to full-Q1 mode (slower; exact Table II Q1).
    pub fn with_full_q1(mut self) -> Self {
        self.full_q1 = true;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables or disables telemetry collection.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Selects the event-scheduler implementation.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// A runnable reproduction campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(config: CampaignConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Builds the topology, runs the scan to completion, and analyzes
    /// the captures.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero/negative scale).
    pub fn run(&self) -> CampaignResult {
        let config = &self.config;
        let mut pop_config = PopulationConfig::new(config.year, config.scale);
        pop_config.seed = config.seed;
        pop_config.reserved_hosts = config.infra.addresses();
        pop_config.off_port_responders = config.off_port_responders;
        pop_config.forwarder_fraction = config.forwarder_fraction;
        let build_started = Instant::now();
        let population = Population::generate(&pop_config);
        self.run_inner(population, Some(build_started.elapsed()))
    }

    /// Runs the campaign over a caller-supplied population (used by the
    /// continuous-monitoring trend, which interpolates populations
    /// between the two scans).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero/negative scale).
    pub fn run_with_population(&self, population: Population) -> CampaignResult {
        self.run_inner(population, None)
    }

    /// Shared body of [`Campaign::run`] and
    /// [`Campaign::run_with_population`]. `build_wall` is the wall-clock
    /// time spent generating the population, when this call did so.
    fn run_inner(&self, population: Population, build_wall: Option<Duration>) -> CampaignResult {
        let config = &self.config;
        assert!(
            (1..=64).contains(&config.shards),
            "shard count {} out of range 1..=64",
            config.shards
        );
        let spec = YearSpec::get(config.year);
        // Root collector: phase spans recorded here; per-shard metric
        // snapshots are absorbed into it at merge time.
        let collector = if config.telemetry {
            Collector::new()
        } else {
            Collector::disabled()
        };
        if let Some(wall) = build_wall {
            // Population building happens before the simulation starts,
            // so it consumes no virtual time.
            collector.record_span("phase.population_build", wall, 0);
        }
        let threat = seed_threat_db(&population);
        let geo = seed_geo_db(&population);

        let cluster_capacity = ((orscope_authns::scheme::CLUSTER_CAPACITY as f64 / config.scale)
            .round() as u64)
            .clamp(64, orscope_authns::scheme::CLUSTER_CAPACITY);
        // The probe rate scales with the population so the in-flight
        // working set keeps its real-world proportion to the cluster
        // size (100k pps against 3.7B targets ~ 50 pps against 1.85M).
        let total_rate = config
            .probe_rate_pps
            .unwrap_or_else(|| ((spec.probe_rate_pps as f64 / config.scale).ceil() as u64).max(1));

        // The target list is built once from the master seed, before any
        // partitioning, so every shard count scans the same addresses in
        // the same global order.
        let targets = self.build_targets(&spec, &population);

        if config.shards == 1 {
            let outcome = self.run_shard(ShardPlan {
                sim_seed: config.seed,
                rate_pps: total_rate,
                base_cluster: 0,
                cluster_capacity,
                targets,
                population: &population,
            });
            let analyze = collector.phase("phase.analyze");
            let dataset = outcome.dataset(config);
            analyze.finish();
            let mut telemetry = collector.snapshot();
            telemetry.absorb(&outcome.telemetry);
            return CampaignResult::new(
                config.clone(),
                spec,
                dataset,
                threat,
                geo,
                population,
                outcome.net_stats,
                outcome.auth_packets,
                config.telemetry.then_some(telemetry),
            );
        }

        // ---- shard planning ----
        let shards = config.shards;
        let shard_pops = population.shard(shards);
        // Placement map: resolvers (and their forwarders) and off-port
        // responders go where `Population::shard` put them; silent fill
        // targets hash straight to a shard.
        let mut owner: HashMap<Ipv4Addr, usize> = HashMap::new();
        for (index, part) in shard_pops.iter().enumerate() {
            for planned in part
                .resolvers
                .iter()
                .chain(&part.off_port)
                .chain(&part.upstreams)
            {
                owner.insert(planned.addr, index);
            }
        }
        let mut shard_targets: Vec<Vec<Ipv4Addr>> = vec![Vec::new(); shards];
        for addr in targets {
            let index = owner
                .get(&addr)
                .copied()
                .unwrap_or_else(|| shard_index(addr, shards));
            shard_targets[index].push(addr);
        }
        // Split the aggregate rate so the fleet still probes at the
        // year's published pps; remainders go to the first shards.
        let base_rate = total_rate / shards as u64;
        let remainder = (total_rate % shards as u64) as usize;
        // Disjoint cluster namespaces per shard keep merged qnames
        // globally unique (1,000 clusters shared across <= 64 shards).
        let cluster_stride = 1_000 / shards as u32;

        // ---- fan out: one SimNet per shard, one OS thread each ----
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_pops
                .iter()
                .zip(shard_targets)
                .enumerate()
                .map(|(index, (shard_pop, targets))| {
                    let plan = ShardPlan {
                        // Decorrelate per-shard loss/duplication draws;
                        // shard 0 keeps the master seed so shards=1
                        // reproduces the classic run exactly.
                        sim_seed: config.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        rate_pps: (base_rate + u64::from(index < remainder)).max(1),
                        base_cluster: index as u32 * cluster_stride,
                        cluster_capacity,
                        targets,
                        population: shard_pop,
                    };
                    scope.spawn(move || self.run_shard(plan))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard thread panicked"))
                .collect()
        });

        // ---- merge ----
        let analyze = collector.phase("phase.analyze");
        let dataset = Dataset::merge(
            outcomes
                .iter()
                .map(|outcome| outcome.dataset(config))
                .collect(),
        );
        analyze.finish();
        let mut telemetry = collector.snapshot();
        let mut net_stats = NetStats::default();
        let mut auth_packets: Vec<CapturedPacket> = Vec::new();
        for outcome in outcomes {
            telemetry.absorb(&outcome.telemetry);
            net_stats.absorb(&outcome.net_stats);
            auth_packets.extend(outcome.auth_packets);
        }
        // Canonical merged capture order: chronological, with the stable
        // sort breaking cross-shard ties by shard index.
        auth_packets.sort_by_key(|packet| packet.at);

        CampaignResult::new(
            config.clone(),
            spec,
            dataset,
            threat,
            geo,
            population,
            net_stats,
            auth_packets,
            config.telemetry.then_some(telemetry),
        )
    }

    /// Builds one shard's simulation, runs it to completion, and returns
    /// its raw outcome for merging.
    fn run_shard(&self, plan: ShardPlan<'_>) -> ShardOutcome {
        let config = &self.config;
        let infra = &config.infra;

        // Per-shard collector: lock-free on the hot path, merged
        // order-insensitively into the root snapshot afterwards.
        let collector = if config.telemetry {
            Collector::new()
        } else {
            Collector::disabled()
        };

        // ---- network & name-server hierarchy ----
        let mut net = SimNet::builder()
            .seed(plan.sim_seed)
            // Latency hashes from the master seed in every shard so a
            // host's RTTs do not depend on the shard layout.
            .latency(HashLatency::internet(config.seed))
            .loss_probability(config.loss_probability)
            .duplicate_probability(config.duplicate_probability)
            .scheduler(config.scheduler)
            .telemetry(NetTelemetry::from_collector(&collector))
            .build();
        let mut root = RootServer::new();
        root.delegate(
            "net".parse().expect("static name"),
            "a.gtld-servers.net".parse().expect("static name"),
            infra.tld,
        );
        net.register(infra.root, root);
        let mut tld = TldServer::new();
        tld.delegate(infra.zone.clone(), infra.auth_ns_name.clone(), infra.auth);
        net.register(infra.tld, tld);

        let auth_capture = CaptureHandle::new();
        let mut zone = Zone::new(infra.zone.clone(), infra.auth_ns_name.clone());
        zone.add_a(infra.auth_ns_name.clone(), infra.auth);
        // Apex bulk records: what makes ANY queries amplify (§II-C).
        for i in 0..8 {
            zone.add_txt(
                infra.zone.clone(),
                &format!("v=measurement{i}; site=ucfsealresearch; key=k{i:016x}"),
            );
        }
        let mut auth = AuthoritativeServer::new(ClusterZone::new(zone), auth_capture.clone());
        auth.enable_auto_advance(plan.cluster_capacity);
        auth.set_telemetry(AuthTelemetry::from_collector(&collector));
        net.register(infra.auth, auth);

        // ---- resolver population (this shard's slice) ----
        let resolver_config = ResolverConfig::new(infra.root);
        let resolver_telemetry = ResolverTelemetry::from_collector(&collector);
        for planned in plan
            .population
            .resolvers
            .iter()
            .chain(&plan.population.off_port)
            .chain(&plan.population.upstreams)
        {
            net.register(
                planned.addr,
                ProfiledResolver::new(planned.policy.clone(), resolver_config.clone())
                    .with_telemetry(resolver_telemetry.clone()),
            );
        }

        // ---- prober ----
        let q1_planned = plan.targets.len() as u64;
        let prober_handle = ProberHandle::new();
        let mut prober_config = ProberConfig::new(infra.zone.clone(), plan.targets);
        prober_config.rate_pps = plan.rate_pps;
        prober_config.cluster_capacity = plan.cluster_capacity;
        prober_config.base_cluster = plan.base_cluster;
        net.register(
            infra.prober,
            Prober::new(prober_config, prober_handle.clone())
                .with_telemetry(ProberTelemetry::from_collector(&collector)),
        );
        net.set_timer_for(infra.prober, SimTime::ZERO, 0);

        // ---- run to completion ----
        let probe_span = collector.phase("phase.probe");
        net.run_until_idle();

        // ---- collect ----
        let probe_stats = prober_handle.stats();
        debug_assert!(probe_stats.done, "scan did not drain");
        debug_assert_eq!(probe_stats.q1_sent, q1_planned);
        let q2 = auth_capture.count(orscope_authns::Direction::Inbound) as u64;
        let r1 = auth_capture.count(orscope_authns::Direction::Outbound) as u64;
        // Scan wall clock: probe completion plus the zone-cluster load
        // stops (one minute per full cluster, pro-rated at scale).
        let load_secs = probe_stats.clusters_used as f64
            * orscope_authns::cluster::CLUSTER_LOAD_TIME.as_secs_f64()
            * (plan.cluster_capacity as f64 / orscope_authns::scheme::CLUSTER_CAPACITY as f64);
        let duration_secs = probe_stats.finished_at.as_secs_f64() + load_secs;
        // Phase spans: the probe phase covers virtual time up to scan
        // completion; the capture drain covers the tail in which late
        // responses and retries settle. Both happen inside the single
        // `run_until_idle` call, so the drain gets no wall share.
        let probe_virt = probe_stats
            .finished_at
            .since(SimTime::ZERO)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        probe_span.finish_with_virtual(probe_virt);
        let drain_virt = net
            .now()
            .since(probe_stats.finished_at)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        collector.record_span("phase.capture_drain", Duration::ZERO, drain_virt);
        ShardOutcome {
            probe_stats,
            captures: prober_handle.drain(),
            q2,
            r1,
            duration_secs,
            net_stats: *net.stats(),
            auth_packets: auth_capture.drain(),
            telemetry: collector.snapshot(),
        }
    }

    /// Builds the scan-ordered target list: all responders embedded in
    /// either the full scaled space or a fast-mode sample of silents.
    fn build_targets(&self, spec: &YearSpec, population: &Population) -> Vec<Ipv4Addr> {
        let config = &self.config;
        let mut targets: Vec<Ipv4Addr> = population
            .resolvers
            .iter()
            .chain(&population.off_port)
            .map(|r| r.addr)
            .collect();
        let responders = targets.len() as u64;
        let total = if config.full_q1 {
            ((spec.q1 as f64 / config.scale).round() as u64).max(responders)
        } else {
            responders + (responders as f64 * config.non_responder_factor) as u64
        };
        // Silent fill: fresh probeable addresses not already used.
        let used: std::collections::HashSet<Ipv4Addr> = targets
            .iter()
            .copied()
            .chain(config.infra.addresses())
            .collect();
        let space = AllowedSpace::probeable();
        let mut ranks = ScanPermutation::new(space.len(), config.seed ^ 0x51E7).iter();
        while (targets.len() as u64) < total {
            let rank = ranks.next().expect("space exhausted") as u64;
            let addr = space.nth(rank).expect("rank in range");
            if !used.contains(&addr) {
                targets.push(addr);
            }
        }
        // Scan order: permute so responders are interleaved with silents
        // the way a real pseudorandom scan interleaves live hosts.
        let order = ScanPermutation::new(targets.len() as u64, config.seed ^ 0x0DE2);
        let mut ordered = Vec::with_capacity(targets.len());
        for idx in order.iter() {
            ordered.push(targets[idx as usize]);
        }
        ordered
    }
}

/// Everything one shard needs to run independently: its slice of the
/// population and targets plus derived knobs. Borrows the shard
/// population, so shard threads are spawned inside `std::thread::scope`.
struct ShardPlan<'a> {
    /// Seed for this shard's `SimNet` (loss/duplication draws).
    sim_seed: u64,
    /// This shard's slice of the aggregate probe rate.
    rate_pps: u64,
    /// First subdomain cluster this shard allocates from.
    base_cluster: u32,
    /// Names per cluster (shared across shards).
    cluster_capacity: u64,
    /// This shard's targets, in global scan order.
    targets: Vec<Ipv4Addr>,
    /// The resolvers, off-port responders, and upstreams this shard owns.
    population: &'a Population,
}

/// What one shard's simulation produced, pre-merge.
struct ShardOutcome {
    probe_stats: ProbeStats,
    captures: Vec<R2Capture>,
    q2: u64,
    r1: u64,
    duration_secs: f64,
    net_stats: NetStats,
    auth_packets: Vec<CapturedPacket>,
    telemetry: TelemetrySnapshot,
}

impl ShardOutcome {
    /// Classifies this shard's captures into a per-shard dataset.
    fn dataset(&self, config: &CampaignConfig) -> Dataset {
        Dataset::from_captures(
            config.year,
            config.scale,
            self.probe_stats.q1_sent,
            self.q2,
            self.r1,
            self.duration_secs,
            &self.captures,
            self.probe_stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_campaign_runs_and_matches_scale() {
        let config = CampaignConfig::new(Year::Y2018, 10_000.0);
        let result = Campaign::new(config).run();
        let spec = YearSpec::get(Year::Y2018);
        let expected_r2 = (spec.r2 as f64 / 10_000.0).round() as u64;
        assert_eq!(result.dataset().r2(), expected_r2);
        // Fast mode: Q1 = 3x responders.
        assert_eq!(result.dataset().q1, expected_r2 * 3);
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let result = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0)).run();
            (
                result.dataset().r2(),
                result.dataset().q2,
                result.table3_measured().0,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn q2_equals_r1_at_the_authoritative_server() {
        let result = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0)).run();
        assert_eq!(result.dataset().q2, result.dataset().r1);
        assert!(result.dataset().q2 > 0);
    }

    #[test]
    fn loss_injection_reduces_r2_but_not_determinism() {
        let mut config = CampaignConfig::new(Year::Y2018, 20_000.0);
        config.loss_probability = 0.2;
        let a = Campaign::new(config.clone()).run();
        let b = Campaign::new(config).run();
        assert_eq!(a.dataset().r2(), b.dataset().r2());
        let lossless = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0)).run();
        assert!(a.dataset().r2() < lossless.dataset().r2());
    }

    #[test]
    fn off_port_responders_are_invisible_in_r2() {
        let mut config = CampaignConfig::new(Year::Y2018, 20_000.0);
        config.off_port_responders = 20;
        let result = Campaign::new(config).run();
        let baseline = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0)).run();
        assert_eq!(result.dataset().r2(), baseline.dataset().r2());
        assert_eq!(result.dataset().off_port_dropped, 20);
    }

    #[test]
    fn sharded_campaign_matches_single_shard_counts() {
        let single = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0)).run();
        for shards in [2, 4] {
            let config = CampaignConfig::new(Year::Y2018, 20_000.0).with_shards(shards);
            let sharded = Campaign::new(config).run();
            assert_eq!(sharded.dataset().q1, single.dataset().q1, "{shards} shards");
            assert_eq!(sharded.dataset().q2, single.dataset().q2, "{shards} shards");
            assert_eq!(sharded.dataset().r1, single.dataset().r1, "{shards} shards");
            assert_eq!(
                sharded.dataset().r2(),
                single.dataset().r2(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn sharded_campaign_is_deterministic() {
        let run = || {
            let config = CampaignConfig::new(Year::Y2018, 20_000.0).with_shards(4);
            let result = Campaign::new(config).run();
            (
                result.dataset().r2(),
                result.dataset().q2,
                result.table3_measured().0,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_campaign_keeps_forwarder_flows_in_shard() {
        // Forwarders relay to shared upstreams; if a forwarder and its
        // upstream landed in different shards the relayed query would be
        // unrouted and R2 would shrink.
        let build = |shards: usize| {
            let mut config = CampaignConfig::new(Year::Y2018, 20_000.0).with_shards(shards);
            config.forwarder_fraction = 0.25;
            config.off_port_responders = 10;
            Campaign::new(config).run()
        };
        let single = build(1);
        let sharded = build(4);
        assert_eq!(sharded.dataset().r2(), single.dataset().r2());
        assert_eq!(sharded.dataset().q2, single.dataset().q2);
        assert_eq!(sharded.dataset().off_port_dropped, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_shards_rejected() {
        let config = CampaignConfig::new(Year::Y2018, 50_000.0).with_shards(0);
        let _ = Campaign::new(config).run();
    }
}
