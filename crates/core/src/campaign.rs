//! Campaign assembly and execution.

use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use orscope_analysis::{AnalysisMode, Dataset, RecordSink, StreamingAnalyzer};
use orscope_authns::{
    AuthTelemetry, AuthoritativeServer, CaptureHandle, CapturedPacket, ClusterZone, RootServer,
    TldServer, Zone,
};
use orscope_ipspace::{AllowedSpace, ScanPermutation};
use orscope_netsim::{
    fx_map_with_capacity, FaultPlan, FxHashMap, HashLatency, LazyRegistry, NetStats, NetTelemetry,
    SchedulerKind, SimNet, SimTime,
};
use orscope_prober::{
    ProbeStats, Prober, ProberConfig, ProberHandle, ProberTelemetry, R2Capture, ScanCheckpoint,
    SlotSchedule,
};
use orscope_resolver::paper::{Year, YearSpec};
use orscope_resolver::population::{shard_index, Population, PopulationConfig};
use orscope_resolver::{ProfiledResolver, ResolverConfig, ResolverTelemetry};
use orscope_telemetry::{Collector, PhaseSpan, Scope, TelemetrySnapshot};

use crate::error::{CampaignError, DegradedReport, ShardFailure, ShardSabotage};
use crate::infra::{seed_geo_db, seed_threat_db, Infra};
use crate::result::CampaignResult;

/// Configuration of one reproduction campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Which scan to reproduce.
    pub year: Year,
    /// Down-scaling factor (1.0 = full Internet scale).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Independent per-datagram loss probability (failure injection).
    pub loss_probability: f64,
    /// Independent per-datagram duplication probability (failure
    /// injection; UDP may deliver twice).
    pub duplicate_probability: f64,
    /// Scheduled, scoped network impairments (the chaos layer). The
    /// plan's seed is mixed with the campaign seed, and the same mixed
    /// plan is handed to every shard, so fault decisions are
    /// shard-invariant. The legacy `loss_probability` /
    /// `duplicate_probability` knobs become degenerate always-on rules
    /// appended to this plan.
    pub faults: FaultPlan,
    /// Per-probe retransmission budget: an unanswered Q1 is re-sent with
    /// exponential backoff up to this many times before the target is
    /// abandoned (0 = the paper's fire-and-forget scan).
    pub retry_limit: u32,
    /// Publish a prober [`ScanCheckpoint`] through its handle every this
    /// many probes (`None` disables auto-checkpointing).
    pub checkpoint_every: Option<u64>,
    /// Extra off-port responders (the §V blind-spot ablation).
    pub off_port_responders: u64,
    /// Fraction of standard honest resolvers replaced by CPE forwarders
    /// relaying to shared upstream resolvers.
    pub forwarder_fraction: f64,
    /// Probe-rate override; default is the year's published rate.
    pub probe_rate_pps: Option<u64>,
    /// When `true`, probe the full scaled address space
    /// (`round(Q1/scale)` targets), reproducing Table II's Q1 exactly.
    /// When `false`, probe only responders plus
    /// `non_responder_factor x` as many silent targets — the fast mode
    /// for tests and examples (every non-Q1 quantity is unaffected
    /// because silent hosts contribute nothing but Q1 volume).
    pub full_q1: bool,
    /// Silent-target multiple in fast mode.
    pub non_responder_factor: f64,
    /// Number of independent shards to partition the campaign across
    /// (1 = the classic single-`SimNet` run). Each shard owns a disjoint
    /// slice of the address space and runs on its own OS thread; results
    /// are merged afterwards. Must be in `1..=64`.
    pub shards: usize,
    /// Whether to collect telemetry (metrics, phase spans) during the
    /// run. On by default; the counters cost one relaxed atomic add per
    /// recording. When off, [`CampaignResult::telemetry`] is `None`.
    pub telemetry: bool,
    /// Event-scheduler implementation for every shard's `SimNet`. The
    /// default timing wheel and the reference binary heap produce
    /// identical event orderings (see the scheduler-invariance tests);
    /// the knob exists for oracle testing and benchmarking.
    pub scheduler: SchedulerKind,
    /// Deterministic shard-failure injection for exercising the
    /// supervisor (tests and chaos drills only).
    pub sabotage: Option<ShardSabotage>,
    /// Virtual-time budget for the scan. A shard whose simulation still
    /// has pending events at this deadline panics, which the shard
    /// supervisor catches: the shard is retried once and then reported
    /// failed, exactly like any other shard panic. `None` (the default)
    /// runs every shard to idle. Because per-flow send times and RTTs
    /// are shard-layout-invariant, whether a scan fits the budget does
    /// not depend on the shard count.
    pub virtual_deadline: Option<Duration>,
    /// How captures become tables: the default single-pass
    /// [`AnalysisMode::Streaming`] classifies at capture time and keeps
    /// only accumulators; [`AnalysisMode::Batch`] buffers every payload
    /// and classifies after the scan (the original pipeline, kept as an
    /// oracle). Both render byte-identical reports.
    pub analysis: AnalysisMode,
    /// Keep raw R2 captures alongside the streaming accumulators
    /// (needed for pcap export; forfeits the memory bound).
    pub retain_raw: bool,
    /// How resolver endpoints come into existence: the default
    /// [`Materialization::Lazy`] builds each host on its first packet
    /// from the population's interned profile table (paper-scale
    /// populations run in a bounded host table);
    /// [`Materialization::Eager`] pre-registers every host up front (the
    /// original pipeline, kept as an oracle). Both produce byte-identical
    /// reports — see `tests/materialization_oracle.rs`.
    pub materialization: Materialization,
    /// Infrastructure addresses.
    pub infra: Infra,
}

/// When resolver endpoints are constructed (see
/// [`CampaignConfig::materialization`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Materialization {
    /// Build each host on first packet delivery; release it when it goes
    /// quiescent (fault-free plans only — impaired hosts stay pinned).
    #[default]
    Lazy,
    /// Pre-register every host before the scan starts.
    Eager,
}

impl CampaignConfig {
    /// A fast-mode campaign for `year` at `scale`.
    pub fn new(year: Year, scale: f64) -> Self {
        Self {
            year,
            scale,
            seed: 0xD5A1_2019,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            faults: FaultPlan::new(),
            retry_limit: 0,
            checkpoint_every: None,
            off_port_responders: 0,
            forwarder_fraction: 0.0,
            probe_rate_pps: None,
            full_q1: false,
            non_responder_factor: 2.0,
            shards: 1,
            telemetry: true,
            scheduler: SchedulerKind::default(),
            sabotage: None,
            virtual_deadline: None,
            analysis: AnalysisMode::default(),
            retain_raw: false,
            materialization: Materialization::default(),
            infra: Infra::default(),
        }
    }

    /// Selects when resolver endpoints are constructed (lazy or eager).
    pub fn with_materialization(mut self, materialization: Materialization) -> Self {
        self.materialization = materialization;
        self
    }

    /// Selects how captures become tables (streaming or batch).
    pub fn with_analysis(mut self, analysis: AnalysisMode) -> Self {
        self.analysis = analysis;
        self
    }

    /// Keeps raw R2 captures in streaming mode (pcap export).
    pub fn with_retain_raw(mut self, retain_raw: bool) -> Self {
        self.retain_raw = retain_raw;
        self
    }

    /// Switches to full-Q1 mode (slower; exact Table II Q1).
    pub fn with_full_q1(mut self) -> Self {
        self.full_q1 = true;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables or disables telemetry collection.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Selects the event-scheduler implementation.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the independent per-datagram loss probability.
    pub fn with_loss(mut self, probability: f64) -> Self {
        self.loss_probability = probability;
        self
    }

    /// Sets the independent per-datagram duplication probability.
    pub fn with_duplication(mut self, probability: f64) -> Self {
        self.duplicate_probability = probability;
        self
    }

    /// Installs a fault plan (scheduled, scoped impairments).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the per-probe retransmission budget.
    pub fn with_retries(mut self, retry_limit: u32) -> Self {
        self.retry_limit = retry_limit;
        self
    }

    /// Enables auto-checkpointing every `probes` Q1 packets.
    pub fn with_checkpoint_every(mut self, probes: u64) -> Self {
        self.checkpoint_every = Some(probes);
        self
    }

    /// Overrides the probe rate.
    pub fn with_probe_rate(mut self, rate_pps: u64) -> Self {
        self.probe_rate_pps = Some(rate_pps);
        self
    }

    /// Sets the CPE-forwarder fraction.
    pub fn with_forwarder_fraction(mut self, fraction: f64) -> Self {
        self.forwarder_fraction = fraction;
        self
    }

    /// Sets the number of extra off-port responders.
    pub fn with_off_port_responders(mut self, count: u64) -> Self {
        self.off_port_responders = count;
        self
    }

    /// Injects deterministic shard failures (supervisor testing).
    pub fn with_sabotage(mut self, sabotage: ShardSabotage) -> Self {
        self.sabotage = Some(sabotage);
        self
    }

    /// Caps the scan's virtual time; a shard still busy at the deadline
    /// fails under the supervisor instead of running on.
    pub fn with_virtual_deadline(mut self, deadline: Duration) -> Self {
        self.virtual_deadline = Some(deadline);
        self
    }

    /// Checks the configuration for operator errors.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidConfig`] for out-of-range knobs:
    /// a degenerate scale, probabilities outside `[0, 1]`, a zero probe
    /// rate, a shard count outside `1..=64`, or a malformed fault plan.
    pub fn validate(&self) -> Result<(), CampaignError> {
        let invalid = |reason: String| Err(CampaignError::InvalidConfig(reason));
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return invalid(format!("scale {} must be a positive number", self.scale));
        }
        if !(1..=64).contains(&self.shards) {
            return invalid(format!("shard count {} out of range 1..=64", self.shards));
        }
        for (name, p) in [
            ("loss_probability", self.loss_probability),
            ("duplicate_probability", self.duplicate_probability),
            ("forwarder_fraction", self.forwarder_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return invalid(format!("{name} {p} not in [0, 1]"));
            }
        }
        if !(self.non_responder_factor.is_finite() && self.non_responder_factor >= 0.0) {
            return invalid(format!(
                "non_responder_factor {} must be non-negative",
                self.non_responder_factor
            ));
        }
        if self.probe_rate_pps == Some(0) {
            return invalid("probe rate must be positive (got 0 pps)".to_owned());
        }
        if let Err(reason) = self.faults.validate() {
            return invalid(format!("fault plan: {reason}"));
        }
        if let Some(sabotage) = self.sabotage {
            if sabotage.shard >= self.shards {
                return invalid(format!(
                    "sabotaged shard {} does not exist ({} shard(s))",
                    sabotage.shard, self.shards
                ));
            }
        }
        if self.virtual_deadline == Some(Duration::ZERO) {
            return invalid("virtual deadline of zero would fail every scan".to_owned());
        }
        Ok(())
    }

    /// The fault plan actually installed in every shard simulator: the
    /// configured plan with its seed mixed with the campaign seed (so
    /// reseeding the campaign reseeds the chaos draws) — identical
    /// across shards by construction.
    pub(crate) fn effective_faults(&self) -> FaultPlan {
        let mut plan = self.faults.clone();
        plan.seed ^= self.seed;
        plan
    }
}

/// A runnable reproduction campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    /// Optional record bus for live tap subscribers. Kept beside (not
    /// inside) the config so `CampaignConfig` stays a plain comparable
    /// value type.
    bus: Option<std::sync::Arc<crate::bus::RecordBus>>,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(config: CampaignConfig) -> Self {
        Self { config, bus: None }
    }

    /// Attaches a record bus: every shard publishes its captured R2 and
    /// authoritative-server packets to it (in streaming analysis mode),
    /// so tap subscribers can watch flows as they classify. Publishing
    /// is free while the bus has no subscribers, and a slow subscriber
    /// only ever drops its own records — it cannot stall the scan.
    pub fn with_bus(mut self, bus: std::sync::Arc<crate::bus::RecordBus>) -> Self {
        self.bus = Some(bus);
        self
    }

    /// The attached record bus, if any.
    pub fn bus(&self) -> Option<&std::sync::Arc<crate::bus::RecordBus>> {
        self.bus.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Builds the topology, runs the scan to completion, and analyzes
    /// the captures.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidConfig`] for a degenerate
    /// configuration (see [`CampaignConfig::validate`]) and
    /// [`CampaignError::AllShardsFailed`] when every shard panicked
    /// twice. A campaign that loses *some* shards still returns `Ok`,
    /// with the surviving shards merged and
    /// [`CampaignResult::degraded`] describing the gap.
    pub fn run(&self) -> Result<CampaignResult, CampaignError> {
        let config = &self.config;
        config.validate()?;
        let build_started = Instant::now();
        let population = self.build_population();
        self.run_inner(population, Some(build_started.elapsed()))
    }

    /// Runs the campaign over a caller-supplied population (used by the
    /// continuous-monitoring trend, which interpolates populations
    /// between the two scans).
    ///
    /// # Errors
    ///
    /// As for [`Campaign::run`].
    pub fn run_with_population(
        &self,
        population: Population,
    ) -> Result<CampaignResult, CampaignError> {
        self.config.validate()?;
        self.run_inner(population, None)
    }

    /// Generates the population this configuration describes.
    pub(crate) fn build_population(&self) -> Population {
        let config = &self.config;
        let mut pop_config = PopulationConfig::new(config.year, config.scale);
        pop_config.seed = config.seed;
        pop_config.reserved_hosts = config.infra.addresses();
        pop_config.off_port_responders = config.off_port_responders;
        pop_config.forwarder_fraction = config.forwarder_fraction;
        Population::generate(&pop_config)
    }

    /// Shared body of [`Campaign::run`] and
    /// [`Campaign::run_with_population`]. `build_wall` is the wall-clock
    /// time spent generating the population, when this call did so.
    fn run_inner(
        &self,
        population: Population,
        build_wall: Option<Duration>,
    ) -> Result<CampaignResult, CampaignError> {
        let config = &self.config;
        let spec = YearSpec::get(config.year);
        // Root collector: phase spans recorded here; per-shard metric
        // snapshots are absorbed into it at merge time.
        let collector = if config.telemetry {
            Collector::new()
        } else {
            Collector::disabled()
        };
        if let Some(wall) = build_wall {
            // Population building happens before the simulation starts,
            // so it consumes no virtual time.
            collector.record_span("phase.population_build", wall, 0);
        }
        let threat = seed_threat_db(&population);
        let geo = seed_geo_db(&population);
        let knobs = self.shard_knobs(&spec);

        // Tap subscribers resolve `class=` predicates against this
        // round's population; the index is only built when a bus is
        // attached (an address->class scan is pure startup overhead
        // otherwise).
        if let Some(bus) = &self.bus {
            bus.install_class_index(crate::bus::ClassIndex::from_population(&population));
        }

        // The target list is built once from the master seed, before any
        // partitioning, so every shard count scans the same addresses in
        // the same global order.
        let targets = self.build_targets(&spec, &population);

        // ---- shard planning ----
        let shards = config.shards;
        let shard_pops: Vec<Population>;
        let shard_populations: Vec<&Population> = if shards == 1 {
            vec![&population]
        } else {
            shard_pops = population.shard(shards);
            shard_pops.iter().collect()
        };
        // Placement: resolvers (and their forwarders) and off-port
        // responders go where `Population::shard` put them; silent fill
        // targets hash straight to a shard. Each target keeps its global
        // scan index so every shard sends on the campaign-wide pacing
        // grid (send times — and therefore time-windowed fault exposure
        // — are shard-layout-invariant).
        let mut shard_targets: Vec<Vec<Ipv4Addr>> = vec![Vec::new(); shards];
        let mut shard_slots: Vec<Vec<u64>> = vec![Vec::new(); shards];
        if shards == 1 {
            shard_slots[0] = (0..targets.len() as u64).collect();
            shard_targets[0] = targets;
        } else {
            // Pre-sized FxHash map: this is O(population) inserts on the
            // planning path and would otherwise rehash its way up.
            let mut owner: FxHashMap<Ipv4Addr, usize> = fx_map_with_capacity(
                shard_populations
                    .iter()
                    .map(|p| p.resolvers.len() + p.off_port.len() + p.upstreams.len())
                    .sum(),
            );
            for (index, part) in shard_populations.iter().enumerate() {
                for addr in part
                    .resolvers
                    .addrs()
                    .chain(part.off_port.addrs())
                    .chain(part.upstreams.addrs())
                {
                    owner.insert(addr, index);
                }
            }
            for (global_index, addr) in targets.into_iter().enumerate() {
                let index = owner
                    .get(&addr)
                    .copied()
                    .unwrap_or_else(|| shard_index(addr, shards));
                shard_targets[index].push(addr);
                shard_slots[index].push(global_index as u64);
            }
        }
        // Disjoint cluster namespaces per shard keep merged qnames
        // globally unique (1,000 clusters shared across <= 64 shards).
        let cluster_stride = 1_000 / shards as u32;

        // ---- fan out: one supervised SimNet per shard ----
        // Each shard runs under `catch_unwind`; a panicking shard is
        // rebuilt from the same plan (same seed) and retried once. A
        // second panic marks the shard permanently failed: its slice is
        // missing from the merge and the result carries a
        // `DegradedReport`.
        let runs: Vec<ShardRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_populations
                .iter()
                .copied()
                .zip(shard_targets.into_iter().zip(shard_slots))
                .enumerate()
                .map(|(index, (shard_pop, (targets, slots)))| {
                    scope.spawn(move || {
                        // Shared buffers: attempt 0 and the retry plan
                        // read the same allocation instead of doubling
                        // ~12 bytes per target for the whole scan.
                        let targets = std::sync::Arc::new(targets);
                        let slots = std::sync::Arc::new(slots);
                        let mut retried = false;
                        for attempt in 0..2u32 {
                            let plan = ShardPlan {
                                shard: index,
                                attempt,
                                // Decorrelate per-shard simulator seeds;
                                // shard 0 keeps the master seed so
                                // shards=1 reproduces the classic run
                                // exactly.
                                sim_seed: config.seed
                                    ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                                total_rate_pps: knobs.total_rate,
                                base_cluster: index as u32 * cluster_stride,
                                cluster_capacity: knobs.cluster_capacity,
                                targets: std::sync::Arc::clone(&targets),
                                slot_indices: std::sync::Arc::clone(&slots),
                                population: shard_pop,
                            };
                            match catch_unwind(AssertUnwindSafe(|| self.run_shard(plan))) {
                                Ok(outcome) => {
                                    return ShardRun {
                                        shard: index,
                                        retried,
                                        outcome: Ok(Box::new(outcome)),
                                    };
                                }
                                Err(payload) => {
                                    if attempt == 0 {
                                        retried = true;
                                        continue;
                                    }
                                    return ShardRun {
                                        shard: index,
                                        retried,
                                        outcome: Err(panic_text(payload.as_ref())),
                                    };
                                }
                            }
                        }
                        unreachable!("a shard returns within two attempts")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("supervisor thread panicked"))
                .collect()
        });

        // ---- triage ----
        let mut failed: Vec<ShardFailure> = Vec::new();
        let mut retried: Vec<usize> = Vec::new();
        let mut outcomes: Vec<ShardOutcome> = Vec::new();
        for run in runs {
            if run.retried {
                retried.push(run.shard);
            }
            match run.outcome {
                Ok(outcome) => outcomes.push(*outcome),
                Err(message) => failed.push(ShardFailure {
                    shard: run.shard,
                    message,
                }),
            }
        }
        if outcomes.is_empty() {
            return Err(CampaignError::AllShardsFailed(failed));
        }
        collector
            .counter(Scope::Shard, "campaign.shard_retries")
            .add(retried.len() as u64);
        collector
            .counter(Scope::Shard, "campaign.shards_lost")
            .add(failed.len() as u64);
        let degraded = (!failed.is_empty() || !retried.is_empty())
            .then_some(DegradedReport { failed, retried });

        // ---- merge ----
        let analyze = collector.phase("phase.analyze");
        // In batch mode the per-shard datasets carry the classified
        // records; in streaming mode they carry only counters (the
        // records were folded into each shard's accumulators at capture
        // time) and the analyzers are absorbed order-insensitively.
        let mut dataset = if outcomes.len() == 1 {
            outcomes[0].dataset(config)
        } else {
            Dataset::merge(
                outcomes
                    .iter()
                    .map(|outcome| outcome.dataset(config))
                    .collect(),
            )
        };
        let mut stream: Option<StreamingAnalyzer> = None;
        let mut net_stats = NetStats::default();
        let mut auth_packets: Vec<CapturedPacket> = Vec::new();
        let mut shard_telemetry: Vec<TelemetrySnapshot> = Vec::new();
        let mut materialized_hosts = 0usize;
        for outcome in outcomes {
            shard_telemetry.push(outcome.telemetry);
            materialized_hosts += outcome.materialized_peak;
            net_stats.absorb(&outcome.net_stats);
            auth_packets.extend(outcome.auth_packets);
            if let Some(analysis) = outcome.analysis {
                match stream.as_mut() {
                    Some(merged) => merged.absorb(analysis),
                    None => stream = Some(analysis),
                }
            }
        }
        if let Some(merged) = stream.as_mut() {
            dataset.set_r2_total(merged.r2_classified());
            if config.retain_raw {
                dataset.attach_raw(merged.take_raw());
            }
        }
        // Canonical merged capture order: chronological, with the stable
        // sort breaking cross-shard ties by shard index.
        auth_packets.sort_by_key(|packet| packet.at);
        analyze.finish();
        let mut telemetry = collector.snapshot();
        for shard in &shard_telemetry {
            telemetry.absorb(shard);
        }

        Ok(CampaignResult::new(
            config.clone(),
            spec,
            dataset,
            threat,
            geo,
            population,
            net_stats,
            materialized_hosts,
            auth_packets,
            config.telemetry.then_some(telemetry),
            degraded,
            stream,
        ))
    }

    /// Derives the knobs every shard shares: the aggregate probe rate
    /// and the per-cluster name capacity.
    pub(crate) fn shard_knobs(&self, spec: &YearSpec) -> ShardKnobs {
        let config = &self.config;
        let cluster_capacity = ((orscope_authns::scheme::CLUSTER_CAPACITY as f64 / config.scale)
            .round() as u64)
            .clamp(64, orscope_authns::scheme::CLUSTER_CAPACITY);
        // The probe rate scales with the population so the in-flight
        // working set keeps its real-world proportion to the cluster
        // size (100k pps against 3.7B targets ~ 50 pps against 1.85M).
        let total_rate = config
            .probe_rate_pps
            .unwrap_or_else(|| ((spec.probe_rate_pps as f64 / config.scale).ceil() as u64).max(1));
        ShardKnobs {
            total_rate,
            cluster_capacity,
        }
    }

    /// Builds one shard's simulation, runs it to completion, and returns
    /// its raw outcome for merging.
    fn run_shard(&self, plan: ShardPlan<'_>) -> ShardOutcome {
        if let Some(sabotage) = self.config.sabotage {
            if sabotage.shard == plan.shard && plan.attempt < sabotage.failures {
                panic!(
                    "sabotaged: shard {} ordered to fail on attempt {}",
                    plan.shard, plan.attempt
                );
            }
        }
        // Every flow keys on a probed responder, so the shard's share of
        // the responder population bounds the join state exactly. Sizing
        // the analyzer up front keeps the full-scale arena at its final
        // footprint instead of doubling past it (the last doubling alone
        // is ~0.4 GB at scale 1.0).
        let expected_flows = plan.population.resolvers.len() + plan.population.off_port.len();
        let mut world = self.build_shard(plan, None);
        if self.config.analysis == AnalysisMode::Streaming {
            world.attach_streaming(
                self.config.infra.zone.clone(),
                self.config.retain_raw,
                expected_flows,
            );
        }
        // ---- run to completion (or the virtual deadline) ----
        let probe_span = world.collector.phase("phase.probe");
        match self.config.virtual_deadline {
            None => world.net.run_until_idle(),
            Some(deadline) => {
                // A blown deadline is a shard failure like any other:
                // panic here, let the supervisor retry once (the rerun is
                // deterministic, so a genuine overrun fails again), and
                // surface the loss through the degraded-result path.
                world.net.run_until(SimTime::ZERO + deadline);
                if !world.net.is_idle() {
                    panic!(
                        "virtual deadline exceeded: events still pending at {:?}",
                        deadline
                    );
                }
            }
        }
        world.collect(probe_span)
    }

    /// Assembles one shard's simulator: network, name-server hierarchy,
    /// resolver population, and prober (resumed from `resume` when
    /// given). The caller decides how far to run it.
    pub(crate) fn build_shard(
        &self,
        plan: ShardPlan<'_>,
        resume: Option<&ScanCheckpoint>,
    ) -> ShardWorld {
        let config = &self.config;
        let infra = &config.infra;

        // Per-shard collector: lock-free on the hot path, merged
        // order-insensitively into the root snapshot afterwards.
        let collector = if config.telemetry {
            Collector::new()
        } else {
            Collector::disabled()
        };

        // ---- network & name-server hierarchy ----
        let resolver_config = ResolverConfig::new(infra.root);
        let resolver_telemetry = ResolverTelemetry::from_collector(&collector);
        let mut builder = SimNet::builder()
            .seed(plan.sim_seed)
            // Latency hashes from the master seed in every shard so a
            // host's RTTs do not depend on the shard layout.
            .latency(HashLatency::internet(config.seed))
            .loss_probability(config.loss_probability)
            .duplicate_probability(config.duplicate_probability)
            // Same mixed plan in every shard: hashed per-flow draws keep
            // chaos decisions identical regardless of layout.
            .faults(config.effective_faults())
            .scheduler(config.scheduler)
            .telemetry(NetTelemetry::from_collector(&collector));
        if config.materialization == Materialization::Lazy {
            // Probed hosts materialize on first packet from the interned
            // profile table; only the upstreams are pre-registered below,
            // because forwarders from many clients share their caches
            // across the whole scan.
            builder = builder.lazy_hosts(PopulationRegistry::new(
                plan.population,
                resolver_config.clone(),
                resolver_telemetry.clone(),
            ));
        }
        let mut net = builder.build();
        let mut root = RootServer::new();
        root.delegate(
            "net".parse().expect("static name"),
            "a.gtld-servers.net".parse().expect("static name"),
            infra.tld,
        );
        net.register(infra.root, root);
        let mut tld = TldServer::new();
        tld.delegate(infra.zone.clone(), infra.auth_ns_name.clone(), infra.auth);
        net.register(infra.tld, tld);

        let auth_capture = CaptureHandle::new();
        let mut zone = Zone::new(infra.zone.clone(), infra.auth_ns_name.clone());
        zone.add_a(infra.auth_ns_name.clone(), infra.auth);
        // Apex bulk records: what makes ANY queries amplify (§II-C).
        for i in 0..8 {
            zone.add_txt(
                infra.zone.clone(),
                &format!("v=measurement{i}; site=ucfsealresearch; key=k{i:016x}"),
            );
        }
        let mut auth = AuthoritativeServer::new(ClusterZone::new(zone), auth_capture.clone());
        auth.enable_auto_advance(plan.cluster_capacity);
        auth.set_telemetry(AuthTelemetry::from_collector(&collector));
        net.register(infra.auth, auth);

        // ---- resolver population (this shard's slice) ----
        if config.materialization == Materialization::Eager {
            for host in plan
                .population
                .resolvers()
                .chain(plan.population.off_port())
            {
                net.register(
                    host.addr,
                    ProfiledResolver::new_shared(
                        std::sync::Arc::clone(host.policy),
                        resolver_config.clone(),
                    )
                    .with_telemetry(resolver_telemetry.clone()),
                );
            }
        }
        for host in plan.population.upstreams() {
            net.register(
                host.addr,
                ProfiledResolver::new_shared(
                    std::sync::Arc::clone(host.policy),
                    resolver_config.clone(),
                )
                .with_telemetry(resolver_telemetry.clone()),
            );
        }

        // ---- prober ----
        let q1_planned = plan.targets.len() as u64;
        let prober_handle = ProberHandle::new();
        let mut prober_config = ProberConfig::new(infra.zone.clone(), plan.targets);
        prober_config.rate_pps = plan.total_rate_pps;
        prober_config.cluster_capacity = plan.cluster_capacity;
        prober_config.base_cluster = plan.base_cluster;
        prober_config.retry_limit = config.retry_limit;
        prober_config.checkpoint_every = config.checkpoint_every;
        if resume.is_none() {
            // Campaign-global send slots; a resumed scan paces locally
            // over its remaining-targets list instead.
            prober_config.slots = Some(SlotSchedule {
                total_rate_pps: plan.total_rate_pps,
                indices: plan.slot_indices,
            });
        }
        let prober = match resume {
            None => Prober::new(prober_config, prober_handle.clone()),
            Some(checkpoint) => Prober::resume(prober_config, prober_handle.clone(), checkpoint),
        }
        .expect("probe rate validated");
        net.register(
            infra.prober,
            prober.with_telemetry(ProberTelemetry::from_collector(&collector)),
        );
        net.set_timer_for(infra.prober, SimTime::ZERO, 0);

        ShardWorld {
            net,
            prober_handle,
            auth_capture,
            collector,
            q1_planned,
            cluster_capacity: plan.cluster_capacity,
            analyzer: None,
            bus: self.bus.clone(),
        }
    }

    /// Builds the scan-ordered target list: all responders embedded in
    /// either the full scaled space or a fast-mode sample of silents.
    pub(crate) fn build_targets(&self, spec: &YearSpec, population: &Population) -> Vec<Ipv4Addr> {
        let config = &self.config;
        let mut targets: Vec<Ipv4Addr> = population
            .resolvers
            .addrs()
            .chain(population.off_port.addrs())
            .collect();
        let responders = targets.len() as u64;
        let total = if config.full_q1 {
            ((spec.q1 as f64 / config.scale).round() as u64).max(responders)
        } else {
            responders + (responders as f64 * config.non_responder_factor) as u64
        };
        // Silent fill: fresh probeable addresses not already used.
        let used: orscope_netsim::FxHashSet<Ipv4Addr> = targets
            .iter()
            .copied()
            .chain(config.infra.addresses())
            .collect();
        let space = AllowedSpace::probeable();
        let mut ranks = ScanPermutation::new(space.len(), config.seed ^ 0x51E7).iter();
        while (targets.len() as u64) < total {
            let rank = ranks.next().expect("space exhausted") as u64;
            let addr = space.nth(rank).expect("rank in range");
            if !used.contains(&addr) {
                targets.push(addr);
            }
        }
        // Scan order: permute so responders are interleaved with silents
        // the way a real pseudorandom scan interleaves live hosts.
        let order = ScanPermutation::new(targets.len() as u64, config.seed ^ 0x0DE2);
        let mut ordered = Vec::with_capacity(targets.len());
        for idx in order.iter() {
            ordered.push(targets[idx as usize]);
        }
        ordered
    }
}

/// Renders a `catch_unwind` payload as text for the failure report.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Knobs shared by every shard of one campaign.
pub(crate) struct ShardKnobs {
    /// Aggregate (campaign-wide) probe rate.
    pub(crate) total_rate: u64,
    /// Names per subdomain cluster.
    pub(crate) cluster_capacity: u64,
}

/// One supervised shard attempt's result.
struct ShardRun {
    shard: usize,
    retried: bool,
    outcome: Result<Box<ShardOutcome>, String>,
}

/// Everything one shard needs to run independently: its slice of the
/// population and targets plus derived knobs. Borrows the shard
/// population, so shard threads are spawned inside `std::thread::scope`.
pub(crate) struct ShardPlan<'a> {
    /// Shard index (0-based).
    pub(crate) shard: usize,
    /// Supervision attempt (0 = first run, 1 = retry).
    pub(crate) attempt: u32,
    /// Seed for this shard's `SimNet`.
    pub(crate) sim_seed: u64,
    /// The campaign-wide probe rate (slot pacing is global).
    pub(crate) total_rate_pps: u64,
    /// First subdomain cluster this shard allocates from.
    pub(crate) base_cluster: u32,
    /// Names per cluster (shared across shards).
    pub(crate) cluster_capacity: u64,
    /// This shard's targets, in global scan order. Shared with the
    /// supervisor's retry plan and the prober: at full paper scale these
    /// lists run to hundreds of megabytes, so the plan must be cheap to
    /// clone for the second supervised attempt.
    pub(crate) targets: std::sync::Arc<Vec<Ipv4Addr>>,
    /// Global scan index of each target (drives the send-slot grid).
    pub(crate) slot_indices: std::sync::Arc<Vec<u64>>,
    /// The resolvers, off-port responders, and upstreams this shard owns.
    pub(crate) population: &'a Population,
}

/// Materializes `ProfiledResolver` endpoints on demand from a shard's
/// compact population: a sorted `(packed address, profile id)` index plus
/// the shared profile table. Covers probed hosts (resolvers and off-port
/// responders); upstreams are always registered eagerly.
struct PopulationRegistry {
    hosts: Vec<(u32, orscope_resolver::ProfileId)>,
    table: std::sync::Arc<orscope_resolver::ProfileTable>,
    config: ResolverConfig,
    telemetry: ResolverTelemetry,
}

impl PopulationRegistry {
    fn new(population: &Population, config: ResolverConfig, telemetry: ResolverTelemetry) -> Self {
        let mut hosts = Vec::with_capacity(population.resolvers.len() + population.off_port.len());
        for list in [&population.resolvers, &population.off_port] {
            for i in 0..list.len() {
                hosts.push((u32::from(list.addr(i)), list.profile_id(i)));
            }
        }
        hosts.sort_unstable_by_key(|&(addr, _)| addr);
        Self {
            hosts,
            table: std::sync::Arc::clone(population.table()),
            config,
            telemetry,
        }
    }
}

impl LazyRegistry for PopulationRegistry {
    fn materialize(&self, addr: Ipv4Addr) -> Option<Box<dyn orscope_netsim::Endpoint>> {
        let slot = self
            .hosts
            .binary_search_by_key(&u32::from(addr), |&(a, _)| a)
            .ok()?;
        let policy = std::sync::Arc::clone(self.table.get(self.hosts[slot].1));
        Some(Box::new(
            ProfiledResolver::new_shared(policy, self.config.clone())
                .with_telemetry(self.telemetry.clone()),
        ))
    }
}

/// A fully-assembled shard simulation, ready to run.
pub(crate) struct ShardWorld {
    /// The shard's simulator with every endpoint registered.
    pub(crate) net: SimNet,
    /// Live view of the prober's captures and counters.
    pub(crate) prober_handle: ProberHandle,
    /// Live view of the authoritative server's packet capture.
    pub(crate) auth_capture: CaptureHandle,
    /// The shard's telemetry collector.
    pub(crate) collector: Collector,
    /// How many Q1 probes this shard is expected to send.
    pub(crate) q1_planned: u64,
    /// Names per subdomain cluster (for the load-time model).
    pub(crate) cluster_capacity: u64,
    /// The shard's streaming accumulators, when capture-time sinks are
    /// installed (see [`ShardWorld::attach_streaming`]).
    pub(crate) analyzer: Option<std::sync::Arc<parking_lot::Mutex<StreamingAnalyzer>>>,
    /// The campaign's record bus, when one is attached (see
    /// [`Campaign::with_bus`]).
    pub(crate) bus: Option<std::sync::Arc<crate::bus::RecordBus>>,
}

impl ShardWorld {
    /// Installs capture-time sinks on the prober and authoritative
    /// capture handles. Subscriber #1 is the shard's
    /// [`StreamingAnalyzer`]: called inline and lossless, because its
    /// accumulators become the paper tables. When a record bus is
    /// attached, a second sink fans each record out to the bus's tap
    /// lanes — bounded, drop-counting, never blocking — so any number
    /// of live taps ride along without perturbing the analyzer.
    /// Payloads drop as soon as the last sink returns (unless
    /// `retain_raw`).
    ///
    /// `expected_flows` pre-sizes the analyzer's join state (pass the
    /// shard's responder count; an estimate only costs capacity).
    pub(crate) fn attach_streaming(
        &mut self,
        zone: orscope_dns_wire::Name,
        retain_raw: bool,
        expected_flows: usize,
    ) {
        let mut streaming = StreamingAnalyzer::new(zone, retain_raw);
        streaming.reserve_flows(expected_flows);
        let analyzer = std::sync::Arc::new(parking_lot::Mutex::new(streaming));
        let r2_sink = analyzer.clone();
        self.prober_handle
            .add_sink(move |capture| r2_sink.lock().on_r2(capture));
        let auth_sink = analyzer.clone();
        self.auth_capture
            .add_sink(move |packet| auth_sink.lock().on_auth(packet));
        self.analyzer = Some(analyzer);
        if let Some(bus) = &self.bus {
            let r2_bus = bus.clone();
            self.prober_handle
                .add_sink(move |capture| r2_bus.publish_r2(capture));
            let auth_bus = bus.clone();
            self.auth_capture
                .add_sink(move |packet| auth_bus.publish_auth(packet));
        }
    }

    /// Harvests a completed shard run into a mergeable outcome.
    pub(crate) fn collect(self, probe_span: PhaseSpan) -> ShardOutcome {
        let probe_stats = self.prober_handle.stats();
        debug_assert!(probe_stats.done, "scan did not drain");
        debug_assert_eq!(probe_stats.q1_sent, self.q1_planned);
        let q2 = self.auth_capture.count(orscope_authns::Direction::Inbound) as u64;
        let r1 = self.auth_capture.count(orscope_authns::Direction::Outbound) as u64;
        // Scan wall clock: probe completion plus the zone-cluster load
        // stops (one minute per full cluster, pro-rated at scale).
        let load_secs = probe_stats.clusters_used as f64
            * orscope_authns::cluster::CLUSTER_LOAD_TIME.as_secs_f64()
            * (self.cluster_capacity as f64 / orscope_authns::scheme::CLUSTER_CAPACITY as f64);
        let duration_secs = probe_stats.finished_at.as_secs_f64() + load_secs;
        // Phase spans: the probe phase covers virtual time up to scan
        // completion; the capture drain covers the tail in which late
        // responses and retries settle. Both happen inside the single
        // `run_until_idle` call, so the drain gets no wall share.
        let probe_virt = probe_stats
            .finished_at
            .since(SimTime::ZERO)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        probe_span.finish_with_virtual(probe_virt);
        let drain_virt = self
            .net
            .now()
            .since(probe_stats.finished_at)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        self.collector
            .record_span("phase.capture_drain", Duration::ZERO, drain_virt);
        ShardOutcome {
            probe_stats,
            captures: self.prober_handle.drain(),
            q2,
            r1,
            duration_secs,
            materialized_peak: self.net.materialized_peak(),
            net_stats: *self.net.stats(),
            auth_packets: self.auth_capture.drain(),
            telemetry: self.collector.snapshot(),
            analysis: self
                .analyzer
                .as_ref()
                .map(|analyzer| std::mem::take(&mut *analyzer.lock())),
        }
    }
}

/// What one shard's simulation produced, pre-merge.
pub(crate) struct ShardOutcome {
    pub(crate) probe_stats: ProbeStats,
    pub(crate) captures: Vec<R2Capture>,
    pub(crate) q2: u64,
    pub(crate) r1: u64,
    pub(crate) duration_secs: f64,
    /// Peak live lazily-materialized hosts (0 in eager mode).
    pub(crate) materialized_peak: usize,
    pub(crate) net_stats: NetStats,
    pub(crate) auth_packets: Vec<CapturedPacket>,
    pub(crate) telemetry: TelemetrySnapshot,
    /// Streaming accumulators, present when the shard ran with
    /// capture-time sinks installed.
    pub(crate) analysis: Option<StreamingAnalyzer>,
}

impl ShardOutcome {
    /// Classifies this shard's captures into a per-shard dataset.
    pub(crate) fn dataset(&self, config: &CampaignConfig) -> Dataset {
        Dataset::from_captures(
            config.year,
            config.scale,
            self.probe_stats.q1_sent,
            self.q2,
            self.r1,
            self.duration_secs,
            &self.captures,
            self.probe_stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_campaign_runs_and_matches_scale() {
        let config = CampaignConfig::new(Year::Y2018, 10_000.0);
        let result = Campaign::new(config).run().unwrap();
        let spec = YearSpec::get(Year::Y2018);
        let expected_r2 = (spec.r2 as f64 / 10_000.0).round() as u64;
        assert_eq!(result.dataset().r2(), expected_r2);
        // Fast mode: Q1 = 3x responders.
        assert_eq!(result.dataset().q1, expected_r2 * 3);
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let result = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0))
                .run()
                .unwrap();
            (
                result.dataset().r2(),
                result.dataset().q2,
                result.table3_measured().0,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn q2_equals_r1_at_the_authoritative_server() {
        let result = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0))
            .run()
            .unwrap();
        assert_eq!(result.dataset().q2, result.dataset().r1);
        assert!(result.dataset().q2 > 0);
    }

    #[test]
    fn loss_injection_reduces_r2_but_not_determinism() {
        let config = CampaignConfig::new(Year::Y2018, 20_000.0).with_loss(0.2);
        let a = Campaign::new(config.clone()).run().unwrap();
        let b = Campaign::new(config).run().unwrap();
        assert_eq!(a.dataset().r2(), b.dataset().r2());
        let lossless = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0))
            .run()
            .unwrap();
        assert!(a.dataset().r2() < lossless.dataset().r2());
    }

    #[test]
    fn off_port_responders_are_invisible_in_r2() {
        let config = CampaignConfig::new(Year::Y2018, 20_000.0).with_off_port_responders(20);
        let result = Campaign::new(config).run().unwrap();
        let baseline = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0))
            .run()
            .unwrap();
        assert_eq!(result.dataset().r2(), baseline.dataset().r2());
        assert_eq!(result.dataset().off_port_dropped, 20);
    }

    #[test]
    fn sharded_campaign_matches_single_shard_counts() {
        let single = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0))
            .run()
            .unwrap();
        for shards in [2, 4] {
            let config = CampaignConfig::new(Year::Y2018, 20_000.0).with_shards(shards);
            let sharded = Campaign::new(config).run().unwrap();
            assert_eq!(sharded.dataset().q1, single.dataset().q1, "{shards} shards");
            assert_eq!(sharded.dataset().q2, single.dataset().q2, "{shards} shards");
            assert_eq!(sharded.dataset().r1, single.dataset().r1, "{shards} shards");
            assert_eq!(
                sharded.dataset().r2(),
                single.dataset().r2(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn sharded_campaign_is_deterministic() {
        let run = || {
            let config = CampaignConfig::new(Year::Y2018, 20_000.0).with_shards(4);
            let result = Campaign::new(config).run().unwrap();
            (
                result.dataset().r2(),
                result.dataset().q2,
                result.table3_measured().0,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_campaign_keeps_forwarder_flows_in_shard() {
        // Forwarders relay to shared upstreams; if a forwarder and its
        // upstream landed in different shards the relayed query would be
        // unrouted and R2 would shrink.
        let build = |shards: usize| {
            let config = CampaignConfig::new(Year::Y2018, 20_000.0)
                .with_shards(shards)
                .with_forwarder_fraction(0.25)
                .with_off_port_responders(10);
            Campaign::new(config).run().unwrap()
        };
        let single = build(1);
        let sharded = build(4);
        assert_eq!(sharded.dataset().r2(), single.dataset().r2());
        assert_eq!(sharded.dataset().q2, single.dataset().q2);
        assert_eq!(sharded.dataset().off_port_dropped, 10);
    }

    #[test]
    fn zero_shards_rejected() {
        let config = CampaignConfig::new(Year::Y2018, 50_000.0).with_shards(0);
        let err = Campaign::new(config).run().unwrap_err();
        assert!(matches!(err, CampaignError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn invalid_knobs_are_rejected_before_any_simulation() {
        let base = || CampaignConfig::new(Year::Y2018, 50_000.0);
        for config in [
            base().with_loss(1.5),
            base().with_duplication(-0.1),
            base().with_probe_rate(0),
            base().with_forwarder_fraction(2.0),
        ] {
            let err = Campaign::new(config).run().unwrap_err();
            assert!(matches!(err, CampaignError::InvalidConfig(_)), "{err}");
        }
    }

    #[test]
    fn sabotaged_shard_recovers_on_retry() {
        let config = CampaignConfig::new(Year::Y2018, 20_000.0)
            .with_shards(2)
            .with_sabotage(ShardSabotage {
                shard: 1,
                failures: 1,
            });
        let result = Campaign::new(config).run().unwrap();
        let degraded = result.degraded().expect("retry recorded");
        assert!(!degraded.is_partial(), "retry succeeded: nothing missing");
        assert_eq!(degraded.retried, vec![1]);
        // The retried shard reran with the same seed, so the merged
        // result matches an unsabotaged campaign.
        let clean = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0).with_shards(2))
            .run()
            .unwrap();
        assert_eq!(result.dataset().r2(), clean.dataset().r2());
        assert_eq!(result.dataset().q2, clean.dataset().q2);
    }

    #[test]
    fn permanently_failed_shard_degrades_the_result() {
        let config = CampaignConfig::new(Year::Y2018, 20_000.0)
            .with_shards(2)
            .with_sabotage(ShardSabotage {
                shard: 0,
                failures: 2,
            });
        let result = Campaign::new(config).run().unwrap();
        assert!(result.is_partial());
        let degraded = result.degraded().expect("degradation recorded");
        assert_eq!(degraded.failed.len(), 1);
        assert_eq!(degraded.failed[0].shard, 0);
        assert!(degraded.failed[0].message.contains("sabotaged"));
        // The survivor's slice alone undercounts the clean campaign.
        let clean = Campaign::new(CampaignConfig::new(Year::Y2018, 20_000.0).with_shards(2))
            .run()
            .unwrap();
        assert!(result.dataset().r2() < clean.dataset().r2());
    }

    #[test]
    fn all_shards_failing_is_an_error() {
        let config = CampaignConfig::new(Year::Y2018, 50_000.0).with_sabotage(ShardSabotage {
            shard: 0,
            failures: 2,
        });
        let err = Campaign::new(config).run().unwrap_err();
        let CampaignError::AllShardsFailed(failures) = err else {
            panic!("wrong error: {err}");
        };
        assert_eq!(failures.len(), 1);
        assert!(failures[0].message.contains("sabotaged"));
    }
}
