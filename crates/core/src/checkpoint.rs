//! Campaign-level checkpoint and resume.
//!
//! The paper's 2013 scan ran for seven days; a rerun of it has to
//! survive operator restarts. [`Campaign::run_partial`] runs a
//! single-shard campaign up to a virtual-time cut, freezes the world,
//! and returns a [`CampaignCheckpoint`]: the prober's scan cursor (a
//! [`ScanCheckpoint`]) plus everything already captured.
//! [`Campaign::resume_from`] rebuilds a fresh world positioned at that
//! cursor, re-probes the targets that were in flight, finishes the
//! scan, and merges both halves into one [`CampaignResult`].
//!
//! Because fault draws are hashed per flow (keyed on the endpoint pair
//! and a per-pair ordinal), a probe flow re-run in the fresh world sees
//! exactly the draws it would have seen uninterrupted — so a resumed
//! lossy campaign classifies identically to a straight run. Two
//! exceptions: time-*windowed* fault rules are evaluated against the
//! resumed world's restarted clock, and shared forwarder upstreams
//! accumulate cross-flow ordinals that the restart resets; resumption
//! is exact for always-on rules over non-forwarding populations.

use std::net::Ipv4Addr;
use std::time::Duration;

use orscope_authns::CapturedPacket;
use orscope_netsim::SimTime;
use orscope_prober::{Prober, R2Capture, ScanCheckpoint};
use orscope_resolver::paper::YearSpec;

use crate::campaign::{Campaign, ShardPlan};
use crate::error::CampaignError;
use crate::infra::{seed_geo_db, seed_threat_db};
use crate::result::CampaignResult;

/// A suspended single-shard campaign: scan cursor plus everything the
/// first phase already captured.
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    /// The prober's cursor (serializable; see
    /// [`ScanCheckpoint::to_json_string`]).
    pub scan: ScanCheckpoint,
    /// Targets whose probe was in flight at the cut; they are re-probed
    /// on resume.
    pub outstanding: Vec<Ipv4Addr>,
    /// R2 packets captured before the cut.
    pub captures: Vec<R2Capture>,
    /// The authoritative server's packet capture before the cut.
    pub auth_packets: Vec<CapturedPacket>,
    /// Q2 packets the authoritative server saw before the cut.
    pub q2: u64,
    /// R1 packets the authoritative server sent before the cut.
    pub r1: u64,
}

impl Campaign {
    /// Runs a single-shard campaign up to `stop_at` of virtual time and
    /// returns the frozen state.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidConfig`] for a degenerate
    /// configuration or a shard count other than 1 (checkpointing
    /// freezes one world; shard a resumed campaign afterwards instead).
    pub fn run_partial(&self, stop_at: Duration) -> Result<CampaignCheckpoint, CampaignError> {
        let config = self.config();
        config.validate()?;
        if config.shards != 1 {
            return Err(CampaignError::InvalidConfig(format!(
                "checkpointing requires shards = 1 (got {})",
                config.shards
            )));
        }
        let spec = YearSpec::get(config.year);
        let population = self.build_population();
        let knobs = self.shard_knobs(&spec);
        let targets = self.build_targets(&spec, &population);
        let slot_indices: Vec<u64> = (0..targets.len() as u64).collect();
        let plan = ShardPlan {
            shard: 0,
            attempt: 0,
            sim_seed: config.seed,
            total_rate_pps: knobs.total_rate,
            base_cluster: 0,
            cluster_capacity: knobs.cluster_capacity,
            targets: std::sync::Arc::new(targets),
            slot_indices: std::sync::Arc::new(slot_indices),
            population: &population,
        };
        let mut world = self.build_shard(plan, None);
        world.net.run_until(SimTime::ZERO + stop_at);
        let (scan, outstanding) = world
            .net
            .with_host(config.infra.prober, |ep| {
                let prober = ep
                    .as_any_mut()
                    .and_then(|any| any.downcast_mut::<Prober>())
                    .expect("the campaign registered a Prober here");
                (prober.checkpoint(), prober.outstanding_targets())
            })
            .expect("prober registered");
        let q2 = world.auth_capture.count(orscope_authns::Direction::Inbound) as u64;
        let r1 = world
            .auth_capture
            .count(orscope_authns::Direction::Outbound) as u64;
        Ok(CampaignCheckpoint {
            scan,
            outstanding,
            captures: world.prober_handle.drain(),
            auth_packets: world.auth_capture.drain(),
            q2,
            r1,
        })
    }

    /// Rebuilds a fresh world positioned at `checkpoint`, finishes the
    /// scan, and merges both phases into one result.
    ///
    /// The configuration must be the one the checkpoint was taken under
    /// (same year, scale, and seed), so the rebuilt population and
    /// target order match the suspended scan's.
    ///
    /// # Errors
    ///
    /// As for [`Campaign::run_partial`].
    pub fn resume_from(
        &self,
        checkpoint: &CampaignCheckpoint,
    ) -> Result<CampaignResult, CampaignError> {
        let config = self.config();
        config.validate()?;
        if config.shards != 1 {
            return Err(CampaignError::InvalidConfig(format!(
                "resuming requires shards = 1 (got {})",
                config.shards
            )));
        }
        let spec = YearSpec::get(config.year);
        let population = self.build_population();
        let threat = seed_threat_db(&population);
        let geo = seed_geo_db(&population);
        let knobs = self.shard_knobs(&spec);
        // The full original target list (the cursor indexes into it),
        // with the interrupted probes re-appended at the tail.
        let mut targets = self.build_targets(&spec, &population);
        targets.extend(checkpoint.outstanding.iter().copied());
        let plan = ShardPlan {
            shard: 0,
            attempt: 0,
            sim_seed: config.seed,
            total_rate_pps: knobs.total_rate,
            base_cluster: 0,
            cluster_capacity: knobs.cluster_capacity,
            targets: std::sync::Arc::new(targets),
            // Resume paces locally: the global slot grid described the
            // uninterrupted scan, not the remaining-targets tail.
            slot_indices: std::sync::Arc::new(Vec::new()),
            population: &population,
        };
        let mut world = self.build_shard(plan, Some(&checkpoint.scan));
        let probe_span = world.collector.phase("phase.probe");
        world.net.run_until_idle();
        let mut outcome = world.collect(probe_span);

        // ---- merge the two phases ----
        let mut captures = checkpoint.captures.clone();
        captures.append(&mut outcome.captures);
        outcome.captures = captures;
        outcome.q2 += checkpoint.q2;
        outcome.r1 += checkpoint.r1;
        let mut auth_packets = checkpoint.auth_packets.clone();
        auth_packets.append(&mut outcome.auth_packets);
        auth_packets.sort_by_key(|packet| packet.at);
        let dataset = outcome.dataset(config);
        Ok(CampaignResult::new(
            config.clone(),
            spec,
            dataset,
            threat,
            geo,
            population,
            outcome.net_stats,
            outcome.materialized_peak,
            auth_packets,
            config.telemetry.then_some(outcome.telemetry),
            None,
            // Checkpoint halves are merged as buffered captures, so the
            // resumed result always analyzes in batch mode.
            None,
        ))
    }
}
