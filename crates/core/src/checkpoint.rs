//! Campaign-level checkpoint and resume.
//!
//! The paper's 2013 scan ran for seven days; a rerun of it has to
//! survive operator restarts. [`Campaign::run_partial`] runs a
//! single-shard campaign up to a virtual-time cut, freezes the world,
//! and returns a [`CampaignCheckpoint`]: the prober's scan cursor (a
//! [`ScanCheckpoint`]) plus everything already captured.
//! [`Campaign::resume_from`] rebuilds a fresh world positioned at that
//! cursor, re-probes the targets that were in flight, finishes the
//! scan, and merges both halves into one [`CampaignResult`].
//!
//! Because fault draws are hashed per flow (keyed on the endpoint pair
//! and a per-pair ordinal), a probe flow re-run in the fresh world sees
//! exactly the draws it would have seen uninterrupted — so a resumed
//! lossy campaign classifies identically to a straight run. Two
//! exceptions: time-*windowed* fault rules are evaluated against the
//! resumed world's restarted clock, and shared forwarder upstreams
//! accumulate cross-flow ordinals that the restart resets; resumption
//! is exact for always-on rules over non-forwarding populations.

use std::net::Ipv4Addr;
use std::time::Duration;

pub mod integrity {
    //! A tamper-evident envelope for checkpoint files.
    //!
    //! Checkpoints are the only state that survives a crash, so a
    //! truncated or bit-flipped file must be *detected* at resume, never
    //! silently parsed into half a table. [`seal`] prefixes a payload
    //! with a one-line header carrying the payload length and a 64-bit
    //! FNV-1a digest; [`unseal`] re-verifies both and says exactly which
    //! way the file is bad. [`persist_atomic`] writes a sealed file
    //! crash-safely: temp file, `fsync` the file, rename into place,
    //! `fsync` the directory — a `kill -9` at any instant leaves either
    //! the old generation or the new one, never a torn file that
    //! *passes* verification.

    use std::fs;
    use std::io::{self, Write};
    use std::path::{Path, PathBuf};

    /// Header magic; bump the version when the envelope layout changes.
    pub const MAGIC: &str = "ORSCOPE-CKPT/1";

    /// How a sealed file failed verification.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum IntegrityError {
        /// No header line, or one that does not parse.
        BadHeader,
        /// The payload is shorter (truncation) or longer (splice) than
        /// the header promised.
        LengthMismatch {
            /// Bytes the header declared.
            declared: usize,
            /// Bytes actually present after the header.
            actual: usize,
        },
        /// The payload bytes do not hash to the header digest.
        DigestMismatch,
    }

    impl std::fmt::Display for IntegrityError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                IntegrityError::BadHeader => write!(f, "missing or malformed envelope header"),
                IntegrityError::LengthMismatch { declared, actual } => write!(
                    f,
                    "payload length {actual} does not match declared {declared} (truncated?)"
                ),
                IntegrityError::DigestMismatch => {
                    write!(f, "payload digest mismatch (bit flip or partial overwrite)")
                }
            }
        }
    }

    impl std::error::Error for IntegrityError {}

    /// 64-bit FNV-1a over `bytes` — not cryptographic, but a single
    /// flipped bit anywhere in the payload changes it, which is the
    /// failure model for local disk corruption.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// Wraps `payload` in the envelope: `MAGIC len digest\n` + payload.
    pub fn seal(payload: &[u8]) -> Vec<u8> {
        let header = format!("{MAGIC} {} {:016x}\n", payload.len(), digest(payload));
        let mut sealed = Vec::with_capacity(header.len() + payload.len());
        sealed.extend_from_slice(header.as_bytes());
        sealed.extend_from_slice(payload);
        sealed
    }

    /// Verifies the envelope and returns the payload slice.
    ///
    /// # Errors
    ///
    /// [`IntegrityError`] naming the first check that failed.
    pub fn unseal(sealed: &[u8]) -> Result<&[u8], IntegrityError> {
        let newline = sealed
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(IntegrityError::BadHeader)?;
        let header =
            std::str::from_utf8(&sealed[..newline]).map_err(|_| IntegrityError::BadHeader)?;
        let mut parts = header.split(' ');
        if parts.next() != Some(MAGIC) {
            return Err(IntegrityError::BadHeader);
        }
        let declared: usize = parts
            .next()
            .and_then(|raw| raw.parse().ok())
            .ok_or(IntegrityError::BadHeader)?;
        let expected = u64::from_str_radix(parts.next().ok_or(IntegrityError::BadHeader)?, 16)
            .map_err(|_| IntegrityError::BadHeader)?;
        if parts.next().is_some() {
            return Err(IntegrityError::BadHeader);
        }
        let payload = &sealed[newline + 1..];
        if payload.len() != declared {
            return Err(IntegrityError::LengthMismatch {
                declared,
                actual: payload.len(),
            });
        }
        if digest(payload) != expected {
            return Err(IntegrityError::DigestMismatch);
        }
        Ok(payload)
    }

    /// Writes `bytes` to `dir/name` crash-safely: staged temp file,
    /// `fsync`, rename over the target, then `fsync` the directory so
    /// the rename itself survives a power cut.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let staging = dir.join(format!("{name}.tmp"));
        {
            let mut file = fs::File::create(&staging)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        fs::rename(&staging, &path)?;
        // Directory fsync is best-effort off Unix (opening a directory
        // for sync is not portable), and even on Unix some filesystems
        // refuse it; the rename above is still atomic either way.
        if let Ok(dir_handle) = fs::File::open(dir) {
            let _ = dir_handle.sync_all();
        }
        Ok(path)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn seal_unseal_roundtrips() {
            let payload = b"{\"epochs\": 3}\n";
            let sealed = seal(payload);
            assert_eq!(unseal(&sealed).unwrap(), payload);
        }

        #[test]
        fn truncation_is_length_mismatch() {
            let sealed = seal(b"0123456789");
            for cut in [sealed.len() - 1, sealed.len() - 5] {
                match unseal(&sealed[..cut]) {
                    Err(IntegrityError::LengthMismatch { declared: 10, .. }) => {}
                    other => panic!("truncation at {cut} gave {other:?}"),
                }
            }
        }

        #[test]
        fn bit_flip_is_digest_mismatch() {
            let mut sealed = seal(b"0123456789");
            let last = sealed.len() - 1;
            sealed[last] ^= 0x40; // flip inside the payload, length kept
            assert_eq!(unseal(&sealed), Err(IntegrityError::DigestMismatch));
        }

        #[test]
        fn garbage_and_empty_are_bad_headers() {
            assert_eq!(unseal(b""), Err(IntegrityError::BadHeader));
            assert_eq!(
                unseal(b"not an envelope\nx"),
                Err(IntegrityError::BadHeader)
            );
            assert_eq!(unseal(b"\xff\xfe\n"), Err(IntegrityError::BadHeader));
        }

        #[test]
        fn persist_atomic_leaves_no_staging_file() {
            let dir =
                std::env::temp_dir().join(format!("orscope-integrity-test-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            let path = persist_atomic(&dir, "gen.ckpt", &seal(b"payload")).unwrap();
            assert!(path.exists());
            assert!(!dir.join("gen.ckpt.tmp").exists());
            assert_eq!(unseal(&fs::read(&path).unwrap()).unwrap(), b"payload");
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

use orscope_authns::CapturedPacket;
use orscope_netsim::SimTime;
use orscope_prober::{Prober, R2Capture, ScanCheckpoint};
use orscope_resolver::paper::YearSpec;

use crate::campaign::{Campaign, ShardPlan};
use crate::error::CampaignError;
use crate::infra::{seed_geo_db, seed_threat_db};
use crate::result::CampaignResult;

/// A suspended single-shard campaign: scan cursor plus everything the
/// first phase already captured.
#[derive(Debug, Clone)]
pub struct CampaignCheckpoint {
    /// The prober's cursor (serializable; see
    /// [`ScanCheckpoint::to_json_string`]).
    pub scan: ScanCheckpoint,
    /// Targets whose probe was in flight at the cut; they are re-probed
    /// on resume.
    pub outstanding: Vec<Ipv4Addr>,
    /// R2 packets captured before the cut.
    pub captures: Vec<R2Capture>,
    /// The authoritative server's packet capture before the cut.
    pub auth_packets: Vec<CapturedPacket>,
    /// Q2 packets the authoritative server saw before the cut.
    pub q2: u64,
    /// R1 packets the authoritative server sent before the cut.
    pub r1: u64,
}

impl Campaign {
    /// Runs a single-shard campaign up to `stop_at` of virtual time and
    /// returns the frozen state.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidConfig`] for a degenerate
    /// configuration or a shard count other than 1 (checkpointing
    /// freezes one world; shard a resumed campaign afterwards instead).
    pub fn run_partial(&self, stop_at: Duration) -> Result<CampaignCheckpoint, CampaignError> {
        let config = self.config();
        config.validate()?;
        if config.shards != 1 {
            return Err(CampaignError::InvalidConfig(format!(
                "checkpointing requires shards = 1 (got {})",
                config.shards
            )));
        }
        let spec = YearSpec::get(config.year);
        let population = self.build_population();
        let knobs = self.shard_knobs(&spec);
        let targets = self.build_targets(&spec, &population);
        let slot_indices: Vec<u64> = (0..targets.len() as u64).collect();
        let plan = ShardPlan {
            shard: 0,
            attempt: 0,
            sim_seed: config.seed,
            total_rate_pps: knobs.total_rate,
            base_cluster: 0,
            cluster_capacity: knobs.cluster_capacity,
            targets: std::sync::Arc::new(targets),
            slot_indices: std::sync::Arc::new(slot_indices),
            population: &population,
        };
        let mut world = self.build_shard(plan, None);
        world.net.run_until(SimTime::ZERO + stop_at);
        let (scan, outstanding) = world
            .net
            .with_host(config.infra.prober, |ep| {
                let prober = ep
                    .as_any_mut()
                    .and_then(|any| any.downcast_mut::<Prober>())
                    .expect("the campaign registered a Prober here");
                (prober.checkpoint(), prober.outstanding_targets())
            })
            .expect("prober registered");
        let q2 = world.auth_capture.count(orscope_authns::Direction::Inbound) as u64;
        let r1 = world
            .auth_capture
            .count(orscope_authns::Direction::Outbound) as u64;
        Ok(CampaignCheckpoint {
            scan,
            outstanding,
            captures: world.prober_handle.drain(),
            auth_packets: world.auth_capture.drain(),
            q2,
            r1,
        })
    }

    /// Rebuilds a fresh world positioned at `checkpoint`, finishes the
    /// scan, and merges both phases into one result.
    ///
    /// The configuration must be the one the checkpoint was taken under
    /// (same year, scale, and seed), so the rebuilt population and
    /// target order match the suspended scan's.
    ///
    /// # Errors
    ///
    /// As for [`Campaign::run_partial`].
    pub fn resume_from(
        &self,
        checkpoint: &CampaignCheckpoint,
    ) -> Result<CampaignResult, CampaignError> {
        let config = self.config();
        config.validate()?;
        if config.shards != 1 {
            return Err(CampaignError::InvalidConfig(format!(
                "resuming requires shards = 1 (got {})",
                config.shards
            )));
        }
        let spec = YearSpec::get(config.year);
        let population = self.build_population();
        let threat = seed_threat_db(&population);
        let geo = seed_geo_db(&population);
        let knobs = self.shard_knobs(&spec);
        // The full original target list (the cursor indexes into it),
        // with the interrupted probes re-appended at the tail.
        let mut targets = self.build_targets(&spec, &population);
        targets.extend(checkpoint.outstanding.iter().copied());
        let plan = ShardPlan {
            shard: 0,
            attempt: 0,
            sim_seed: config.seed,
            total_rate_pps: knobs.total_rate,
            base_cluster: 0,
            cluster_capacity: knobs.cluster_capacity,
            targets: std::sync::Arc::new(targets),
            // Resume paces locally: the global slot grid described the
            // uninterrupted scan, not the remaining-targets tail.
            slot_indices: std::sync::Arc::new(Vec::new()),
            population: &population,
        };
        let mut world = self.build_shard(plan, Some(&checkpoint.scan));
        let probe_span = world.collector.phase("phase.probe");
        world.net.run_until_idle();
        let mut outcome = world.collect(probe_span);

        // ---- merge the two phases ----
        let mut captures = checkpoint.captures.clone();
        captures.append(&mut outcome.captures);
        outcome.captures = captures;
        outcome.q2 += checkpoint.q2;
        outcome.r1 += checkpoint.r1;
        let mut auth_packets = checkpoint.auth_packets.clone();
        auth_packets.append(&mut outcome.auth_packets);
        auth_packets.sort_by_key(|packet| packet.at);
        let dataset = outcome.dataset(config);
        Ok(CampaignResult::new(
            config.clone(),
            spec,
            dataset,
            threat,
            geo,
            population,
            outcome.net_stats,
            outcome.materialized_peak,
            auth_packets,
            config.telemetry.then_some(outcome.telemetry),
            None,
            // Checkpoint halves are merged as buffered captures, so the
            // resumed result always analyzes in batch mode.
            None,
        ))
    }
}
