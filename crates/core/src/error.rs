//! Campaign-level error and degradation reporting.

use std::fmt;

/// Why a campaign could not produce a (full) result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The configuration was rejected before any simulation ran.
    InvalidConfig(String),
    /// Every shard failed, including the retry pass; there is nothing
    /// to report.
    AllShardsFailed(Vec<ShardFailure>),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidConfig(reason) => {
                write!(f, "invalid campaign configuration: {reason}")
            }
            CampaignError::AllShardsFailed(failures) => {
                write!(f, "all {} shard(s) failed", failures.len())?;
                for failure in failures {
                    write!(f, "; shard {}: {}", failure.shard, failure.message)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// One shard's permanent failure (its panic survived the retry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Shard index (0-based).
    pub shard: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} failed permanently: {}",
            self.shard, self.message
        )
    }
}

/// Attached to a [`crate::CampaignResult`] whose campaign lost one or
/// more shards permanently: the surviving shards were merged, so every
/// reported quantity undercounts the configured scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// Shards that failed twice (initial run and retry).
    pub failed: Vec<ShardFailure>,
    /// Shards that panicked once and succeeded on retry.
    pub retried: Vec<usize>,
}

impl DegradedReport {
    /// True when at least one shard's data is missing from the result.
    pub fn is_partial(&self) -> bool {
        !self.failed.is_empty()
    }
}

impl fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DEGRADED RESULT: {} shard(s) missing, {} retried",
            self.failed.len(),
            self.retried.len()
        )?;
        for failure in &self.failed {
            writeln!(f, "  {failure}")?;
        }
        for shard in &self.retried {
            writeln!(f, "  shard {shard} recovered on retry")?;
        }
        Ok(())
    }
}

/// Deterministic shard-failure injection for supervisor testing: the
/// named shard panics on its first `failures` attempts. With
/// `failures == 1` the retry succeeds; with `failures >= 2` the shard
/// fails permanently and the campaign degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSabotage {
    /// Which shard to sabotage (0-based).
    pub shard: usize,
    /// How many attempts (first run + retries) should panic.
    pub failures: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let invalid = CampaignError::InvalidConfig("shards out of range".into());
        assert!(invalid.to_string().contains("shards out of range"));
        let failed = CampaignError::AllShardsFailed(vec![ShardFailure {
            shard: 3,
            message: "boom".into(),
        }]);
        let text = failed.to_string();
        assert!(text.contains("shard 3"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }

    #[test]
    fn degraded_report_partiality() {
        let mut report = DegradedReport::default();
        assert!(!report.is_partial());
        report.retried.push(1);
        assert!(!report.is_partial(), "a recovered shard is not missing");
        report.failed.push(ShardFailure {
            shard: 2,
            message: "x".into(),
        });
        assert!(report.is_partial());
        let text = report.to_string();
        assert!(text.contains("1 shard(s) missing"), "{text}");
        assert!(text.contains("shard 1 recovered"), "{text}");
    }
}
