//! Live flow tap: predicate-filtered streaming of bus records.
//!
//! A [`TapSubscriber`] attaches to a [`RecordBus`](crate::bus::RecordBus),
//! decodes each record on its own thread (classification and DNS
//! decoding never run on the event loop), evaluates a small
//! [`TapPredicate`] against it, and renders matches as one NDJSON line
//! each — the payload of `GET /tap?match=...` and `orscope tap`.
//!
//! The predicate language is a whitespace-separated conjunction of
//! `key=value` clauses (commas also separate):
//!
//! | clause | meaning |
//! |---|---|
//! | `qname=*.example` | qname glob (`*` wildcards, case-insensitive) |
//! | `rcode=NXDOMAIN` | rcode by name (case-insensitive) or 0-15 |
//! | `class=nxwall` | generated [`ProfileClass`] of the resolver |
//! | `src=198.51.` | source address: octet prefix or `a.b.c.d/len` |
//! | `dst=10.0.0.1` | destination address, same forms |
//!
//! An empty expression matches everything.

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use orscope_analysis::classify;
use orscope_authns::{CapturedPacket, Direction};
use orscope_dns_wire::header::Rcode;
use orscope_dns_wire::Message;
use orscope_netsim::SimTime;
use orscope_prober::R2Capture;
use orscope_resolver::profile::ProfileClass;

use crate::bus::{Record, RecordBus, TapReceiver};
use crate::infra::Infra;

/// A parse failure, with a human-readable reason (served as the body of
/// a `400` on `/tap`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateError(pub String);

impl std::fmt::Display for PredicateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad tap predicate: {}", self.0)
    }
}

impl std::error::Error for PredicateError {}

fn err<T>(reason: impl Into<String>) -> Result<T, PredicateError> {
    Err(PredicateError(reason.into()))
}

/// An address clause: either a CIDR block or a leading-octet prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AddrPattern {
    /// `a.b.c.d/len`: match under the network mask.
    Cidr(Ipv4Addr, u8),
    /// `198.51.` or `198.51`: match the leading octets exactly.
    Prefix(Vec<u8>),
}

impl AddrPattern {
    fn parse(value: &str) -> Result<Self, PredicateError> {
        if let Some((addr, len)) = value.split_once('/') {
            let addr: Ipv4Addr = match addr.parse() {
                Ok(a) => a,
                Err(_) => return err(format!("bad CIDR address {addr:?}")),
            };
            let len: u8 = match len.parse() {
                Ok(l) if l <= 32 => l,
                _ => return err(format!("bad CIDR prefix length {len:?}")),
            };
            return Ok(AddrPattern::Cidr(addr, len));
        }
        let trimmed = value.strip_suffix('.').unwrap_or(value);
        if trimmed.is_empty() {
            return err("empty address pattern");
        }
        let mut octets = Vec::new();
        for part in trimmed.split('.') {
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return err(format!("bad address octet {part:?} in {value:?}"));
            }
            let octet: u32 = part.parse().expect("all-digit, <= 3 chars");
            if octet > 255 {
                return err(format!("address octet {octet} out of range in {value:?}"));
            }
            octets.push(octet as u8);
        }
        if octets.len() > 4 {
            return err(format!("more than four octets in {value:?}"));
        }
        Ok(AddrPattern::Prefix(octets))
    }

    fn matches(&self, addr: Ipv4Addr) -> bool {
        match self {
            AddrPattern::Cidr(net, len) => {
                let mask = if *len == 0 {
                    0
                } else {
                    u32::MAX << (32 - *len)
                };
                (u32::from(addr) & mask) == (u32::from(*net) & mask)
            }
            AddrPattern::Prefix(octets) => {
                addr.octets().iter().zip(octets.iter()).all(|(a, p)| a == p)
            }
        }
    }
}

impl std::fmt::Display for AddrPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddrPattern::Cidr(addr, len) => write!(f, "{addr}/{len}"),
            AddrPattern::Prefix(octets) => {
                let parts: Vec<String> = octets.iter().map(|o| o.to_string()).collect();
                f.write_str(&parts.join("."))
            }
        }
    }
}

/// One `key=value` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Clause {
    /// `qname=` glob, stored lowercase.
    Qname(String),
    /// `rcode=` by name or numeric value.
    Rcode(Rcode),
    /// `class=` generated profile class.
    Class(ProfileClass),
    /// `src=` address pattern.
    Src(AddrPattern),
    /// `dst=` address pattern.
    Dst(AddrPattern),
}

impl Clause {
    fn parse(text: &str) -> Result<Self, PredicateError> {
        let Some((key, value)) = text.split_once('=') else {
            return err(format!("clause {text:?} is not key=value"));
        };
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return err(format!("clause {key:?} has an empty value"));
        }
        match key.to_ascii_lowercase().as_str() {
            "qname" => {
                let pattern = value.to_ascii_lowercase();
                if !pattern
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'*'))
                {
                    return err(format!("qname pattern {value:?} has invalid characters"));
                }
                Ok(Clause::Qname(pattern))
            }
            "rcode" => parse_rcode(value).map(Clause::Rcode),
            "class" => {
                let lower = value.to_ascii_lowercase();
                match ProfileClass::ALL.iter().find(|c| c.as_str() == lower) {
                    Some(class) => Ok(Clause::Class(*class)),
                    None => err(format!(
                        "unknown class {value:?} (expected one of {})",
                        ProfileClass::ALL.map(|c| c.as_str()).join(", ")
                    )),
                }
            }
            "src" => AddrPattern::parse(value).map(Clause::Src),
            "dst" => AddrPattern::parse(value).map(Clause::Dst),
            other => err(format!(
                "unknown key {other:?} (expected qname, rcode, class, src or dst)"
            )),
        }
    }

    fn matches(&self, event: &TapEvent) -> bool {
        match self {
            Clause::Qname(pattern) => match &event.qname {
                Some(qname) => glob_match(pattern.as_bytes(), qname.as_bytes()),
                None => false,
            },
            Clause::Rcode(rcode) => event.rcode == Some(*rcode),
            Clause::Class(class) => event.class == Some(*class),
            Clause::Src(pattern) => pattern.matches(event.src),
            Clause::Dst(pattern) => pattern.matches(event.dst),
        }
    }
}

impl std::fmt::Display for Clause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Clause::Qname(pattern) => write!(f, "qname={pattern}"),
            Clause::Rcode(Rcode::Other(v)) => write!(f, "rcode={v}"),
            Clause::Rcode(rcode) => write!(f, "rcode={rcode}"),
            Clause::Class(class) => write!(f, "class={}", class.as_str()),
            Clause::Src(pattern) => write!(f, "src={pattern}"),
            Clause::Dst(pattern) => write!(f, "dst={pattern}"),
        }
    }
}

fn parse_rcode(value: &str) -> Result<Rcode, PredicateError> {
    if value.bytes().all(|b| b.is_ascii_digit()) {
        return match value.parse::<u8>() {
            Ok(v) if v <= 15 => Ok(Rcode::from_u8(v)),
            _ => err(format!("rcode {value:?} out of range (0-15)")),
        };
    }
    let lower = value.to_ascii_lowercase();
    let named = [
        Rcode::NoError,
        Rcode::FormErr,
        Rcode::ServFail,
        Rcode::NXDomain,
        Rcode::NotImp,
        Rcode::Refused,
        Rcode::YXDomain,
        Rcode::YXRRSet,
        Rcode::NXRRSet,
        Rcode::NotAuth,
        Rcode::NotZone,
    ];
    match named
        .iter()
        .find(|r| r.to_string().to_ascii_lowercase() == lower)
    {
        Some(rcode) => Ok(*rcode),
        None => err(format!("unknown rcode {value:?}")),
    }
}

/// Iterative `*`-glob match (no allocation, no recursion depth limit to
/// hit: classic two-pointer with backtracking to the last star).
fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == text[t]) {
            p += 1;
            t += 1;
        } else if p < pattern.len() && pattern[p] == b'*' {
            star = Some((p, t));
            p += 1;
        } else if let Some((sp, st)) = star {
            p = sp + 1;
            t = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'*' {
        p += 1;
    }
    p == pattern.len()
}

/// A conjunction of clauses; matches a [`TapEvent`] iff every clause
/// does. The empty predicate matches everything.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TapPredicate {
    clauses: Vec<Clause>,
}

impl TapPredicate {
    /// The match-everything predicate.
    pub fn match_all() -> Self {
        Self::default()
    }

    /// Parses a whitespace-separated clause list (commas are tolerated
    /// as separators too, so `rcode=3,class=honest` works on a shell
    /// line that forgot to quote). The empty (or all-whitespace) string
    /// parses to [`TapPredicate::match_all`]. Never panics: any
    /// malformed input is a [`PredicateError`].
    pub fn parse(text: &str) -> Result<Self, PredicateError> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(Self::match_all());
        }
        let mut clauses = Vec::new();
        for token in text.split_whitespace() {
            for part in token.split(',') {
                if part.is_empty() {
                    return err("empty clause (stray comma?)");
                }
                clauses.push(Clause::parse(part)?);
            }
        }
        Ok(Self { clauses })
    }

    /// Whether `event` satisfies every clause.
    pub fn matches(&self, event: &TapEvent) -> bool {
        self.clauses.iter().all(|clause| clause.matches(event))
    }

    /// Number of clauses (0 for match-all).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether this is the match-everything predicate.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

impl std::fmt::Display for TapPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for TapPredicate {
    type Err = PredicateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Where in the Fig. 2 topology a tapped record was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapKind {
    /// R2: the response the prober captured from the probed target.
    R2,
    /// Q2: a query arriving at the authoritative server.
    Q2,
    /// R1: the authoritative server's response going out.
    R1,
}

impl TapKind {
    /// Stable lowercase label used in the NDJSON `kind` field.
    pub fn as_str(self) -> &'static str {
        match self {
            TapKind::R2 => "r2",
            TapKind::Q2 => "q2",
            TapKind::R1 => "r1",
        }
    }
}

/// One decoded, taggable record: what a predicate sees and what one
/// NDJSON line serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct TapEvent {
    /// Capture point.
    pub kind: TapKind,
    /// Virtual capture time.
    pub at: SimTime,
    /// Packet source (the probed resolver for R2, the querying resolver
    /// for Q2, the authoritative server for R1).
    pub src: Ipv4Addr,
    /// Packet destination.
    pub dst: Ipv4Addr,
    /// Decoded qname (lowercase); `None` when the payload has no
    /// parseable question.
    pub qname: Option<String>,
    /// Decoded rcode; `None` when the header is unparseable.
    pub rcode: Option<Rcode>,
    /// Generated profile class of the resolver side of the flow, when
    /// the address is in the campaign's class index.
    pub class: Option<ProfileClass>,
    /// Raw payload length in bytes.
    pub payload_len: usize,
}

impl TapEvent {
    /// Renders the event as one NDJSON object (no trailing newline),
    /// with fields in a stable order. Hand-formatted: the only strings
    /// are addresses, qnames and enum labels, and the output must stay
    /// a dependency-free hot loop on the tap drain thread.
    pub fn to_ndjson(&self) -> String {
        let mut line = String::with_capacity(128);
        line.push_str("{\"at\":");
        line.push_str(&format!("{:.6}", self.at.as_secs_f64()));
        line.push_str(",\"kind\":\"");
        line.push_str(self.kind.as_str());
        line.push_str("\",\"src\":\"");
        line.push_str(&self.src.to_string());
        line.push_str("\",\"dst\":\"");
        line.push_str(&self.dst.to_string());
        line.push('"');
        if let Some(qname) = &self.qname {
            line.push_str(",\"qname\":\"");
            push_json_escaped(&mut line, qname);
            line.push('"');
        }
        if let Some(rcode) = self.rcode {
            line.push_str(",\"rcode\":\"");
            line.push_str(&rcode.to_string());
            line.push('"');
        }
        if let Some(class) = self.class {
            line.push_str(",\"class\":\"");
            line.push_str(class.as_str());
            line.push('"');
        }
        line.push_str(",\"len\":");
        line.push_str(&self.payload_len.to_string());
        line.push('}');
        line
    }
}

/// Escapes `text` for a JSON string literal. Qnames are restricted
/// ASCII in practice, but a hostile payload could decode to anything.
fn push_json_escaped(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A bus subscriber that decodes, filters and renders records.
///
/// All decoding happens on the caller's (consumer) thread — the
/// publisher only ever clones `Bytes`-backed records into the bounded
/// queue.
pub struct TapSubscriber {
    receiver: TapReceiver,
    predicate: TapPredicate,
    bus: Arc<RecordBus>,
    prober: Ipv4Addr,
    auth: Ipv4Addr,
}

impl std::fmt::Debug for TapSubscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapSubscriber")
            .field("lane", &self.receiver.id())
            .field("predicate", &self.predicate.to_string())
            .finish()
    }
}

impl TapSubscriber {
    /// Subscribes a new lane of `capacity` records on `bus`, filtered
    /// by `predicate`. `infra` supplies the prober/auth addresses used
    /// to orient src/dst.
    pub fn attach(
        bus: &Arc<RecordBus>,
        predicate: TapPredicate,
        capacity: usize,
        infra: &Infra,
    ) -> Self {
        Self {
            receiver: bus.subscribe(capacity),
            predicate,
            bus: bus.clone(),
            prober: infra.prober,
            auth: infra.auth,
        }
    }

    /// Stable lane id (matches `/metrics` `lane=` labels).
    pub fn lane_id(&self) -> u64 {
        self.receiver.id()
    }

    /// Records the publisher dropped on this lane so far.
    pub fn dropped(&self) -> u64 {
        self.receiver.dropped()
    }

    /// Waits up to `timeout` for the next record that satisfies the
    /// predicate. Non-matching records are consumed and discarded;
    /// `None` means the timeout elapsed.
    pub fn poll(&self, timeout: Duration) -> Option<TapEvent> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let record = self.receiver.recv_timeout(remaining)?;
            let event = self.decode(&record);
            if self.predicate.matches(&event) {
                return Some(event);
            }
            if remaining.is_zero() {
                return None;
            }
        }
    }

    /// Drains without waiting: the next already-queued matching record.
    pub fn poll_now(&self) -> Option<TapEvent> {
        loop {
            let record = self.receiver.try_recv()?;
            let event = self.decode(&record);
            if self.predicate.matches(&event) {
                return Some(event);
            }
        }
    }

    /// Decodes one raw record into a taggable event.
    fn decode(&self, record: &Record) -> TapEvent {
        match record {
            Record::R2(capture) => self.decode_r2(capture),
            Record::Auth(packet) => self.decode_auth(packet),
        }
    }

    fn decode_r2(&self, capture: &R2Capture) -> TapEvent {
        let rcode = classify(capture).map(|c| c.rcode);
        TapEvent {
            kind: TapKind::R2,
            at: capture.at,
            src: capture.target,
            dst: self.prober,
            qname: Some(capture.qname.to_string().to_ascii_lowercase()),
            rcode,
            class: self.bus.class_of(capture.target),
            payload_len: capture.payload.len(),
        }
    }

    fn decode_auth(&self, packet: &CapturedPacket) -> TapEvent {
        let (kind, src, dst) = match packet.direction {
            Direction::Inbound => (TapKind::Q2, packet.peer, self.auth),
            Direction::Outbound => (TapKind::R1, self.auth, packet.peer),
        };
        let message = Message::decode(&packet.payload).ok();
        let qname = message
            .as_ref()
            .and_then(|m| m.first_question())
            .map(|q| q.qname().to_string().to_ascii_lowercase());
        let rcode = message.as_ref().map(|m| m.header().rcode());
        TapEvent {
            kind,
            at: packet.at,
            src,
            dst,
            qname,
            rcode,
            class: self.bus.class_of(packet.peer),
            payload_len: packet.payload.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: TapKind) -> TapEvent {
        TapEvent {
            kind,
            at: SimTime::from_secs(1),
            src: Ipv4Addr::new(198, 51, 100, 7),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            qname: Some("a7.c3.ucfsealresearch.net".into()),
            rcode: Some(Rcode::NXDomain),
            class: Some(ProfileClass::NxWall),
            payload_len: 64,
        }
    }

    #[test]
    fn empty_predicate_matches_everything() {
        let p = TapPredicate::parse("").unwrap();
        assert!(p.is_empty());
        assert!(p.matches(&event(TapKind::R2)));
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn conjunction_requires_every_clause() {
        let p = TapPredicate::parse("rcode=NXDOMAIN class=nxwall").unwrap();
        assert!(p.matches(&event(TapKind::R2)));
        let p = TapPredicate::parse("rcode=NXDOMAIN class=honest").unwrap();
        assert!(!p.matches(&event(TapKind::R2)));
        // Comma separators are tolerated and mean the same conjunction.
        let p = TapPredicate::parse("rcode=NXDOMAIN,class=nxwall").unwrap();
        assert!(p.matches(&event(TapKind::R2)));
    }

    #[test]
    fn qname_glob_is_case_insensitive() {
        let p = TapPredicate::parse("qname=*.UCFSEALRESEARCH.net").unwrap();
        assert!(p.matches(&event(TapKind::R2)));
        let p = TapPredicate::parse("qname=*.example").unwrap();
        assert!(!p.matches(&event(TapKind::R2)));
    }

    #[test]
    fn glob_star_backtracks() {
        assert!(glob_match(b"a*b*c", b"axxbxbxc"));
        assert!(glob_match(b"*", b"anything"));
        assert!(glob_match(b"*", b""));
        assert!(!glob_match(b"a*b", b"a"));
        assert!(glob_match(b"a.b", b"a.b"));
        assert!(!glob_match(b"a.b", b"aXb"));
    }

    #[test]
    fn rcode_accepts_names_and_numbers() {
        assert_eq!(parse_rcode("nxdomain").unwrap(), Rcode::NXDomain);
        assert_eq!(parse_rcode("NXDOMAIN").unwrap(), Rcode::NXDomain);
        assert_eq!(parse_rcode("3").unwrap(), Rcode::NXDomain);
        assert_eq!(parse_rcode("12").unwrap(), Rcode::Other(12));
        assert!(parse_rcode("16").is_err());
        assert!(parse_rcode("banana").is_err());
    }

    #[test]
    fn addr_prefix_matches_octet_wise() {
        let p = TapPredicate::parse("src=198.51.").unwrap();
        assert!(p.matches(&event(TapKind::R2)));
        // "198.5" must NOT match 198.51.* — octets, not text prefixes.
        let p = TapPredicate::parse("src=198.5").unwrap();
        assert!(!p.matches(&event(TapKind::R2)));
        let p = TapPredicate::parse("dst=10.0.0.1").unwrap();
        assert!(p.matches(&event(TapKind::R2)));
    }

    #[test]
    fn addr_cidr_masks() {
        let p = TapPredicate::parse("src=198.51.100.0/24").unwrap();
        assert!(p.matches(&event(TapKind::R2)));
        let p = TapPredicate::parse("src=198.51.101.0/24").unwrap();
        assert!(!p.matches(&event(TapKind::R2)));
        let p = TapPredicate::parse("src=0.0.0.0/0").unwrap();
        assert!(p.matches(&event(TapKind::R2)));
    }

    #[test]
    fn malformed_inputs_err() {
        for bad in [
            "rcode",
            "rcode=",
            "=x",
            "qname=sp ace",
            "class=wizard",
            "src=1.2.3.4.5",
            "src=300.1",
            "src=1.2.3.4/33",
            "frobnicate=1",
            "rcode=NXDOMAIN,,class=honest",
        ] {
            assert!(
                TapPredicate::parse(bad).is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "qname=*.example rcode=NXDomain class=nxwall src=198.51 dst=10.0.0.0/8",
            "qname=*.example,rcode=NXDomain,class=nxwall",
            "rcode=12",
            "src=1.2.3.4",
            "",
        ] {
            let p = TapPredicate::parse(text).unwrap();
            let shown = p.to_string();
            assert_eq!(TapPredicate::parse(&shown).unwrap(), p, "via {shown:?}");
        }
    }

    #[test]
    fn ndjson_has_stable_fields() {
        let line = event(TapKind::Q2).to_ndjson();
        assert_eq!(
            line,
            "{\"at\":1.000000,\"kind\":\"q2\",\"src\":\"198.51.100.7\",\
             \"dst\":\"10.0.0.1\",\"qname\":\"a7.c3.ucfsealresearch.net\",\
             \"rcode\":\"NXDomain\",\"class\":\"nxwall\",\"len\":64}"
        );
    }

    #[test]
    fn ndjson_escapes_hostile_qnames() {
        let mut e = event(TapKind::R2);
        e.qname = Some("a\"b\\c\nd".into());
        assert!(e.to_ndjson().contains("a\\\"b\\\\c\\u000ad"));
    }
}
