//! Continuous monitoring of the open-resolver ecosystem.
//!
//! The paper's discussion (§V) argues that one-shot scans are not
//! enough: the open-resolver count fell between 2013 and 2018 while the
//! *malicious* population grew, and no operational project tracked the
//! transition (openresolverproject.org shut down in 2017). This module
//! provides the tool the paper calls for: a scan series over populations
//! interpolated between the two calibrated endpoints, so the crossing
//! trends are visible as a time series rather than two snapshots.
//!
//! Interpolation at mix `alpha` samples `(1 - alpha)` of the 2013
//! population and `alpha` of the 2018 population (cell-wise, via each
//! year's largest-remainder scaling), which linearly interpolates every
//! behavioural cell count.

use orscope_resolver::paper::Year;
use orscope_resolver::population::{Population, PopulationConfig};

use crate::campaign::{Campaign, CampaignConfig};

/// One point of the monitoring series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Mix parameter: 0.0 = pure 2013, 1.0 = pure 2018.
    pub alpha: f64,
    /// Nominal calendar label (linear between the scan dates).
    pub year_label: f64,
    /// Responders observed (R2).
    pub r2: u64,
    /// Responses carrying answers.
    pub with_answer: u64,
    /// Correct answers.
    pub correct: u64,
    /// Incorrect answers.
    pub incorrect: u64,
    /// Err% (Table III definition).
    pub err_pct: f64,
    /// Threat-reported (malicious) responses.
    pub malicious: u64,
}

/// Configuration of a monitoring run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendConfig {
    /// Number of points including both endpoints (>= 2).
    pub steps: usize,
    /// Population scale for each point.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        Self {
            steps: 6, // one per year, 2013..=2018
            scale: 2_000.0,
            seed: 0x7E3D,
        }
    }
}

/// Builds the population for mix `alpha` by sampling both endpoint
/// populations at proportionally reduced scales and merging them.
///
/// Address collisions between the two samples are impossible: the 2013
/// sample reserves every infrastructure address and the 2018 sample
/// additionally reserves all 2013 addresses.
pub fn interpolated_population(
    alpha: f64,
    scale: f64,
    seed: u64,
    reserved: Vec<std::net::Ipv4Addr>,
) -> Population {
    let alpha = alpha.clamp(0.0, 1.0);
    let mut merged: Option<Population> = None;
    for (year, weight, salt) in [(Year::Y2013, 1.0 - alpha, 0u64), (Year::Y2018, alpha, 1)] {
        if weight < 1e-9 {
            continue;
        }
        let mut config = PopulationConfig::new(year, scale / weight);
        config.seed = seed ^ (salt << 32) ^ salt;
        config.reserved_hosts = reserved.clone();
        let mut part = Population::generate(&config);
        match &mut merged {
            None => {
                // Reserve this sample's addresses for the next one.
                merged = Some(part);
            }
            Some(base) => {
                let taken: std::collections::HashSet<_> = base.resolvers.addrs().collect();
                base.merge(&part, |addr| !taken.contains(&addr));
                base.malicious_answers.append(&mut part.malicious_answers);
                // Answer-org seeds may repeat across years; dedup by IP.
                base.answer_orgs.extend(part.answer_orgs);
                base.answer_orgs.sort_by_key(|&(ip, _)| ip);
                base.answer_orgs.dedup_by_key(|&mut (ip, _)| ip);
            }
        }
    }
    merged.expect("at least one endpoint sampled")
}

/// Runs the scan series and returns one [`TrendPoint`] per step.
///
/// # Panics
///
/// Panics if `config.steps < 2`.
pub fn run_trend(config: &TrendConfig) -> Vec<TrendPoint> {
    assert!(config.steps >= 2, "a trend needs both endpoints");
    let mut points = Vec::with_capacity(config.steps);
    for step in 0..config.steps {
        let alpha = step as f64 / (config.steps - 1) as f64;
        // Scan machinery (rates, zone) follows the nearer endpoint.
        let year = if alpha < 0.5 {
            Year::Y2013
        } else {
            Year::Y2018
        };
        let campaign_config = CampaignConfig::new(year, config.scale).with_seed(config.seed);
        let population = interpolated_population(
            alpha,
            config.scale,
            config.seed,
            campaign_config.infra.addresses(),
        );
        let result = Campaign::new(campaign_config)
            .run_with_population(population)
            .expect("trend configurations are well-formed");
        let t3 = result.table3_measured().0;
        points.push(TrendPoint {
            alpha,
            year_label: 2013.0 + alpha * 5.0,
            r2: result.dataset().r2(),
            with_answer: t3.w(),
            correct: t3.w_corr,
            incorrect: t3.w_incorr,
            err_pct: t3.err_pct(),
            malicious: result.table9_measured().total_r2(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_pure_years() {
        let config = TrendConfig {
            steps: 2,
            scale: 5_000.0,
            seed: 7,
        };
        let points = run_trend(&config);
        assert_eq!(points.len(), 2);
        let (p13, p18) = (&points[0], &points[1]);
        // 2013 endpoint: ~16.66M / 5000 responders; 2018: ~6.5M / 5000.
        assert!((p13.r2 as f64 - 3_332.0).abs() < 5.0, "{}", p13.r2);
        assert!((p18.r2 as f64 - 1_301.0).abs() < 5.0, "{}", p18.r2);
        assert!(p13.err_pct < 1.5);
        assert!(p18.err_pct > 3.0);
    }

    #[test]
    fn midpoint_interpolates_counts() {
        let population = interpolated_population(0.5, 5_000.0, 3, Vec::new());
        // (16,660,123 + 6,506,258) / 2 / 5000 ~= 2,317.
        let expected = (16_660_123.0_f64 / 2.0 + 6_506_258.0 / 2.0) / 5_000.0;
        assert!(
            (population.resolvers.len() as f64 - expected).abs() < 10.0,
            "{} vs {expected}",
            population.resolvers.len()
        );
        // No duplicate addresses survived the merge.
        let unique: std::collections::HashSet<_> = population.resolvers.addrs().collect();
        assert_eq!(unique.len(), population.resolvers.len());
    }

    #[test]
    fn trend_shows_crossing_lines() {
        let points = run_trend(&TrendConfig {
            steps: 3,
            scale: 4_000.0,
            seed: 11,
        });
        // R2 falls monotonically...
        assert!(points[0].r2 > points[1].r2);
        assert!(points[1].r2 > points[2].r2);
        // ...while the error rate rises...
        assert!(points[2].err_pct > points[0].err_pct);
        // ...and malicious volume grows despite the shrink.
        assert!(points[2].malicious > points[0].malicious);
    }
}
