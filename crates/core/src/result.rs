//! Campaign results: tables, comparisons, and rendering.

use orscope_analysis::tables::{
    AmplificationTable, AsnTable, CountryTable, EmptyQuestionReport, Table10, Table2, Table3,
    Table4, Table5, Table6, Table7, Table8, Table9,
};
use orscope_analysis::{Comparison, Dataset, FlowSet, ScanSummary, StreamingAnalyzer, TableReport};
use orscope_authns::CapturedPacket;
use orscope_geo::GeoDb;
use orscope_netsim::NetStats;
use orscope_resolver::paper::YearSpec;
use orscope_resolver::population::Population;
use orscope_telemetry::TelemetrySnapshot;
use orscope_threatintel::ThreatDb;

use crate::campaign::CampaignConfig;
use crate::error::DegradedReport;

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    config: CampaignConfig,
    spec: YearSpec,
    dataset: Dataset,
    threat: ThreatDb,
    geo: GeoDb,
    population: Population,
    net_stats: NetStats,
    materialized_hosts: usize,
    auth_packets: Vec<CapturedPacket>,
    telemetry: Option<TelemetrySnapshot>,
    degraded: Option<DegradedReport>,
    /// Streaming accumulators when the campaign ran in
    /// [`orscope_analysis::AnalysisMode::Streaming`]; `None` means every
    /// table computes from the buffered `dataset` (batch mode).
    stream: Option<StreamingAnalyzer>,
    /// The four-flow join, assembled once at construction: drained out
    /// of the streaming accumulators, or recomputed from the classified
    /// records in batch mode.
    flows: FlowSet,
}

impl CampaignResult {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: CampaignConfig,
        spec: YearSpec,
        dataset: Dataset,
        threat: ThreatDb,
        geo: GeoDb,
        population: Population,
        net_stats: NetStats,
        materialized_hosts: usize,
        auth_packets: Vec<CapturedPacket>,
        telemetry: Option<TelemetrySnapshot>,
        degraded: Option<DegradedReport>,
        mut stream: Option<StreamingAnalyzer>,
    ) -> Self {
        let flows = match stream.as_mut() {
            // Drain rather than clone: the join state is the largest
            // structure the streaming accumulators hold.
            Some(stream) => stream.take_flows(),
            None => FlowSet::match_records(&dataset.records, &auth_packets, &config.infra.zone),
        };
        Self {
            config,
            spec,
            dataset,
            threat,
            geo,
            population,
            net_stats,
            materialized_hosts,
            auth_packets,
            telemetry,
            degraded,
            stream,
            flows,
        }
    }

    /// Supervision report: present when any shard panicked (whether it
    /// recovered on retry or failed permanently). `None` for a clean
    /// run.
    pub fn degraded(&self) -> Option<&DegradedReport> {
        self.degraded.as_ref()
    }

    /// True when at least one shard failed permanently, so every count
    /// in this result undercounts the configured scan.
    pub fn is_partial(&self) -> bool {
        self.degraded
            .as_ref()
            .is_some_and(DegradedReport::is_partial)
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The paper specification this campaign reproduces.
    pub fn spec(&self) -> &YearSpec {
        &self.spec
    }

    /// The classified dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The threat-intelligence database used for validation.
    pub fn threat_db(&self) -> &ThreatDb {
        &self.threat
    }

    /// The geolocation database.
    pub fn geo_db(&self) -> &GeoDb {
        &self.geo
    }

    /// The generated population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Simulator counters for the run.
    pub fn net_stats(&self) -> &NetStats {
        &self.net_stats
    }

    /// Peak live lazily-materialized hosts, summed over shards (0 in
    /// eager mode, where every host exists for the whole run). At paper
    /// scale this stays orders of magnitude below the population size —
    /// the number that makes `scale == 1.0` fit in memory.
    pub fn materialized_hosts(&self) -> usize {
        self.materialized_hosts
    }

    /// The authoritative server's raw Q2/R1 capture.
    pub fn auth_packets(&self) -> &[CapturedPacket] {
        &self.auth_packets
    }

    /// The merged telemetry snapshot, when the campaign ran with
    /// telemetry enabled (the [`CampaignConfig::telemetry`] default).
    /// Global-scope metrics in it are shard-invariant; shard-scope
    /// metrics and spans describe this particular execution.
    pub fn telemetry(&self) -> Option<&TelemetrySnapshot> {
        self.telemetry.as_ref()
    }

    /// Joins the prober and authoritative captures into per-probe flows
    /// (the qname-keyed Q1/Q2/R1/R2 grouping of section III-B). In
    /// streaming mode the join state was folded at capture time; in
    /// batch mode it was computed from the classified records when the
    /// result was assembled.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// Moves the streaming accumulators out of the result (present when
    /// the campaign ran in [`orscope_analysis::AnalysisMode::Streaming`]).
    ///
    /// Long-running consumers — the observatory's rolling tables —
    /// `absorb` each round's analyzer into a cross-epoch accumulator
    /// instead of keeping whole results alive. After the take, table
    /// accessors fall back to the batch path over the (streaming-mode:
    /// counter-only) dataset, so take the tables you need first.
    pub fn take_stream(&mut self) -> Option<StreamingAnalyzer> {
        self.stream.take()
    }

    /// Measured Table II.
    pub fn table2_measured(&self) -> Table2 {
        Table2::measured(&self.dataset)
    }

    /// Measured Table III.
    pub fn table3_measured(&self) -> Table3 {
        match &self.stream {
            Some(stream) => stream.table3(),
            None => Table3::measured(&self.dataset),
        }
    }

    /// Measured Table IV.
    pub fn table4_measured(&self) -> Table4 {
        match &self.stream {
            Some(stream) => stream.table4(),
            None => Table4::measured(&self.dataset),
        }
    }

    /// Measured Table V.
    pub fn table5_measured(&self) -> Table5 {
        match &self.stream {
            Some(stream) => stream.table5(),
            None => Table5::measured(&self.dataset),
        }
    }

    /// Measured Table VI.
    pub fn table6_measured(&self) -> Table6 {
        match &self.stream {
            Some(stream) => stream.table6(),
            None => Table6::measured(&self.dataset),
        }
    }

    /// Measured Table VII.
    pub fn table7_measured(&self) -> Table7 {
        match &self.stream {
            Some(stream) => stream.table7(),
            None => Table7::measured(&self.dataset),
        }
    }

    /// Measured Table VIII (top-10).
    pub fn table8_measured(&self) -> Table8 {
        match &self.stream {
            Some(stream) => stream.table8(&self.geo, &self.threat, 10),
            None => Table8::measured(&self.dataset, &self.geo, &self.threat, 10),
        }
    }

    /// Measured Table IX.
    pub fn table9_measured(&self) -> Table9 {
        match &self.stream {
            Some(stream) => stream.table9(&self.threat),
            None => Table9::measured(&self.dataset, &self.threat),
        }
    }

    /// Measured Table X.
    pub fn table10_measured(&self) -> Table10 {
        match &self.stream {
            Some(stream) => stream.table10(&self.threat),
            None => Table10::measured(&self.dataset, &self.threat),
        }
    }

    /// Measured country distribution.
    pub fn countries_measured(&self) -> CountryTable {
        match &self.stream {
            Some(stream) => stream.countries(&self.geo, &self.threat),
            None => CountryTable::measured(&self.dataset, &self.geo, &self.threat),
        }
    }

    /// Measured AS distribution of malicious resolvers.
    pub fn asns_measured(&self) -> AsnTable {
        match &self.stream {
            Some(stream) => stream.asns(&self.geo, &self.threat),
            None => AsnTable::measured(&self.dataset, &self.geo, &self.threat),
        }
    }

    /// Measured amplification exposure of the responding population.
    pub fn amplification_measured(&self) -> AmplificationTable {
        match &self.stream {
            Some(stream) => stream.amplification(),
            None => AmplificationTable::measured(&self.dataset),
        }
    }

    /// Measured empty-question report.
    pub fn empty_question_measured(&self) -> EmptyQuestionReport {
        match &self.stream {
            Some(stream) => stream.empty_question(),
            None => EmptyQuestionReport::measured(&self.dataset),
        }
    }

    /// The abstract-level headline numbers for this scan, computed from
    /// the same tables either analysis mode produces.
    pub fn scan_summary(&self) -> ScanSummary {
        ScanSummary::from_tables(
            self.dataset.year.as_u16(),
            self.dataset.scale,
            self.dataset.r2(),
            self.table3_measured().0,
            self.table4_measured().0,
            self.table5_measured().0,
            &self.table9_measured(),
        )
    }

    /// De-scales a measured count to paper scale.
    fn up(&self, measured: u64) -> u64 {
        self.dataset.descale(measured)
    }

    /// Builds the full paper-vs-measured report, one block per table.
    ///
    /// Measured counts are de-scaled back to paper scale so the ratios
    /// are directly interpretable; in fast mode the Table II Q1/duration
    /// rows reflect the reduced probe space and are flagged in the
    /// title.
    pub fn table_reports(&self) -> Vec<TableReport> {
        let spec = &self.spec;
        let mut reports = Vec::new();

        // Table II.
        let mut t2 = TableReport::new(if self.config.full_q1 {
            "Table II (probe summary)".to_owned()
        } else {
            "Table II (probe summary; fast mode, Q1/duration reduced)".to_owned()
        });
        let m2 = self.table2_measured();
        let p2 = Table2::paper(spec);
        t2.push(Comparison::counts("Q1", p2.q1, self.up(m2.q1)));
        t2.push(Comparison::counts("Q2,R1", p2.q2_r1, self.up(m2.q2_r1)));
        t2.push(Comparison::counts("R2", p2.r2, self.up(m2.r2)));
        reports.push(t2);

        // Table III.
        let mut t3 = TableReport::new("Table III (answer presence and correctness)");
        let m3 = self.table3_measured().0;
        let p3 = Table3::paper(spec).0;
        t3.push(Comparison::counts("W/O", p3.wo, self.up(m3.wo)));
        t3.push(Comparison::counts("W_corr", p3.w_corr, self.up(m3.w_corr)));
        t3.push(Comparison::counts(
            "W_incorr",
            p3.w_incorr,
            self.up(m3.w_incorr),
        ));
        t3.push(Comparison::ratios("Err%", p3.err_pct(), m3.err_pct()));
        reports.push(t3);

        // Tables IV and V.
        for (name, measured, paper) in [
            (
                "Table IV (RA flag)",
                self.table4_measured().0,
                Table4::paper(spec).0,
            ),
            (
                "Table V (AA flag)",
                self.table5_measured().0,
                Table5::paper(spec).0,
            ),
        ] {
            let mut rep = TableReport::new(name);
            for (bit, m, p) in [
                (0, measured.flag0, paper.flag0),
                (1, measured.flag1, paper.flag1),
            ] {
                rep.push(Comparison::counts(
                    format!("bit{bit} W/O"),
                    p.wo,
                    self.up(m.wo),
                ));
                rep.push(Comparison::counts(
                    format!("bit{bit} W_corr"),
                    p.w_corr,
                    self.up(m.w_corr),
                ));
                rep.push(Comparison::counts(
                    format!("bit{bit} W_incorr"),
                    p.w_incorr,
                    self.up(m.w_incorr),
                ));
            }
            reports.push(rep);
        }

        // Table VI.
        let mut t6 = TableReport::new("Table VI (rcode distribution)");
        let m6 = self.table6_measured();
        let p6 = Table6::paper(spec);
        for (rcode, pw, pwo) in &p6.rows {
            let (mw, mwo) = m6.get(*rcode);
            t6.push(Comparison::counts(format!("{rcode} W"), *pw, self.up(mw)));
            t6.push(Comparison::counts(
                format!("{rcode} W/O"),
                *pwo,
                self.up(mwo),
            ));
        }
        reports.push(t6);

        // Table VII.
        let mut t7 = TableReport::new("Table VII (incorrect answer forms)");
        let m7 = self.table7_measured();
        let p7 = Table7::paper(spec);
        t7.push(Comparison::counts("IP #R2", p7.ip_r2, self.up(m7.ip_r2)));
        // Unique-value counts do not scale linearly (they are capped by
        // the number of draws); reported for information only.
        t7.push(Comparison::counts(
            "IP #unique (sub-linear)",
            p7.ip_unique,
            self.up(m7.ip_unique),
        ));
        t7.push(Comparison::counts("URL #R2", p7.url_r2, self.up(m7.url_r2)));
        t7.push(Comparison::counts(
            "string #R2",
            p7.string_r2,
            self.up(m7.string_r2),
        ));
        t7.push(Comparison::counts("N/A #R2", p7.na_r2, self.up(m7.na_r2)));
        reports.push(t7);

        // Table VIII.
        let mut t8 = TableReport::new("Table VIII (top-10 incorrect IPs)");
        let m8 = self.table8_measured();
        let p8 = Table8::paper(spec);
        // A top-k statistic is scale-sensitive: coarse scales concentrate
        // the long tail onto few addresses that then enter the top-10.
        t8.push(Comparison::counts(
            "top-10 total (scale-sensitive)",
            p8.total(),
            self.up(m8.total()),
        ));
        for (i, prow) in p8.rows.iter().enumerate() {
            let measured = m8
                .rows
                .iter()
                .find(|r| r.ip == prow.ip)
                .map(|r| r.count)
                .unwrap_or(0);
            t8.push(Comparison::counts(
                format!("rank{} {}", i + 1, prow.ip),
                prow.count,
                self.up(measured),
            ));
        }
        reports.push(t8);

        // Table IX.
        let mut t9 = TableReport::new("Table IX (malicious categories)");
        let m9 = self.table9_measured();
        let p9 = Table9::paper(spec);
        for (prow, mrow) in p9.rows.iter().zip(&m9.rows) {
            debug_assert_eq!(prow.category, mrow.category);
            t9.push(Comparison::counts(
                format!("{} #R2", prow.category),
                prow.r2,
                self.up(mrow.r2),
            ));
        }
        t9.push(Comparison::counts(
            "total #R2",
            p9.total_r2(),
            self.up(m9.total_r2()),
        ));
        reports.push(t9);

        // Table X.
        let mut t10 = TableReport::new("Table X (flags on malicious responses)");
        let m10 = self.table10_measured();
        let p10 = Table10::paper(spec);
        for (name, p, m) in [
            ("RA0", p10.ra[0], m10.ra[0]),
            ("RA1", p10.ra[1], m10.ra[1]),
            ("AA0", p10.aa[0], m10.aa[0]),
            ("AA1", p10.aa[1], m10.aa[1]),
        ] {
            t10.push(Comparison::counts(name, p, self.up(m)));
        }
        reports.push(t10);

        // Countries.
        let mut tc = TableReport::new("Section IV-C2 (malicious resolver countries)");
        let mc = self.countries_measured();
        let pc = CountryTable::paper(spec);
        for (code, pcount) in pc.rows.iter().take(6) {
            tc.push(Comparison::counts(
                format!("country {code}"),
                *pcount,
                self.up(mc.get(code)),
            ));
        }
        reports.push(tc);

        // Empty-question.
        let mut te = TableReport::new("Section IV-B4 (empty-question responses)");
        let me = self.empty_question_measured();
        let pe = EmptyQuestionReport::paper(spec);
        te.push(Comparison::counts("total", pe.total, self.up(me.total)));
        te.push(Comparison::counts(
            "with answer",
            pe.with_answer,
            self.up(me.with_answer),
        ));
        te.push(Comparison::counts("RA=1", pe.ra1, self.up(me.ra1)));
        reports.push(te);

        reports
    }

    /// Renders the full report as text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {} campaign @ 1:{} (seed {:#x})",
            self.spec.year, self.config.scale, self.config.seed
        );
        if let Some(degraded) = &self.degraded {
            let _ = writeln!(out, "{degraded}");
        }
        let _ = writeln!(out, "Table II  : {}", self.table2_measured());
        let _ = writeln!(out, "Table III : {}", self.table3_measured());
        let _ = writeln!(out, "Table IV  :\n{}", self.table4_measured());
        let _ = writeln!(out, "Table V   :\n{}", self.table5_measured());
        let _ = writeln!(out, "Table VI  :\n{}", self.table6_measured());
        let _ = writeln!(out, "Table VII :\n{}", self.table7_measured());
        let _ = writeln!(out, "Table VIII:\n{}", self.table8_measured());
        let _ = writeln!(out, "Table IX  :\n{}", self.table9_measured());
        let _ = writeln!(out, "Table X   :\n{}", self.table10_measured());
        let _ = writeln!(out, "Countries :{}", self.countries_measured());
        let _ = writeln!(out, "Top ASes  :\n{}", self.asns_measured());
        let _ = writeln!(out, "Amplific. :\n{}", self.amplification_measured());
        let flows = self.flows();
        let _ = writeln!(
            out,
            "Flows     :  {} recursed, Q2 fan-out {:.2}, median resolution {:?}",
            flows.recursed_count(),
            flows.mean_q2_fanout(),
            flows.latency_quantile(0.5).unwrap_or_default()
        );
        let _ = writeln!(out, "Empty-q   :\n{}", self.empty_question_measured());
        for report in self.table_reports() {
            let _ = writeln!(out, "{report}");
        }
        out
    }

    /// Serializes the comparison report to JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "year": self.spec.year.as_u16(),
            "scale": self.config.scale,
            "seed": self.config.seed,
            "shards": self.config.shards,
            "partial": self.is_partial(),
            "q1": self.dataset.q1,
            "q2": self.dataset.q2,
            "r1": self.dataset.r1,
            "r2": self.dataset.r2(),
            "duration_secs": self.dataset.duration_secs,
            "tables": self.table_reports(),
        })
    }
}
