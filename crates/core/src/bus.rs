//! The record bus: bounded multi-subscriber fan-out of capture events.
//!
//! Historically the capture layer was single-consumer: the prober's
//! `R2Sink` and the authoritative server's `PacketSink` were hard-wired
//! one-to-one to the per-shard [`StreamingAnalyzer`]. The bus turns that
//! into a proper multi-subscriber architecture with two delivery
//! classes:
//!
//! * **Lossless, inline** — the `StreamingAnalyzer` stays a direct sink
//!   called synchronously on the shard's event-loop thread. Its results
//!   feed the paper tables and must see every record, so it is *not*
//!   routed through the bus.
//! * **Lossy, detached** — tap subscribers ([`RecordBus::subscribe`])
//!   each get a bounded queue drained on their own thread. The
//!   publisher only ever `try_send`s: when a consumer stalls and its
//!   queue fills, records are **dropped and counted** rather than
//!   blocking `SimNet`. A slow `orscope tap` client can therefore never
//!   slow a campaign down.
//!
//! The fast path is free when nobody is tapping: publishing checks a
//! relaxed atomic subscriber count and returns before cloning anything.
//!
//! [`StreamingAnalyzer`]: orscope_analysis::StreamingAnalyzer

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

// Re-exported so bus consumers (e.g. the observe surface) can construct
// and match records without a direct dependency on the capture crates.
pub use orscope_authns::capture::{CapturedPacket, Direction};
pub use orscope_prober::R2Capture;
use orscope_resolver::profile::ProfileClass;
use orscope_resolver::Population;
use parking_lot::Mutex;

/// Default bounded-queue capacity for a tap subscriber. Large enough to
/// ride out consumer-side scheduling hiccups, small enough that a
/// stalled consumer caps the bus's memory at a few hundred KiB per
/// lane.
pub const DEFAULT_TAP_CAPACITY: usize = 1024;

/// One record as published on the bus: everything the capture layer
/// sees, before any analysis-side filtering.
// The R2 variant is much larger than the auth one (the capture carries
// its qname inline). Boxing it would trade a move for a heap
// allocation per published record per lane on a lossy side channel —
// the move is the cheaper side of that trade.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Record {
    /// An R2 response captured by the prober (already joined to its
    /// probe by qname).
    R2(R2Capture),
    /// A packet logged at the authoritative server (inbound Q2 or
    /// outbound R1).
    Auth(CapturedPacket),
}

/// A point-in-time view of one subscriber lane, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapLaneStats {
    /// Stable lane id (monotonic per bus).
    pub id: u64,
    /// Records currently queued and not yet drained.
    pub depth: u64,
    /// Records dropped on this lane because its queue was full.
    pub dropped: u64,
}

/// Aggregate bus counters, for `/metrics` and end-of-stream summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusStats {
    /// Currently attached subscribers.
    pub subscribers: u64,
    /// Subscribers ever attached over the bus's lifetime.
    pub attached_total: u64,
    /// Records offered to the fan-out (with at least one subscriber).
    pub published: u64,
    /// Records dropped across all lanes because a queue was full.
    pub dropped: u64,
}

struct TapLane {
    id: u64,
    sender: SyncSender<Record>,
    depth: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

/// Maps probed addresses to their generated [`ProfileClass`], so tap
/// consumers can evaluate `class=` predicates without holding the whole
/// population. Built once per campaign round, only when a bus is
/// attached.
#[derive(Debug, Default)]
pub struct ClassIndex {
    /// Sorted by packed address for binary search.
    entries: Vec<(u32, ProfileClass)>,
}

impl ClassIndex {
    /// Builds the index over every probed host (resolvers and off-port
    /// responders) of `population`.
    pub fn from_population(population: &Population) -> Self {
        let mut entries =
            Vec::with_capacity(population.resolvers.len() + population.off_port.len());
        for list in [&population.resolvers, &population.off_port] {
            for i in 0..list.len() {
                let class = population.table.get(list.profile_id(i)).class();
                entries.push((u32::from(list.addr(i)), class));
            }
        }
        entries.sort_unstable_by_key(|&(addr, _)| addr);
        Self { entries }
    }

    /// The class of `addr`, if it is a known probed host.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<ProfileClass> {
        let packed = u32::from(addr);
        self.entries
            .binary_search_by_key(&packed, |&(a, _)| a)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of indexed hosts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty (no campaign has installed one yet).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The multi-subscriber fan-out bus. Cheap to share (`Arc`), safe to
/// publish to from any number of shard threads concurrently.
pub struct RecordBus {
    lanes: Mutex<Vec<TapLane>>,
    /// Lock-free subscriber count so the no-tap publish path is a
    /// single relaxed load.
    tap_count: AtomicUsize,
    next_id: AtomicU64,
    attached_total: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
    /// Address → class map for `class=` predicates; swapped in at the
    /// start of each campaign round that carries this bus.
    classes: Mutex<Arc<ClassIndex>>,
}

impl std::fmt::Debug for RecordBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("RecordBus")
            .field("subscribers", &stats.subscribers)
            .field("published", &stats.published)
            .field("dropped", &stats.dropped)
            .finish()
    }
}

impl Default for RecordBus {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordBus {
    /// Creates a bus with no subscribers.
    pub fn new() -> Self {
        Self {
            lanes: Mutex::new(Vec::new()),
            tap_count: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            attached_total: AtomicU64::new(0),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            classes: Mutex::new(Arc::new(ClassIndex::default())),
        }
    }

    /// Attaches a new subscriber with a bounded queue of `capacity`
    /// records. The subscriber detaches by dropping the returned
    /// receiver; the publisher notices lazily on its next publish.
    pub fn subscribe(&self, capacity: usize) -> TapReceiver {
        let capacity = capacity.max(1);
        let (sender, receiver) = sync_channel(capacity);
        let depth = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.attached_total.fetch_add(1, Ordering::Relaxed);
        let mut lanes = self.lanes.lock();
        lanes.push(TapLane {
            id,
            sender,
            depth: depth.clone(),
            dropped: dropped.clone(),
        });
        self.tap_count.store(lanes.len(), Ordering::Relaxed);
        drop(lanes);
        TapReceiver {
            id,
            receiver,
            depth,
            dropped,
        }
    }

    /// Publishes one captured R2. Free when nobody is subscribed.
    pub fn publish_r2(&self, capture: &R2Capture) {
        if self.tap_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.publish(Record::R2(capture.clone()));
    }

    /// Publishes one authoritative-server packet. Free when nobody is
    /// subscribed.
    pub fn publish_auth(&self, packet: &CapturedPacket) {
        if self.tap_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.publish(Record::Auth(packet.clone()));
    }

    /// Fans `record` out to every lane. Never blocks: a full lane
    /// counts a drop, a disconnected lane is removed.
    fn publish(&self, record: Record) {
        let mut lanes = self.lanes.lock();
        if lanes.is_empty() {
            // Raced with the last unsubscribe; nothing to do.
            self.tap_count.store(0, Ordering::Relaxed);
            return;
        }
        self.published.fetch_add(1, Ordering::Relaxed);
        lanes.retain(|lane| match lane.sender.try_send(record.clone()) {
            Ok(()) => {
                lane.depth.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) => {
                lane.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
        self.tap_count.store(lanes.len(), Ordering::Relaxed);
    }

    /// Installs the address → class index for the current round.
    pub fn install_class_index(&self, index: ClassIndex) {
        *self.classes.lock() = Arc::new(index);
    }

    /// The profile class of `addr` per the currently installed index.
    pub fn class_of(&self, addr: Ipv4Addr) -> Option<ProfileClass> {
        self.classes.lock().lookup(addr)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> BusStats {
        BusStats {
            subscribers: self.tap_count.load(Ordering::Relaxed) as u64,
            attached_total: self.attached_total.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Per-lane stats for currently attached subscribers.
    pub fn lane_stats(&self) -> Vec<TapLaneStats> {
        self.lanes
            .lock()
            .iter()
            .map(|lane| TapLaneStats {
                id: lane.id,
                depth: lane.depth.load(Ordering::Relaxed),
                dropped: lane.dropped.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// The consumer end of one subscriber lane.
///
/// Dropping it detaches the subscriber; the publisher removes the lane
/// on its next publish.
pub struct TapReceiver {
    id: u64,
    receiver: Receiver<Record>,
    depth: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl std::fmt::Debug for TapReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapReceiver")
            .field("id", &self.id)
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TapReceiver {
    /// Stable lane id (matches [`TapLaneStats::id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Waits up to `timeout` for the next record. `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Record> {
        match self.receiver.recv_timeout(timeout) {
            Ok(record) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Some(record)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Pops the next record without waiting.
    pub fn try_recv(&self) -> Option<Record> {
        self.receiver.try_recv().ok().inspect(|_| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        })
    }

    /// Records the publisher dropped on this lane because the queue was
    /// full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orscope_netsim::SimTime;

    fn r2(target: Ipv4Addr) -> R2Capture {
        R2Capture {
            target,
            label: None,
            qname: "x.example".parse().unwrap(),
            at: SimTime::ZERO,
            sent_at: SimTime::ZERO,
            // `bytes::Bytes` via its `From<Vec<u8>>` impl: core does not
            // depend on the bytes crate directly.
            payload: b"x".to_vec().into(),
        }
    }

    #[test]
    fn publish_without_subscribers_is_a_noop() {
        let bus = RecordBus::new();
        bus.publish_r2(&r2(Ipv4Addr::new(1, 1, 1, 1)));
        let stats = bus.stats();
        assert_eq!(stats.published, 0);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn all_subscribers_see_every_record() {
        let bus = RecordBus::new();
        let a = bus.subscribe(8);
        let b = bus.subscribe(8);
        for i in 0..3 {
            bus.publish_r2(&r2(Ipv4Addr::new(1, 1, 1, i)));
        }
        for receiver in [&a, &b] {
            for _ in 0..3 {
                assert!(receiver.try_recv().is_some());
            }
            assert!(receiver.try_recv().is_none());
        }
        assert_eq!(bus.stats().published, 3);
    }

    #[test]
    fn full_lane_drops_and_counts_without_blocking() {
        let bus = RecordBus::new();
        let stalled = bus.subscribe(2);
        for i in 0..10 {
            bus.publish_r2(&r2(Ipv4Addr::new(1, 1, 1, i)));
        }
        assert_eq!(stalled.dropped(), 8, "capacity 2 of 10 published");
        assert_eq!(bus.stats().dropped, 8);
        assert_eq!(bus.lane_stats()[0].depth, 2);
        // The stalled lane still holds the two oldest records.
        assert!(stalled.try_recv().is_some());
        assert!(stalled.try_recv().is_some());
        assert!(stalled.try_recv().is_none());
    }

    #[test]
    fn dropped_receiver_detaches_lane_on_next_publish() {
        let bus = RecordBus::new();
        let keep = bus.subscribe(8);
        let gone = bus.subscribe(8);
        drop(gone);
        bus.publish_r2(&r2(Ipv4Addr::new(9, 9, 9, 9)));
        assert_eq!(bus.stats().subscribers, 1);
        assert_eq!(bus.lane_stats().len(), 1);
        assert_eq!(bus.lane_stats()[0].id, keep.id());
    }
}
