//! Property-based tests: arbitrary messages survive encode/decode, and the
//! decoder never panics on arbitrary bytes.

use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

use orscope_dns_wire::rdata::Soa;
use orscope_dns_wire::{
    Header, Message, Name, Question, RData, Rcode, Record, RecordClass, RecordType,
};

/// A strategy producing valid DNS labels (1..=20 alnum/hyphen bytes).
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9]([a-zA-Z0-9-]{0,18}[a-zA-Z0-9])?").unwrap()
}

/// A strategy producing valid names of 0..=5 labels.
fn name() -> impl Strategy<Value = Name> {
    prop::collection::vec(label(), 0..=5)
        .prop_map(|labels| Name::from_labels(labels.iter().map(String::as_bytes)).unwrap())
}

/// A strategy producing labels at the RFC 1035 maximum of 63 octets.
fn max_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9][a-zA-Z0-9-]{61}[a-zA-Z0-9]").unwrap()
}

/// A strategy producing names built from maximum-length labels (1..=3 of
/// them stays under the 255-octet name limit: 3 * 64 + 1 = 193).
fn long_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(max_label(), 1..=3)
        .prop_map(|labels| Name::from_labels(labels.iter().map(String::as_bytes)).unwrap())
}

/// A strategy over the typed rdata variants.
fn rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<u32>().prop_map(|v| RData::A(Ipv4Addr::from(v))),
        name().prop_map(RData::Ns),
        name().prop_map(RData::Cname),
        name().prop_map(RData::Ptr),
        (
            name(),
            name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..100), 0..4)
            .prop_map(RData::Txt),
        any::<u128>().prop_map(|v| RData::Aaaa(Ipv6Addr::from(v))),
        (0u16..=65535, prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(rtype, data)| {
            // Avoid colliding with the typed codes, which would decode as
            // typed rdata rather than Unknown.
            let rtype = match rtype {
                1 | 2 | 5 | 6 | 12 | 15 | 16 | 28 | 41 | 255 => 77,
                t => t,
            };
            RData::Unknown { rtype, data }
        }),
    ]
}

fn record() -> impl Strategy<Value = Record> {
    (name(), any::<u32>(), rdata())
        .prop_map(|(owner, ttl, rdata)| Record::in_class(owner, ttl, rdata))
}

fn question() -> impl Strategy<Value = Question> {
    (name(), any::<u16>(), prop_oneof![Just(1u16), Just(255u16)])
        .prop_map(|(n, t, c)| Question::new(n, RecordType::from_u16(t), RecordClass::from_u16(c)))
}

fn message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        prop::collection::vec(question(), 0..2),
        prop::collection::vec(record(), 0..4),
        prop::collection::vec(record(), 0..2),
        prop::collection::vec(record(), 0..2),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
    )
        .prop_map(|(id, qs, ans, auth, add, ra, aa, tc, rcode)| {
            let mut b = Message::builder()
                .id(id)
                .recursion_available(ra)
                .authoritative(aa)
                .rcode(Rcode::from_u8(rcode));
            for q in qs {
                b = b.question(q);
            }
            for r in ans {
                b = b.answer(r);
            }
            for r in auth {
                b = b.authority(r);
            }
            for r in add {
                b = b.additional(r);
            }
            let mut m = b.build();
            m.header_mut().set_truncated(tc).set_response(true);
            m
        })
}

proptest! {
    /// Any structurally valid message survives an encode/decode roundtrip.
    #[test]
    fn message_roundtrip(msg in message()) {
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// Decoding a *valid* prefix with appended garbage is rejected, not
    /// silently accepted.
    #[test]
    fn trailing_garbage_rejected(msg in message(), garbage in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut wire = msg.encode().unwrap();
        wire.extend(&garbage);
        prop_assert!(Message::decode(&wire).is_err());
    }

    /// Re-encoding a decoded message is stable (canonical after one trip).
    #[test]
    fn reencode_is_stable(msg in message()) {
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        let wire2 = back.encode().unwrap();
        prop_assert_eq!(wire, wire2);
    }

    /// Names roundtrip through display+parse when labels are plain ASCII.
    #[test]
    fn name_display_parse_roundtrip(n in name()) {
        let parsed: Name = n.to_string().parse().unwrap();
        prop_assert_eq!(parsed, n);
    }

    /// Qnames built from maximum-length (63-octet) labels roundtrip
    /// through a full message encode/decode.
    #[test]
    fn max_length_label_qname_roundtrip(n in long_name(), id in any::<u16>()) {
        let msg = Message::query(id, Question::a(n));
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Max-length labels survive display+parse as well as the wire.
    #[test]
    fn max_length_label_display_parse_roundtrip(n in long_name()) {
        let parsed: Name = n.to_string().parse().unwrap();
        prop_assert_eq!(parsed, n);
    }

    /// Every rcode value roundtrips through its wire nibble, and through
    /// a full message header.
    #[test]
    fn rcode_roundtrip(raw in 0u8..16) {
        let rcode = Rcode::from_u8(raw);
        prop_assert_eq!(rcode.to_u8(), raw);
        let msg = {
            let mut m = Message::builder().id(1).rcode(rcode).build();
            m.header_mut().set_response(true);
            m
        };
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back.header().rcode(), rcode);
    }

    /// Header bytes roundtrip for every flag/rcode combination.
    #[test]
    fn header_roundtrip(id in any::<u16>(), flags in any::<u16>(), counts in any::<[u16; 4]>()) {
        let mut raw = Vec::new();
        raw.extend(id.to_be_bytes());
        raw.extend(flags.to_be_bytes());
        for c in counts {
            raw.extend(c.to_be_bytes());
        }
        let mut r = orscope_dns_wire::wire::Reader::new(&raw);
        let h = Header::decode(&mut r).unwrap();
        let mut w = orscope_dns_wire::wire::Writer::new();
        h.encode(&mut w);
        prop_assert_eq!(w.finish().unwrap(), raw);
    }
}

/// A name at exactly the 255-octet wire maximum (63+63+63+61 labels:
/// 64 + 64 + 64 + 62 + 1 root = 255) roundtrips; one octet more is
/// rejected at construction.
#[test]
fn name_at_the_255_octet_limit_roundtrips() {
    let labels = [
        "a".repeat(63),
        "b".repeat(63),
        "c".repeat(63),
        "d".repeat(61),
    ];
    let name = Name::from_labels(labels.iter().map(String::as_bytes)).expect("255 octets is legal");
    let msg = Message::query(9, Question::a(name.clone()));
    let wire = msg.encode().unwrap();
    let back = Message::decode(&wire).unwrap();
    assert_eq!(back.first_question().unwrap().qname(), &name);

    let too_long = [
        "a".repeat(63),
        "b".repeat(63),
        "c".repeat(63),
        "d".repeat(62),
    ];
    assert!(
        Name::from_labels(too_long.iter().map(String::as_bytes)).is_err(),
        "256 octets must be rejected"
    );
}
