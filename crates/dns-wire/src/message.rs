//! Full DNS messages and the builder API.

use std::fmt;

use crate::error::WireError;
use crate::header::{Header, Rcode};
use crate::question::Question;
use crate::record::Record;
use crate::wire::{Reader, Writer};

/// A complete DNS message: header plus question/answer/authority/
/// additional sections.
///
/// # Example
///
/// ```
/// use orscope_dns_wire::{Message, Name, Question, RData, Record, Rcode};
/// use std::net::Ipv4Addr;
///
/// let qname: Name = "host.example.net".parse()?;
/// let query = Message::query(7, Question::a(qname.clone()));
/// let response = Message::builder()
///     .response_to(&query)
///     .recursion_available(true)
///     .answer(Record::in_class(qname, 60, RData::A(Ipv4Addr::new(1, 2, 3, 4))))
///     .build();
/// assert_eq!(response.header().rcode(), Rcode::NoError);
/// assert_eq!(response.answers().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    header: Header,
    questions: Vec<Question>,
    answers: Vec<Record>,
    authorities: Vec<Record>,
    additionals: Vec<Record>,
}

impl Message {
    /// A recursive query (RD=1) with a single question.
    pub fn query(id: u16, question: Question) -> Self {
        let mut header = Header::query(id);
        header.set_counts(1, 0, 0, 0);
        Self {
            header,
            questions: vec![question],
            ..Self::default()
        }
    }

    /// Starts building a message.
    pub fn builder() -> MessageBuilder {
        MessageBuilder::default()
    }

    /// The message header. Section counts are kept consistent with the
    /// section vectors by construction.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Mutable access to the header (used by misbehaving-resolver
    /// profiles to set nonstandard flag combinations).
    pub fn header_mut(&mut self) -> &mut Header {
        &mut self.header
    }

    /// The question section.
    pub fn questions(&self) -> &[Question] {
        &self.questions
    }

    /// The answer section.
    pub fn answers(&self) -> &[Record] {
        &self.answers
    }

    /// The authority section.
    pub fn authorities(&self) -> &[Record] {
        &self.authorities
    }

    /// The additional section.
    pub fn additionals(&self) -> &[Record] {
        &self.additionals
    }

    /// The first question, if any. R2 packets with an *empty* question
    /// section (494 of them in the 2018 capture) return `None` and are
    /// excluded from qname-keyed flow matching.
    pub fn first_question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Removes all questions (models the broken responders of §IV-B4).
    pub fn clear_questions(&mut self) {
        self.questions.clear();
        let h = self.header;
        self.header.set_counts(
            0,
            h.answer_count(),
            h.authority_count(),
            h.additional_count(),
        );
    }

    /// Encodes the message to wire format with name compression.
    ///
    /// # Errors
    ///
    /// Fails if the message exceeds 65,535 bytes or contains invalid
    /// names/rdata.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(512);
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Encodes the message into `out`, reusing its allocation. `out` is
    /// cleared first; on success it holds exactly the wire encoding.
    /// Steady-state callers that keep a scratch buffer around encode
    /// without allocating at all.
    ///
    /// # Errors
    ///
    /// Same as [`Message::encode`]. The buffer's allocation survives the
    /// error path (its contents are unspecified).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let mut w = Writer::with_buf(std::mem::take(out));
        let result = self.encode_body(&mut w);
        let size = w.len();
        *out = w.into_buf();
        result?;
        if size > u16::MAX as usize {
            return Err(WireError::MessageTooLong { size });
        }
        Ok(())
    }

    /// Writes header and all sections through `w`.
    fn encode_body(&self, w: &mut Writer) -> Result<(), WireError> {
        let mut header = self.header;
        header.set_counts(
            self.questions.len() as u16,
            self.answers.len() as u16,
            self.authorities.len() as u16,
            self.additionals.len() as u16,
        );
        header.encode(w);
        for q in &self.questions {
            q.encode(w)?;
        }
        for rec in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rec.encode(w)?;
        }
        Ok(())
    }

    /// Decodes a wire-format message.
    ///
    /// # Errors
    ///
    /// Reports the specific structural violation; trailing bytes after
    /// the final announced record are rejected ([`WireError::TrailingBytes`]),
    /// which is how malformed-capture counting works.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let header = Header::decode(&mut r)?;
        let mut questions = Vec::with_capacity(header.question_count() as usize);
        for _ in 0..header.question_count() {
            questions.push(Question::decode(&mut r)?);
        }
        let mut read_section = |count: u16| -> Result<Vec<Record>, WireError> {
            let mut out = Vec::with_capacity(count as usize);
            for _ in 0..count {
                out.push(Record::decode(&mut r)?);
            }
            Ok(out)
        };
        let answers = read_section(header.answer_count())?;
        let authorities = read_section(header.authority_count())?;
        let additionals = read_section(header.additional_count())?;
        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                count: r.remaining(),
            });
        }
        Ok(Self {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

impl fmt::Display for Message {
    /// dig-style presentation for traces and examples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = &self.header;
        writeln!(
            f,
            ";; id {} {} opcode={:?} rcode={} aa={} tc={} rd={} ra={}",
            h.id(),
            if h.is_response() { "response" } else { "query" },
            h.opcode(),
            h.rcode(),
            h.authoritative() as u8,
            h.truncated() as u8,
            h.recursion_desired() as u8,
            h.recursion_available() as u8,
        )?;
        writeln!(f, ";; QUESTION ({})", self.questions.len())?;
        for q in &self.questions {
            writeln!(f, ";{q}")?;
        }
        for (label, section) in [
            ("ANSWER", &self.answers),
            ("AUTHORITY", &self.authorities),
            ("ADDITIONAL", &self.additionals),
        ] {
            writeln!(f, ";; {label} ({})", section.len())?;
            for rec in section.iter() {
                writeln!(f, "{rec}")?;
            }
        }
        Ok(())
    }
}

/// Builder for [`Message`]; see [`Message::builder`].
#[derive(Debug, Default)]
pub struct MessageBuilder {
    message: Message,
}

impl MessageBuilder {
    /// Sets the message ID.
    pub fn id(mut self, id: u16) -> Self {
        self.message.header.set_id(id);
        self
    }

    /// Makes this message a response to `query`: copies the ID, opcode
    /// and RD flag, sets QR, and echoes the question section.
    pub fn response_to(mut self, query: &Message) -> Self {
        self.message.header = Header::response_to(query.header());
        self.message.questions = query.questions.clone();
        self
    }

    /// Adds a question.
    pub fn question(mut self, q: Question) -> Self {
        self.message.questions.push(q);
        self
    }

    /// Sets the RA flag.
    pub fn recursion_available(mut self, ra: bool) -> Self {
        self.message.header.set_recursion_available(ra);
        self
    }

    /// Sets the RD flag.
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.message.header.set_recursion_desired(rd);
        self
    }

    /// Sets the AA flag.
    pub fn authoritative(mut self, aa: bool) -> Self {
        self.message.header.set_authoritative(aa);
        self
    }

    /// Sets the response code.
    pub fn rcode(mut self, rcode: Rcode) -> Self {
        self.message.header.set_rcode(rcode);
        self
    }

    /// Adds an answer record.
    pub fn answer(mut self, rec: Record) -> Self {
        self.message.answers.push(rec);
        self
    }

    /// Adds an authority record.
    pub fn authority(mut self, rec: Record) -> Self {
        self.message.authorities.push(rec);
        self
    }

    /// Adds an additional record.
    pub fn additional(mut self, rec: Record) -> Self {
        self.message.additionals.push(rec);
        self
    }

    /// Finishes the message, fixing up section counts.
    pub fn build(mut self) -> Message {
        let (qd, an, ns, ar) = (
            self.message.questions.len() as u16,
            self.message.answers.len() as u16,
            self.message.authorities.len() as u16,
            self.message.additionals.len() as u16,
        );
        self.message.header.set_counts(qd, an, ns, ar);
        self.message
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::rdata::RData;
    use crate::record::{RecordClass, RecordType};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_response() -> Message {
        let query = Message::query(
            0xCAFE,
            Question::a(name("or000.0000042.ucfsealresearch.net")),
        );
        Message::builder()
            .response_to(&query)
            .recursion_available(true)
            .answer(Record::in_class(
                name("or000.0000042.ucfsealresearch.net"),
                60,
                RData::A(Ipv4Addr::new(10, 42, 0, 1)),
            ))
            .authority(Record::in_class(
                name("ucfsealresearch.net"),
                3600,
                RData::Ns(name("ns1.ucfsealresearch.net")),
            ))
            .additional(Record::in_class(
                name("ns1.ucfsealresearch.net"),
                3600,
                RData::A(Ipv4Addr::new(45, 77, 1, 1)),
            ))
            .build()
    }

    #[test]
    fn query_constructor() {
        let q = Message::query(1, Question::a(name("x.example")));
        assert_eq!(q.header().question_count(), 1);
        assert!(q.header().recursion_desired());
        assert!(!q.header().is_response());
    }

    #[test]
    fn full_message_roundtrip() {
        let msg = sample_response();
        let wire = msg.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn counts_are_fixed_up() {
        let msg = sample_response();
        assert_eq!(msg.header().question_count(), 1);
        assert_eq!(msg.header().answer_count(), 1);
        assert_eq!(msg.header().authority_count(), 1);
        assert_eq!(msg.header().additional_count(), 1);
    }

    #[test]
    fn compression_shrinks_message() {
        let msg = sample_response();
        let wire = msg.encode().unwrap();
        // Uncompressed total of all names would be far larger; sanity
        // check against a generous bound to prove pointers are in use.
        let uncompressed: usize = 12
            + msg.questions()[0].qname().wire_len() + 4
            + msg.answers()[0].name().wire_len() + 10 + 4
            + msg.authorities()[0].name().wire_len() + 10
            + msg.authorities()[0].name().wire_len() + 4 // ns rdata approx
            + msg.additionals()[0].name().wire_len() + 10 + 4;
        assert!(
            wire.len() < uncompressed,
            "{} >= {}",
            wire.len(),
            uncompressed
        );
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let msg = Message::query(9, Question::a(name("x.example")));
        let mut wire = msg.encode().unwrap();
        wire.push(0xFF);
        assert_eq!(
            Message::decode(&wire).unwrap_err(),
            WireError::TrailingBytes { count: 1 }
        );
    }

    #[test]
    fn decode_rejects_count_overstatement() {
        let msg = Message::query(9, Question::a(name("x.example")));
        let mut wire = msg.encode().unwrap();
        wire[5] = 2; // QDCOUNT=2 but only one question present
        assert!(matches!(
            Message::decode(&wire).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn empty_question_response_is_representable() {
        let query = Message::query(3, Question::a(name("q.example")));
        let mut resp = Message::builder()
            .response_to(&query)
            .rcode(Rcode::ServFail)
            .build();
        resp.clear_questions();
        let wire = resp.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert!(back.first_question().is_none());
        assert_eq!(back.header().rcode(), Rcode::ServFail);
    }

    #[test]
    fn response_echoes_question_and_id() {
        let query = Message::query(
            0x5555,
            Question::new(name("any.example"), RecordType::Any, RecordClass::In),
        );
        let resp = Message::builder().response_to(&query).build();
        assert_eq!(resp.header().id(), 0x5555);
        assert!(resp.header().is_response());
        assert_eq!(resp.questions(), query.questions());
    }

    #[test]
    fn display_contains_sections() {
        let text = sample_response().to_string();
        assert!(text.contains("ANSWER (1)"));
        assert!(text.contains("ucfsealresearch.net"));
        assert!(text.contains("ra=1"));
    }
}

/// EDNS(0) support (RFC 6891): the OPT pseudo-record advertising a
/// larger-than-512-byte UDP payload size, and response truncation for
/// clients without it.
impl Message {
    /// The classic UDP payload limit for non-EDNS clients (RFC 1035).
    pub const CLASSIC_UDP_LIMIT: usize = 512;

    /// Adds an OPT record advertising `udp_size` (client side of EDNS).
    pub fn set_edns_udp_size(&mut self, udp_size: u16) {
        // Remove any previous OPT first.
        self.additionals
            .retain(|r| r.rtype() != crate::record::RecordType::Opt);
        self.additionals.push(Record::new(
            crate::name::Name::root(),
            crate::record::RecordClass::Other(udp_size),
            0,
            crate::rdata::RData::Unknown {
                rtype: crate::record::RecordType::Opt.to_u16(),
                data: Vec::new(),
            },
        ));
        let h = self.header;
        self.header.set_counts(
            h.question_count(),
            h.answer_count(),
            h.authority_count(),
            self.additionals.len() as u16,
        );
    }

    /// The UDP payload size advertised via EDNS, if an OPT is present.
    pub fn edns_udp_size(&self) -> Option<u16> {
        self.additionals
            .iter()
            .find(|r| r.rtype() == crate::record::RecordType::Opt)
            .map(|r| r.class().to_u16())
    }

    /// The response-size budget a server may use for this query:
    /// the advertised EDNS size (at least 512) or the classic 512.
    pub fn response_size_limit(&self) -> usize {
        self.edns_udp_size()
            .map(|s| (s as usize).max(Self::CLASSIC_UDP_LIMIT))
            .unwrap_or(Self::CLASSIC_UDP_LIMIT)
    }

    /// Truncates the message to fit `limit` encoded bytes by dropping
    /// additional, authority, then answer records (in that order) and
    /// setting the TC bit if anything was dropped (RFC 2181 §9 behaviour).
    ///
    /// Returns the final encoding.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (malformed names/rdata).
    pub fn encode_truncated(&self, limit: usize) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(512);
        self.encode_truncated_into(limit, &mut out)?;
        Ok(out)
    }

    /// [`Message::encode_truncated`] into a reusable buffer, mirroring
    /// [`Message::encode_into`].
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (malformed names/rdata).
    pub fn encode_truncated_into(&self, limit: usize, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.encode_into(out)?;
        if out.len() <= limit {
            return Ok(());
        }
        let mut clipped = self.clone();
        clipped.header_mut().set_truncated(true);
        loop {
            if clipped.additionals.pop().is_none()
                && clipped.authorities.pop().is_none()
                && clipped.answers.pop().is_none()
            {
                break;
            }
            clipped.encode_into(out)?;
            if out.len() <= limit {
                return Ok(());
            }
        }
        clipped.encode_into(out)
    }
}

#[cfg(test)]
mod edns_tests {
    use super::*;
    use crate::name::Name;
    use crate::question::Question;
    use crate::rdata::RData;
    use crate::record::Record;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn opt_roundtrip() {
        let mut q = Message::query(1, Question::a(name("example.net")));
        assert_eq!(q.edns_udp_size(), None);
        assert_eq!(q.response_size_limit(), 512);
        q.set_edns_udp_size(4096);
        assert_eq!(q.edns_udp_size(), Some(4096));
        assert_eq!(q.response_size_limit(), 4096);
        let wire = q.encode().unwrap();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back.edns_udp_size(), Some(4096));
        // Setting again replaces rather than duplicates.
        q.set_edns_udp_size(1232);
        assert_eq!(q.additionals().len(), 1);
        assert_eq!(q.edns_udp_size(), Some(1232));
    }

    #[test]
    fn tiny_edns_size_clamps_to_classic() {
        let mut q = Message::query(1, Question::a(name("example.net")));
        q.set_edns_udp_size(100);
        assert_eq!(q.response_size_limit(), 512);
    }

    #[test]
    fn truncation_drops_records_and_sets_tc() {
        let query = Message::query(5, Question::any(name("big.example")));
        let mut builder = Message::builder().response_to(&query);
        for i in 0..40 {
            builder = builder.answer(Record::in_class(
                name("big.example"),
                60,
                RData::Txt(vec![
                    format!("payload-{i:02}-{}", "x".repeat(40)).into_bytes()
                ]),
            ));
        }
        let full = builder.build();
        let full_wire = full.encode().unwrap();
        assert!(full_wire.len() > 1500);
        let clipped_wire = full.encode_truncated(512).unwrap();
        assert!(clipped_wire.len() <= 512);
        let clipped = Message::decode(&clipped_wire).unwrap();
        assert!(clipped.header().truncated(), "TC set");
        assert!(clipped.header().answer_count() < 40);
        // A generous limit passes through untouched.
        let untouched = full.encode_truncated(65_000).unwrap();
        assert_eq!(untouched, full_wire);
        assert!(!Message::decode(&untouched).unwrap().header().truncated());
    }

    #[test]
    fn truncation_can_drop_everything_but_question() {
        let query = Message::query(5, Question::a(name("x.example")));
        let mut resp = Message::builder().response_to(&query).build();
        resp.header_mut().set_response(true);
        for _ in 0..3 {
            resp = {
                let mut b = Message::builder().response_to(&query);
                for i in 0..3 {
                    b = b.answer(Record::in_class(
                        name("x.example"),
                        60,
                        RData::Txt(vec![vec![b'a'; 200 + i]]),
                    ));
                }
                b.build()
            };
        }
        let wire = resp.encode_truncated(60).unwrap();
        let back = Message::decode(&wire).unwrap();
        assert!(back.header().truncated());
        assert_eq!(back.answers().len(), 0);
    }
}
