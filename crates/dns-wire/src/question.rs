//! The question section entry (RFC 1035 §4.1.2).

use std::fmt;

use crate::error::WireError;
use crate::name::Name;
use crate::record::{RecordClass, RecordType};
use crate::wire::{Reader, Writer};

/// A question: qname, qtype, qclass.
///
/// The probing methodology keys the Q1/Q2/R1/R2 flow matching on the
/// qname (a unique per-target subdomain), so `Question` is the join key
/// of the entire analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    qname: Name,
    qtype: RecordType,
    qclass: RecordClass,
}

impl Question {
    /// Creates a question.
    pub fn new(qname: Name, qtype: RecordType, qclass: RecordClass) -> Self {
        Self {
            qname,
            qtype,
            qclass,
        }
    }

    /// Convenience: an `IN A` question for `qname`.
    pub fn a(qname: Name) -> Self {
        Self::new(qname, RecordType::A, RecordClass::In)
    }

    /// Convenience: an `IN ANY` question (the amplification vector).
    pub fn any(qname: Name) -> Self {
        Self::new(qname, RecordType::Any, RecordClass::In)
    }

    /// The queried name.
    pub fn qname(&self) -> &Name {
        &self.qname
    }

    /// The queried type.
    pub fn qtype(&self) -> RecordType {
        self.qtype
    }

    /// The queried class.
    pub fn qclass(&self) -> RecordClass {
        self.qclass
    }

    /// Encodes the question.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        self.qname.encode(w)?;
        w.write_u16(self.qtype.to_u16());
        w.write_u16(self.qclass.to_u16());
        Ok(())
    }

    /// Decodes one question.
    ///
    /// # Errors
    ///
    /// Fails on truncation or malformed qname encoding.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            qname: Name::decode(r)?,
            qtype: RecordType::from_u16(r.read_u16("question type")?),
            qclass: RecordClass::from_u16(r.read_u16("question class")?),
        })
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let q = Question::a("or003.1234567.ucfsealresearch.net".parse().unwrap());
        let mut w = Writer::new();
        q.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        let back = Question::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn any_qtype() {
        let q = Question::any("example.net".parse().unwrap());
        assert_eq!(q.qtype(), RecordType::Any);
        assert_eq!(q.qclass(), RecordClass::In);
    }

    #[test]
    fn display() {
        let q = Question::a("example.com".parse().unwrap());
        assert_eq!(q.to_string(), "example.com IN A");
    }

    #[test]
    fn truncated_question_fails() {
        let q = Question::a("example.com".parse().unwrap());
        let mut w = Writer::new();
        q.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        for cut in [1, buf.len() - 1] {
            assert!(Question::decode(&mut Reader::new(&buf[..cut])).is_err());
        }
    }
}
