#![warn(missing_docs)]
//! A DNS wire-format implementation built from scratch.
//!
//! This crate implements the subset of RFC 1035 (plus EDNS(0), RFC 6891,
//! and the extended rcodes of RFC 6895) needed to build and analyze the
//! open-resolver measurement pipeline:
//!
//! - [`Name`]: domain names with label validation and case-insensitive
//!   comparison,
//! - [`Header`]: the 12-byte message header with all flag bits (QR, AA,
//!   TC, RD, RA) and the response code,
//! - [`Question`], [`Record`], [`RData`]: the question and resource-record
//!   sections with typed rdata for A, NS, CNAME, SOA, PTR, MX, TXT, AAAA
//!   and OPT records,
//! - [`Message`]: full messages with a builder-style API,
//! - wire encoding with RFC 1035 §4.1.4 name compression, and tolerant
//!   decoding that surfaces *why* a packet failed to parse (the paper's
//!   2013 dataset contains 8,764 undecodable responses; the capture layer
//!   needs those failures to be observable, not fatal).
//!
//! # Example
//!
//! ```
//! use orscope_dns_wire::{Message, Name, Question, RecordType, RecordClass};
//!
//! let qname: Name = "or000.0000001.ucfsealresearch.net".parse()?;
//! let query = Message::query(0x1234, Question::new(qname, RecordType::A, RecordClass::In));
//! let wire = query.encode()?;
//! let back = Message::decode(&wire)?;
//! assert_eq!(back.header().id(), 0x1234);
//! assert_eq!(back.questions()[0].qtype(), RecordType::A);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod header;
pub mod message;
pub mod name;
pub mod question;
pub mod rdata;
pub mod record;
pub mod wire;

pub use error::WireError;
pub use header::{Header, Opcode, Rcode};
pub use message::{Message, MessageBuilder};
pub use name::{Name, ParseNameError};
pub use question::Question;
pub use rdata::RData;
pub use record::{Record, RecordClass, RecordType};
