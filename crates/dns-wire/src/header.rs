//! The 12-byte DNS message header (RFC 1035 §4.1.1).

use std::fmt;

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// DNS operation codes (header `OPCODE` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// Standard query (0).
    #[default]
    Query,
    /// Inverse query (1, obsolete).
    IQuery,
    /// Server status request (2).
    Status,
    /// Zone change notification (4).
    Notify,
    /// Dynamic update (5).
    Update,
    /// Any value not otherwise listed.
    Other(u8),
}

impl Opcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// Decodes a 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// DNS response codes (RFC 1035 §4.1.1 + RFC 6895), the `rcode` the paper
/// analyzes in Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Rcode {
    /// 0: no error.
    #[default]
    NoError,
    /// 1: the server could not interpret the query.
    FormErr,
    /// 2: internal server failure.
    ServFail,
    /// 3: the queried name does not exist.
    NXDomain,
    /// 4: query kind not implemented.
    NotImp,
    /// 5: the server refuses to answer for policy reasons.
    Refused,
    /// 6: a name exists when it should not (RFC 2136).
    YXDomain,
    /// 7: an RR set exists when it should not (RFC 2136).
    YXRRSet,
    /// 8: an RR set that should exist does not (RFC 2136).
    NXRRSet,
    /// 9: the server is not authoritative / not authorized (RFC 2136/2845).
    NotAuth,
    /// 10: a name is not contained in the zone (RFC 2136).
    NotZone,
    /// Any other 4-bit value (11-15 are unassigned).
    Other(u8),
}

impl Rcode {
    /// All rcodes the paper's Table VI tabulates, in column order.
    pub const TABLE_VI_ORDER: [Rcode; 9] = [
        Rcode::NoError,
        Rcode::FormErr,
        Rcode::ServFail,
        Rcode::NXDomain,
        Rcode::NotImp,
        Rcode::Refused,
        Rcode::YXDomain,
        Rcode::YXRRSet,
        Rcode::NotAuth,
    ];

    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NXDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::YXDomain => 6,
            Rcode::YXRRSet => 7,
            Rcode::NXRRSet => 8,
            Rcode::NotAuth => 9,
            Rcode::NotZone => 10,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    /// Decodes a 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NXDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            6 => Rcode::YXDomain,
            7 => Rcode::YXRRSet,
            8 => Rcode::NXRRSet,
            9 => Rcode::NotAuth,
            10 => Rcode::NotZone,
            other => Rcode::Other(other),
        }
    }

    /// Whether this rcode signals successful resolution.
    pub fn is_success(self) -> bool {
        self == Rcode::NoError
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcode::NoError => "NoError",
            Rcode::FormErr => "FormErr",
            Rcode::ServFail => "ServFail",
            Rcode::NXDomain => "NXDomain",
            Rcode::NotImp => "NotImp",
            Rcode::Refused => "Refused",
            Rcode::YXDomain => "YXDomain",
            Rcode::YXRRSet => "YXRRSet",
            Rcode::NXRRSet => "NXRRSet",
            Rcode::NotAuth => "NotAuth",
            Rcode::NotZone => "NotZone",
            Rcode::Other(v) => return write!(f, "Rcode{v}"),
        };
        write!(f, "{s}")
    }
}

/// The DNS message header: ID, flag bits, and the four section counts.
///
/// The flag bits QR, AA, TC, RD, RA and the rcode are exactly the fields
/// whose (mis)use the paper's behavioral analysis is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    id: u16,
    response: bool,
    opcode: Opcode,
    authoritative: bool,
    truncated: bool,
    recursion_desired: bool,
    recursion_available: bool,
    /// The reserved Z bit (must be zero; some broken resolvers set it).
    z: bool,
    /// Authentic-data bit (DNSSEC, RFC 4035).
    authentic_data: bool,
    /// Checking-disabled bit (DNSSEC, RFC 4035).
    checking_disabled: bool,
    rcode: Rcode,
    question_count: u16,
    answer_count: u16,
    authority_count: u16,
    additional_count: u16,
}

impl Header {
    /// A query header with the given ID; RD is set (the prober always
    /// requests recursion).
    pub fn query(id: u16) -> Self {
        Self {
            id,
            recursion_desired: true,
            ..Self::default()
        }
    }

    /// A response header matching a query's ID.
    pub fn response_to(query: &Header) -> Self {
        Self {
            id: query.id,
            response: true,
            opcode: query.opcode,
            recursion_desired: query.recursion_desired,
            ..Self::default()
        }
    }

    /// Message ID.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Sets the message ID.
    pub fn set_id(&mut self, id: u16) -> &mut Self {
        self.id = id;
        self
    }

    /// QR bit: whether this is a response.
    pub fn is_response(&self) -> bool {
        self.response
    }

    /// Sets the QR bit.
    pub fn set_response(&mut self, response: bool) -> &mut Self {
        self.response = response;
        self
    }

    /// Operation code.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Sets the operation code.
    pub fn set_opcode(&mut self, opcode: Opcode) -> &mut Self {
        self.opcode = opcode;
        self
    }

    /// AA bit: authoritative answer.
    pub fn authoritative(&self) -> bool {
        self.authoritative
    }

    /// Sets the AA bit.
    pub fn set_authoritative(&mut self, aa: bool) -> &mut Self {
        self.authoritative = aa;
        self
    }

    /// TC bit: message was truncated.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Sets the TC bit.
    pub fn set_truncated(&mut self, tc: bool) -> &mut Self {
        self.truncated = tc;
        self
    }

    /// RD bit: recursion desired.
    pub fn recursion_desired(&self) -> bool {
        self.recursion_desired
    }

    /// Sets the RD bit.
    pub fn set_recursion_desired(&mut self, rd: bool) -> &mut Self {
        self.recursion_desired = rd;
        self
    }

    /// RA bit: recursion available.
    pub fn recursion_available(&self) -> bool {
        self.recursion_available
    }

    /// Sets the RA bit.
    pub fn set_recursion_available(&mut self, ra: bool) -> &mut Self {
        self.recursion_available = ra;
        self
    }

    /// The reserved Z bit.
    pub fn z_bit(&self) -> bool {
        self.z
    }

    /// Sets the reserved Z bit (only broken implementations do).
    pub fn set_z_bit(&mut self, z: bool) -> &mut Self {
        self.z = z;
        self
    }

    /// AD bit (DNSSEC authentic data).
    pub fn authentic_data(&self) -> bool {
        self.authentic_data
    }

    /// Sets the AD bit.
    pub fn set_authentic_data(&mut self, ad: bool) -> &mut Self {
        self.authentic_data = ad;
        self
    }

    /// CD bit (DNSSEC checking disabled).
    pub fn checking_disabled(&self) -> bool {
        self.checking_disabled
    }

    /// Sets the CD bit.
    pub fn set_checking_disabled(&mut self, cd: bool) -> &mut Self {
        self.checking_disabled = cd;
        self
    }

    /// Response code.
    pub fn rcode(&self) -> Rcode {
        self.rcode
    }

    /// Sets the response code.
    pub fn set_rcode(&mut self, rcode: Rcode) -> &mut Self {
        self.rcode = rcode;
        self
    }

    /// QDCOUNT: number of questions.
    pub fn question_count(&self) -> u16 {
        self.question_count
    }

    /// ANCOUNT: number of answer records.
    pub fn answer_count(&self) -> u16 {
        self.answer_count
    }

    /// NSCOUNT: number of authority records.
    pub fn authority_count(&self) -> u16 {
        self.authority_count
    }

    /// ARCOUNT: number of additional records.
    pub fn additional_count(&self) -> u16 {
        self.additional_count
    }

    /// Sets the four section counts (normally done by message encoding).
    pub fn set_counts(&mut self, qd: u16, an: u16, ns: u16, ar: u16) -> &mut Self {
        self.question_count = qd;
        self.answer_count = an;
        self.authority_count = ns;
        self.additional_count = ar;
        self
    }

    /// Encodes the 12 header bytes.
    pub fn encode(&self, w: &mut Writer) {
        w.write_u16(self.id);
        let mut flags: u16 = 0;
        if self.response {
            flags |= 1 << 15;
        }
        flags |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            flags |= 1 << 10;
        }
        if self.truncated {
            flags |= 1 << 9;
        }
        if self.recursion_desired {
            flags |= 1 << 8;
        }
        if self.recursion_available {
            flags |= 1 << 7;
        }
        if self.z {
            flags |= 1 << 6;
        }
        if self.authentic_data {
            flags |= 1 << 5;
        }
        if self.checking_disabled {
            flags |= 1 << 4;
        }
        flags |= self.rcode.to_u8() as u16;
        w.write_u16(flags);
        w.write_u16(self.question_count);
        w.write_u16(self.answer_count);
        w.write_u16(self.authority_count);
        w.write_u16(self.additional_count);
    }

    /// Decodes the 12 header bytes.
    ///
    /// # Errors
    ///
    /// Fails only on truncation; every flag combination is representable.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = r.read_u16("header id")?;
        let flags = r.read_u16("header flags")?;
        let question_count = r.read_u16("QDCOUNT")?;
        let answer_count = r.read_u16("ANCOUNT")?;
        let authority_count = r.read_u16("NSCOUNT")?;
        let additional_count = r.read_u16("ARCOUNT")?;
        Ok(Self {
            id,
            response: flags & (1 << 15) != 0,
            opcode: Opcode::from_u8((flags >> 11) as u8),
            authoritative: flags & (1 << 10) != 0,
            truncated: flags & (1 << 9) != 0,
            recursion_desired: flags & (1 << 8) != 0,
            recursion_available: flags & (1 << 7) != 0,
            z: flags & (1 << 6) != 0,
            authentic_data: flags & (1 << 5) != 0,
            checking_disabled: flags & (1 << 4) != 0,
            rcode: Rcode::from_u8(flags as u8),
            question_count,
            answer_count,
            authority_count,
            additional_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_header_defaults() {
        let h = Header::query(0xBEEF);
        assert_eq!(h.id(), 0xBEEF);
        assert!(!h.is_response());
        assert!(h.recursion_desired());
        assert!(!h.recursion_available());
        assert!(!h.authoritative());
        assert_eq!(h.rcode(), Rcode::NoError);
    }

    #[test]
    fn response_mirrors_query() {
        let q = Header::query(7);
        let r = Header::response_to(&q);
        assert_eq!(r.id(), 7);
        assert!(r.is_response());
        assert!(r.recursion_desired());
    }

    #[test]
    fn roundtrip_all_flag_bits() {
        let mut h = Header::query(0x0102);
        h.set_response(true)
            .set_authoritative(true)
            .set_truncated(true)
            .set_recursion_available(true)
            .set_z_bit(true)
            .set_authentic_data(true)
            .set_checking_disabled(true)
            .set_rcode(Rcode::Refused)
            .set_counts(1, 2, 3, 4);
        let mut w = Writer::new();
        h.encode(&mut w);
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 12);
        let back = Header::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn known_wire_vector() {
        // ID=0x1234, QR=1 RD=1 RA=1 rcode=NXDomain, counts 1/0/1/0.
        let buf = [
            0x12, 0x34, 0x81, 0x83, 0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00,
        ];
        let h = Header::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(h.id(), 0x1234);
        assert!(h.is_response());
        assert!(h.recursion_desired());
        assert!(h.recursion_available());
        assert_eq!(h.rcode(), Rcode::NXDomain);
        assert_eq!(h.question_count(), 1);
        assert_eq!(h.authority_count(), 1);
    }

    #[test]
    fn truncated_header_errors() {
        let buf = [0u8; 11];
        assert!(matches!(
            Header::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn rcode_u8_roundtrip() {
        for v in 0..16u8 {
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
        assert_eq!(Rcode::from_u8(3), Rcode::NXDomain);
        assert_eq!(Rcode::from_u8(9), Rcode::NotAuth);
        assert_eq!(Rcode::from_u8(13), Rcode::Other(13));
    }

    #[test]
    fn opcode_u8_roundtrip() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
        }
        assert_eq!(Opcode::from_u8(5), Opcode::Update);
    }

    #[test]
    fn rcode_display_matches_table_vi_names() {
        let names: Vec<String> = Rcode::TABLE_VI_ORDER
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "NoError", "FormErr", "ServFail", "NXDomain", "NotImp", "Refused", "YXDomain",
                "YXRRSet", "NotAuth"
            ]
        );
    }
}
