//! Typed rdata for the record types the measurement pipeline handles.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::WireError;
use crate::name::Name;
use crate::record::RecordType;
use crate::wire::{Reader, Writer};

/// The start-of-authority payload (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    /// Primary name server for the zone.
    pub mname: Name,
    /// Mailbox of the person responsible for the zone.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry upper bound, seconds.
    pub expire: u32,
    /// Minimum / negative-caching TTL, seconds.
    pub minimum: u32,
}

/// Typed rdata. Unknown types are carried opaquely so that captures of
/// nonstandard responses survive a decode/encode roundtrip.
///
/// `Soa` dwarfs the other variants because [`Name`] stores its labels
/// inline (two of them: ~530 bytes). That is deliberate: boxing the
/// variant would put a heap allocation back into every SOA-bearing
/// response the resolver and authoritative server build on the hot
/// path, defeating the inline-name design.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// An authoritative name server.
    Ns(Name),
    /// A canonical-name alias. Misbehaving resolvers in the wild answer A
    /// queries with CNAMEs pointing at ad/search portals; the paper's
    /// "URL"-form incorrect answers (Table VII) surface this way.
    Cname(Name),
    /// Start of authority.
    Soa(Soa),
    /// A reverse-mapping pointer.
    Ptr(Name),
    /// A mail exchange: preference and exchange host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// The mail server name.
        exchange: Name,
    },
    /// Text segments (each at most 255 bytes). The paper's "string"-form
    /// incorrect answers (`wild`, `OK`, `ff`, ...) appear here.
    Txt(Vec<Vec<u8>>),
    /// An IPv6 address.
    Aaaa(Ipv6Addr),
    /// Opaque rdata for any type this crate does not model, including
    /// malformed rdata of known types preserved byte-for-byte.
    Unknown {
        /// The wire type code.
        rtype: u16,
        /// The raw rdata bytes.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this rdata belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Soa(_) => RecordType::Soa,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Unknown { rtype, .. } => RecordType::from_u16(*rtype),
        }
    }

    /// The IPv4 address if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            RData::A(addr) => Some(*addr),
            _ => None,
        }
    }

    /// Encodes the rdata (without the RDLENGTH prefix, which the record
    /// encoder backpatches).
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        // Names inside rdata are written uncompressed: RFC 3597 forbids
        // compression in rdata of types unknown to the receiver, and
        // emitting uncompressed everywhere keeps RDLENGTH stable under
        // re-encoding.
        let was = w.compression_enabled();
        w.set_compression(false);
        let result = self.encode_inner(w);
        w.set_compression(was);
        result
    }

    fn encode_inner(&self, w: &mut Writer) -> Result<(), WireError> {
        match self {
            RData::A(addr) => w.write_slice(&addr.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode(w)?,
            RData::Soa(soa) => {
                soa.mname.encode(w)?;
                soa.rname.encode(w)?;
                w.write_u32(soa.serial);
                w.write_u32(soa.refresh);
                w.write_u32(soa.retry);
                w.write_u32(soa.expire);
                w.write_u32(soa.minimum);
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                w.write_u16(*preference);
                exchange.encode(w)?;
            }
            RData::Txt(segments) => {
                for seg in segments {
                    if seg.len() > 255 {
                        return Err(WireError::CharacterStringTooLong { len: seg.len() });
                    }
                    w.write_u8(seg.len() as u8);
                    w.write_slice(seg);
                }
            }
            RData::Aaaa(addr) => w.write_slice(&addr.octets()),
            RData::Unknown { data, .. } => w.write_slice(data),
        }
        Ok(())
    }

    /// Decodes `rdlen` bytes of rdata of type `rtype`.
    ///
    /// # Errors
    ///
    /// Known types with malformed payloads produce
    /// [`WireError::BadRdataLength`]; unknown types never fail (opaque).
    pub fn decode(r: &mut Reader<'_>, rtype: RecordType, rdlen: usize) -> Result<Self, WireError> {
        let start = r.position();
        let out = match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdataLength {
                        rtype: rtype.to_u16(),
                        declared: rdlen,
                        actual: 4,
                    });
                }
                let b = r.read_slice(4, "A rdata")?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RecordType::Ns => RData::Ns(Name::decode(r)?),
            RecordType::Cname => RData::Cname(Name::decode(r)?),
            RecordType::Ptr => RData::Ptr(Name::decode(r)?),
            RecordType::Soa => RData::Soa(Soa {
                mname: Name::decode(r)?,
                rname: Name::decode(r)?,
                serial: r.read_u32("SOA serial")?,
                refresh: r.read_u32("SOA refresh")?,
                retry: r.read_u32("SOA retry")?,
                expire: r.read_u32("SOA expire")?,
                minimum: r.read_u32("SOA minimum")?,
            }),
            RecordType::Mx => RData::Mx {
                preference: r.read_u16("MX preference")?,
                exchange: Name::decode(r)?,
            },
            RecordType::Txt => {
                let mut segments = Vec::new();
                while r.position() < start + rdlen {
                    let len = r.read_u8("TXT segment length")? as usize;
                    if r.position() + len > start + rdlen {
                        return Err(WireError::BadRdataLength {
                            rtype: rtype.to_u16(),
                            declared: rdlen,
                            actual: r.position() + len - start,
                        });
                    }
                    segments.push(r.read_slice(len, "TXT segment")?.to_vec());
                }
                RData::Txt(segments)
            }
            RecordType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdataLength {
                        rtype: rtype.to_u16(),
                        declared: rdlen,
                        actual: 16,
                    });
                }
                let b = r.read_slice(16, "AAAA rdata")?;
                let mut octets = [0u8; 16];
                octets.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(octets))
            }
            other => RData::Unknown {
                rtype: other.to_u16(),
                data: r.read_slice(rdlen, "opaque rdata")?.to_vec(),
            },
        };
        Ok(out)
    }
}

impl From<Ipv4Addr> for RData {
    fn from(addr: Ipv4Addr) -> Self {
        RData::A(addr)
    }
}

impl From<Ipv6Addr> for RData {
    fn from(addr: Ipv6Addr) -> Self {
        RData::Aaaa(addr)
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Ptr(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Txt(segs) => {
                for (i, seg) in segs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "\"{}\"", String::from_utf8_lossy(seg))?;
                }
                Ok(())
            }
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Unknown { rtype, data } => {
                write!(f, "\\# {}", data.len())?;
                for b in data {
                    write!(f, " {b:02x}")?;
                }
                let _ = rtype;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn roundtrip(rdata: RData) -> RData {
        let mut w = Writer::new();
        rdata.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        let mut r = Reader::new(&buf);
        let back = RData::decode(&mut r, rdata.rtype(), buf.len()).unwrap();
        assert_eq!(r.remaining(), 0);
        back
    }

    #[test]
    fn roundtrip_every_type() {
        let cases = vec![
            RData::A(Ipv4Addr::new(208, 91, 197, 91)),
            RData::Ns(name("ns1.ucfsealresearch.net")),
            RData::Cname(name("u.dcoin.co")),
            RData::Ptr(name("1.0.0.10.in-addr.arpa")),
            RData::Soa(Soa {
                mname: name("ns1.example.net"),
                rname: name("hostmaster.example.net"),
                serial: 20180426,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 86_400,
            }),
            RData::Mx {
                preference: 10,
                exchange: name("mx.example.net"),
            },
            RData::Txt(vec![b"wild".to_vec(), b"OK".to_vec()]),
            RData::Aaaa("2001:db8::1".parse().unwrap()),
            RData::Unknown {
                rtype: 99,
                data: vec![0xDE, 0xAD],
            },
        ];
        for rdata in cases {
            assert_eq!(roundtrip(rdata.clone()), rdata);
        }
    }

    #[test]
    fn empty_txt_and_empty_unknown() {
        assert_eq!(roundtrip(RData::Txt(vec![])), RData::Txt(vec![]));
        let u = RData::Unknown {
            rtype: 31337,
            data: vec![],
        };
        assert_eq!(roundtrip(u.clone()), u);
    }

    #[test]
    fn a_with_wrong_length_rejected() {
        let buf = [1, 2, 3];
        let err = RData::decode(&mut Reader::new(&buf), RecordType::A, 3).unwrap_err();
        assert!(matches!(err, WireError::BadRdataLength { rtype: 1, .. }));
    }

    #[test]
    fn aaaa_with_wrong_length_rejected() {
        let buf = [0u8; 4];
        let err = RData::decode(&mut Reader::new(&buf), RecordType::Aaaa, 4).unwrap_err();
        assert!(matches!(err, WireError::BadRdataLength { rtype: 28, .. }));
    }

    #[test]
    fn txt_segment_overrunning_rdlen_rejected() {
        // Segment claims 10 bytes but rdlen is 5.
        let buf = [10, b'a', b'b', b'c', b'd'];
        let err = RData::decode(&mut Reader::new(&buf), RecordType::Txt, 5).unwrap_err();
        assert!(matches!(err, WireError::BadRdataLength { rtype: 16, .. }));
    }

    #[test]
    fn oversized_txt_segment_rejected_on_encode() {
        let rdata = RData::Txt(vec![vec![b'x'; 300]]);
        let mut w = Writer::new();
        assert!(matches!(
            rdata.encode(&mut w).unwrap_err(),
            WireError::CharacterStringTooLong { len: 300 }
        ));
    }

    #[test]
    fn as_a_accessor() {
        assert_eq!(
            RData::A(Ipv4Addr::LOCALHOST).as_a(),
            Some(Ipv4Addr::LOCALHOST)
        );
        assert_eq!(RData::Txt(vec![]).as_a(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RData::A(Ipv4Addr::new(1, 2, 3, 4)).to_string(), "1.2.3.4");
        assert_eq!(RData::Txt(vec![b"OK".to_vec()]).to_string(), "\"OK\"");
        assert_eq!(
            RData::Unknown {
                rtype: 9,
                data: vec![0xab]
            }
            .to_string(),
            "\\# 1 ab"
        );
    }

    #[test]
    fn names_in_rdata_are_not_compressed() {
        // Encode a message-like buffer where the owner name could be a
        // compression target; rdata must still spell the name out.
        let mut w = Writer::new();
        name("example.com").encode(&mut w).unwrap();
        let before = w.len();
        RData::Cname(name("example.com")).encode(&mut w).unwrap();
        let after = w.len();
        // Uncompressed "example.com" is 13 bytes, a pointer would be 2.
        assert_eq!(after - before, 13);
    }
}
