//! Domain names: labels, validation, and wire encoding with compression.

use std::fmt;
use std::str::FromStr;

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// Maximum total length of a name on the wire (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Hop limit when following compression pointers; RFC 1035 names can have
/// at most 127 labels, so any legitimate chain is far shorter.
const MAX_POINTER_HOPS: usize = 64;

/// A fully-qualified domain name, stored as a sequence of labels.
///
/// Comparison and hashing are ASCII case-insensitive, as required by
/// RFC 1035 §2.3.3; the original spelling is preserved for display.
///
/// # Example
///
/// ```
/// use orscope_dns_wire::Name;
///
/// let a: Name = "WWW.Example.COM".parse()?;
/// let b: Name = "www.example.com".parse()?;
/// assert_eq!(a, b);
/// assert_eq!(a.label_count(), 3);
/// assert!(a.is_subdomain_of(&"example.com".parse()?));
/// # Ok::<(), orscope_dns_wire::ParseNameError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Name {
    /// Labels in most-significant-last order (`www`, `example`, `com`).
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Self { labels: Vec::new() }
    }

    /// Builds a name from label byte-strings.
    ///
    /// # Errors
    ///
    /// Returns an error if any label is empty or longer than 63 bytes, or
    /// if the total wire length would exceed 255 bytes.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, ParseNameError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        let mut wire_len = 1usize; // trailing root byte
        for label in labels {
            let label = label.as_ref();
            if label.is_empty() {
                return Err(ParseNameError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(ParseNameError::LabelTooLong(label.len()));
            }
            wire_len += 1 + label.len();
            out.push(label.to_vec());
        }
        if wire_len > MAX_NAME_LEN {
            return Err(ParseNameError::NameTooLong(wire_len));
        }
        Ok(Self { labels: out })
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_slice())
    }

    /// Length of the uncompressed wire encoding, including the root byte.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Whether `self` is equal to or a subdomain of `ancestor`.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        self.labels
            .iter()
            .rev()
            .zip(ancestor.labels.iter().rev())
            .all(|(a, b)| eq_label(a, b))
    }

    /// The name with its leftmost label removed (`www.example.com` ->
    /// `example.com`); `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepends a label (`example.com` + `www` -> `www.example.com`).
    ///
    /// # Errors
    ///
    /// Same validation as [`Name::from_labels`].
    pub fn prepend(&self, label: &str) -> Result<Name, ParseNameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_bytes().to_vec());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Byte-exact (case-sensitive) comparison, used by DNS 0x20
    /// validation where the mixed case *is* the entropy.
    pub fn eq_bytes(&self, other: &Name) -> bool {
        self.labels.len() == other.labels.len()
            && self.labels.iter().zip(&other.labels).all(|(a, b)| a == b)
    }

    /// Returns the name with its ASCII letters' case scrambled by the
    /// bits of `entropy` — the DNS 0x20 encoding (draft-vixie-dnsext-
    /// dns0x20): resolvers randomize query case and verify the echo,
    /// adding up to one bit of anti-spoofing entropy per letter.
    pub fn randomize_case(&self, mut entropy: u64) -> Name {
        let labels = self
            .labels
            .iter()
            .map(|label| {
                label
                    .iter()
                    .map(|&b| {
                        if b.is_ascii_alphabetic() {
                            let flip = entropy & 1 == 1;
                            entropy = entropy.rotate_right(1) ^ 0x9E37_79B9_7F4A_7C15;
                            if flip {
                                b.to_ascii_uppercase()
                            } else {
                                b.to_ascii_lowercase()
                            }
                        } else {
                            b
                        }
                    })
                    .collect::<Vec<u8>>()
            })
            .collect::<Vec<_>>();
        Name { labels }
    }

    /// Encodes the name, using message compression when the writer allows.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        // Try to compress each suffix, registering the ones we emit.
        for (i, _) in self.labels.iter().enumerate() {
            let key = suffix_key(&self.labels[i..]);
            if let Some(target) = w.compression_target(&key) {
                w.write_u16(0xC000 | target);
                return Ok(());
            }
            let offset = w.len();
            w.register_compression(key, offset);
            let label = &self.labels[i];
            if label.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong { len: label.len() });
            }
            w.write_u8(label.len() as u8);
            w.write_slice(label);
        }
        w.write_u8(0); // root
        Ok(())
    }

    /// Decodes a possibly-compressed name from the reader.
    ///
    /// The reader is left positioned after the name *in the original
    /// stream* (i.e. after the first pointer, if any).
    ///
    /// # Errors
    ///
    /// Reports truncation, reserved label types, malicious pointer chains
    /// (forward pointers or loops) and length violations distinctly.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut labels = Vec::new();
        let mut wire_len = 1usize;
        let mut hops = 0usize;
        // Position to restore after the first pointer jump.
        let mut resume: Option<usize> = None;
        loop {
            let offset = r.position();
            let len = r.read_u8("name label length")?;
            match len {
                0 => break,
                l if l & 0xC0 == 0xC0 => {
                    let lo = r.read_u8("compression pointer")?;
                    let target = ((l as usize & 0x3F) << 8) | lo as usize;
                    // Pointers must point strictly backwards to prevent
                    // loops (RFC 1035 intends "prior occurrence").
                    if target >= offset {
                        return Err(WireError::BadCompressionPointer { target, offset });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadCompressionPointer { target, offset });
                    }
                    if resume.is_none() {
                        resume = Some(r.position());
                    }
                    r.seek(target);
                }
                l if l & 0xC0 != 0 => {
                    return Err(WireError::BadLabelType { byte: l, offset });
                }
                l => {
                    let label = r.read_slice(l as usize, "name label")?;
                    wire_len += 1 + label.len();
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(label.to_vec());
                }
            }
        }
        if let Some(pos) = resume {
            r.seek(pos);
        }
        Ok(Self { labels })
    }
}

/// ASCII case-insensitive label equality.
fn eq_label(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

/// Lowercased `.`-joined suffix, used as the compression-map key.
fn suffix_key(labels: &[Vec<u8>]) -> Vec<u8> {
    let mut key = Vec::new();
    for (i, label) in labels.iter().enumerate() {
        if i > 0 {
            key.push(b'.');
        }
        key.extend(label.iter().map(|b| b.to_ascii_lowercase()));
    }
    key
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| eq_label(a, b))
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for label in &self.labels {
            for b in label {
                state.write_u8(b.to_ascii_lowercase());
            }
            state.write_u8(0);
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering: compare label sequences right-to-left,
    /// case-insensitively (RFC 4034 §6.1 style).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a: Vec<Vec<u8>> = self
            .labels
            .iter()
            .rev()
            .map(|l| l.to_ascii_lowercase())
            .collect();
        let b: Vec<Vec<u8>> = other
            .labels
            .iter()
            .rev()
            .map(|l| l.to_ascii_lowercase())
            .collect();
        a.cmp(&b)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in label {
                // Escape dots and non-printables inside labels.
                match b {
                    b'.' => write!(f, "\\.")?,
                    0x21..=0x7E => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\{:03}", b)?,
                }
            }
        }
        Ok(())
    }
}

/// Error parsing a domain name from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNameError {
    /// A label was empty (e.g. `a..b`).
    EmptyLabel,
    /// A label exceeded 63 bytes.
    LabelTooLong(usize),
    /// The whole name exceeded 255 wire bytes.
    NameTooLong(usize),
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::EmptyLabel => write!(f, "empty label in domain name"),
            ParseNameError::LabelTooLong(n) => write!(f, "label of {n} bytes exceeds 63"),
            ParseNameError::NameTooLong(n) => write!(f, "name of {n} wire bytes exceeds 255"),
        }
    }
}

impl std::error::Error for ParseNameError {}

impl FromStr for Name {
    type Err = ParseNameError;

    /// Parses dotted notation; a single trailing dot is allowed and `"."`
    /// or `""` denote the root.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(s.split('.').map(str::as_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(name("www.example.com").to_string(), "www.example.com");
        assert_eq!(name("example.com.").to_string(), "example.com");
        assert_eq!(name(".").to_string(), ".");
        assert_eq!(name("").to_string(), ".");
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(name("Example.COM"));
        assert!(set.contains(&name("example.com")));
        assert_eq!(name("A.B"), name("a.b"));
        assert_ne!(name("a.b"), name("a.c"));
    }

    #[test]
    fn rejects_invalid_labels() {
        assert_eq!("a..b".parse::<Name>(), Err(ParseNameError::EmptyLabel));
        let long = "x".repeat(64);
        assert!(matches!(
            long.parse::<Name>(),
            Err(ParseNameError::LabelTooLong(64))
        ));
        let huge = vec!["abcdefgh"; 30].join(".");
        assert!(matches!(
            huge.parse::<Name>(),
            Err(ParseNameError::NameTooLong(_))
        ));
    }

    #[test]
    fn subdomain_relation() {
        let zone = name("ucfsealresearch.net");
        assert!(name("or000.0000001.ucfsealresearch.net").is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&Name::root()));
        assert!(!name("example.net").is_subdomain_of(&zone));
        assert!(!name("net").is_subdomain_of(&zone));
        // Case-insensitive.
        assert!(name("A.UCFSEALRESEARCH.NET").is_subdomain_of(&zone));
    }

    #[test]
    fn parent_and_prepend() {
        let n = name("www.example.com");
        assert_eq!(n.parent().unwrap(), name("example.com"));
        assert_eq!(Name::root().parent(), None);
        assert_eq!(name("example.com").prepend("www").unwrap(), n);
    }

    #[test]
    fn wire_roundtrip_simple() {
        let n = name("or001.0004242.ucfsealresearch.net");
        let mut w = Writer::new();
        n.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), n.wire_len());
        let mut r = Reader::new(&buf);
        let back = Name::decode(&mut r).unwrap();
        assert_eq!(back, n);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn root_encodes_as_single_zero() {
        let mut w = Writer::new();
        Name::root().encode(&mut w).unwrap();
        assert_eq!(w.finish().unwrap(), vec![0]);
    }

    #[test]
    fn compression_reuses_suffix() {
        let mut w = Writer::new();
        name("www.example.com").encode(&mut w).unwrap();
        let uncompressed_len = w.len();
        name("mail.example.com").encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        // Second name: 1+4 ("mail") + 2 (pointer) = 7 bytes.
        assert_eq!(buf.len(), uncompressed_len + 7);
        let mut r = Reader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), name("www.example.com"));
        assert_eq!(Name::decode(&mut r).unwrap(), name("mail.example.com"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn identical_name_compresses_to_pure_pointer() {
        let mut w = Writer::new();
        name("example.com").encode(&mut w).unwrap();
        let first = w.len();
        name("EXAMPLE.com").encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), first + 2, "case difference must still compress");
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 pointing to itself.
        let buf = [0xC0, 0x00];
        let err = Name::decode(&mut Reader::new(&buf)).unwrap_err();
        assert!(matches!(err, WireError::BadCompressionPointer { .. }));
    }

    #[test]
    fn decode_rejects_pointer_loop() {
        // offset 0: label "a"; offset 2: pointer to 4; offset 4: pointer to 2.
        // Forward pointer from 2 to 4 is rejected outright.
        let buf = [1, b'a', 0xC0, 0x04, 0xC0, 0x02];
        let mut r = Reader::new(&buf);
        let err = Name::decode(&mut r).unwrap_err();
        assert!(matches!(err, WireError::BadCompressionPointer { .. }));
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        let buf = [0x40, 0x00];
        assert!(matches!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::BadLabelType { byte: 0x40, .. }
        ));
        let buf = [0x80, 0x00];
        assert!(matches!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::BadLabelType { byte: 0x80, .. }
        ));
    }

    #[test]
    fn decode_rejects_truncated_label() {
        let buf = [5, b'a', b'b'];
        assert!(matches!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn decode_rejects_overlong_assembled_name() {
        // Chain of valid 63-byte labels exceeding 255 total.
        let mut buf = Vec::new();
        for _ in 0..5 {
            buf.push(63);
            buf.extend(std::iter::repeat_n(b'a', 63));
        }
        buf.push(0);
        assert_eq!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::NameTooLong
        );
    }

    #[test]
    fn display_escapes_weird_bytes() {
        let n = Name::from_labels([&b"a.b"[..], &b"\x01"[..]]).unwrap();
        assert_eq!(n.to_string(), "a\\.b.\\001");
    }

    #[test]
    fn dns0x20_case_randomization() {
        let n = name("or000.0000042.ucfsealresearch.net");
        let scrambled = n.randomize_case(0xDEAD_BEEF_1234_5678);
        // Equal under DNS semantics, different bytes.
        assert_eq!(scrambled, n);
        assert!(!scrambled.eq_bytes(&n) || n.to_string().chars().all(|c| !c.is_alphabetic()));
        // Deterministic per entropy; different entropy differs.
        assert!(scrambled.eq_bytes(&n.randomize_case(0xDEAD_BEEF_1234_5678)));
        assert!(!scrambled.eq_bytes(&n.randomize_case(1)));
        // Digits and dots untouched.
        assert!(scrambled.to_string().contains("000042"));
    }

    #[test]
    fn eq_bytes_is_case_sensitive() {
        assert!(name("a.b").eq_bytes(&name("a.b")));
        assert!(!name("A.b").eq_bytes(&name("a.b")));
        assert_eq!(name("A.b"), name("a.b"), "semantic equality unchanged");
    }

    #[test]
    fn canonical_ordering_is_right_to_left() {
        let mut names = [name("b.com"), name("a.net"), name("a.com"), name("com")];
        names.sort();
        let strs: Vec<String> = names.iter().map(Name::to_string).collect();
        assert_eq!(strs, vec!["com", "a.com", "b.com", "a.net"]);
    }
}

impl Name {
    /// The `in-addr.arpa` reverse-lookup name for an IPv4 address
    /// (RFC 1035 §3.5): `1.2.3.4` maps to `4.3.2.1.in-addr.arpa`.
    ///
    /// # Example
    ///
    /// ```
    /// use orscope_dns_wire::Name;
    /// use std::net::Ipv4Addr;
    ///
    /// let ptr = Name::reverse_pointer(Ipv4Addr::new(208, 91, 197, 91));
    /// assert_eq!(ptr.to_string(), "91.197.91.208.in-addr.arpa");
    /// ```
    pub fn reverse_pointer(addr: std::net::Ipv4Addr) -> Name {
        let [a, b, c, d] = addr.octets();
        let labels = [
            d.to_string(),
            c.to_string(),
            b.to_string(),
            a.to_string(),
            "in-addr".to_owned(),
            "arpa".to_owned(),
        ];
        Name::from_labels(labels.iter().map(String::as_bytes)).expect("octet labels are valid")
    }
}

#[cfg(test)]
mod reverse_tests {
    use super::*;

    #[test]
    fn reverse_pointer_construction() {
        let ptr = Name::reverse_pointer(std::net::Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(ptr.to_string(), "4.3.2.1.in-addr.arpa");
        assert!(ptr.is_subdomain_of(&"in-addr.arpa".parse().unwrap()));
        let zero = Name::reverse_pointer(std::net::Ipv4Addr::new(0, 0, 0, 0));
        assert_eq!(zero.to_string(), "0.0.0.0.in-addr.arpa");
    }
}
