//! Domain names: labels, validation, and wire encoding with compression.

use std::fmt;
use std::str::FromStr;

use crate::error::WireError;
use crate::wire::{Reader, Writer};

/// Maximum total length of a name on the wire (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Hop limit when following compression pointers; RFC 1035 names can have
/// at most 127 labels, so any legitimate chain is far shorter.
const MAX_POINTER_HOPS: usize = 64;

/// Label data (length-prefixed labels, no trailing root byte) fits in
/// `MAX_NAME_LEN - 1` bytes.
const INLINE_CAP: usize = MAX_NAME_LEN - 1;
/// A name has at most 127 labels (each costs ≥ 2 wire bytes).
const MAX_LABELS: usize = 127;

/// A fully-qualified domain name, stored as a sequence of labels.
///
/// Labels live in a fixed inline buffer covering the 255-octet wire
/// maximum (length-prefixed, like the wire format but without the root
/// byte), so constructing, cloning, and decoding a `Name` never touches
/// the heap.
///
/// Comparison and hashing are ASCII case-insensitive, as required by
/// RFC 1035 §2.3.3; the original spelling is preserved for display.
///
/// # Example
///
/// ```
/// use orscope_dns_wire::Name;
///
/// let a: Name = "WWW.Example.COM".parse()?;
/// let b: Name = "www.example.com".parse()?;
/// assert_eq!(a, b);
/// assert_eq!(a.label_count(), 3);
/// assert!(a.is_subdomain_of(&"example.com".parse()?));
/// # Ok::<(), orscope_dns_wire::ParseNameError>(())
/// ```
#[derive(Clone)]
pub struct Name {
    /// Length-prefixed labels in wire order (`3www7example3com` for
    /// `www.example.com`), without the trailing root byte.
    buf: [u8; INLINE_CAP],
    /// Bytes of `buf` in use.
    len: u8,
    /// Number of labels.
    count: u8,
}

impl Default for Name {
    fn default() -> Self {
        Self::root()
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name(\"{self}\")")
    }
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Self {
            buf: [0; INLINE_CAP],
            len: 0,
            count: 0,
        }
    }

    /// Builds a name from label byte-strings.
    ///
    /// # Errors
    ///
    /// Returns an error if any label is empty or longer than 63 bytes, or
    /// if the total wire length would exceed 255 bytes.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, ParseNameError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Self::root();
        let mut len = 0usize;
        let mut count = 0usize;
        let mut wire_len = 1usize; // trailing root byte
        for label in labels {
            let label = label.as_ref();
            if label.is_empty() {
                return Err(ParseNameError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(ParseNameError::LabelTooLong(label.len()));
            }
            wire_len += 1 + label.len();
            // Keep accumulating the would-be length past the cap so the
            // error reports the full figure, but stop writing.
            if wire_len <= MAX_NAME_LEN {
                out.buf[len] = label.len() as u8;
                out.buf[len + 1..len + 1 + label.len()].copy_from_slice(label);
                len += 1 + label.len();
                count += 1;
            }
        }
        if wire_len > MAX_NAME_LEN {
            return Err(ParseNameError::NameTooLong(wire_len));
        }
        out.len = len as u8;
        out.count = count as u8;
        Ok(out)
    }

    /// The label data in wire layout (length-prefixed, no root byte).
    #[inline]
    fn data(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// Byte offsets (into [`Name::data`]) where each label starts.
    fn label_offsets(&self) -> ([u8; MAX_LABELS], usize) {
        let mut offsets = [0u8; MAX_LABELS];
        let mut n = 0usize;
        let data = self.data();
        let mut pos = 0usize;
        while pos < data.len() {
            offsets[n] = pos as u8;
            n += 1;
            pos += 1 + data[pos] as usize;
        }
        (offsets, n)
    }

    /// The label starting at byte `offset` of [`Name::data`].
    #[inline]
    fn label_at(&self, offset: u8) -> &[u8] {
        let pos = offset as usize;
        let len = self.buf[pos] as usize;
        &self.buf[pos + 1..pos + 1 + len]
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.count == 0
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.count as usize
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        LabelIter { rest: self.data() }
    }

    /// Length of the uncompressed wire encoding, including the root byte.
    pub fn wire_len(&self) -> usize {
        1 + self.len as usize
    }

    /// Whether `self` is equal to or a subdomain of `ancestor`.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.count > self.count {
            return false;
        }
        let (self_offsets, self_n) = self.label_offsets();
        let (anc_offsets, anc_n) = ancestor.label_offsets();
        (0..anc_n).all(|k| {
            eq_label(
                self.label_at(self_offsets[self_n - 1 - k]),
                ancestor.label_at(anc_offsets[anc_n - 1 - k]),
            )
        })
    }

    /// The name with its leftmost label removed (`www.example.com` ->
    /// `example.com`); `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.count == 0 {
            return None;
        }
        let skip = 1 + self.buf[0] as usize;
        let mut out = Self::root();
        let rest = &self.data()[skip..];
        out.buf[..rest.len()].copy_from_slice(rest);
        out.len = rest.len() as u8;
        out.count = self.count - 1;
        Some(out)
    }

    /// Prepends a label (`example.com` + `www` -> `www.example.com`).
    ///
    /// # Errors
    ///
    /// Same validation as [`Name::from_labels`].
    pub fn prepend(&self, label: &str) -> Result<Name, ParseNameError> {
        Name::from_labels(std::iter::once(label.as_bytes()).chain(self.labels()))
    }

    /// Byte-exact (case-sensitive) comparison, used by DNS 0x20
    /// validation where the mixed case *is* the entropy.
    pub fn eq_bytes(&self, other: &Name) -> bool {
        self.data() == other.data()
    }

    /// Returns the name with its ASCII letters' case scrambled by the
    /// bits of `entropy` — the DNS 0x20 encoding (draft-vixie-dnsext-
    /// dns0x20): resolvers randomize query case and verify the echo,
    /// adding up to one bit of anti-spoofing entropy per letter.
    pub fn randomize_case(&self, mut entropy: u64) -> Name {
        let mut out = self.clone();
        let mut pos = 0usize;
        while pos < out.len as usize {
            let label_len = out.buf[pos] as usize;
            for b in &mut out.buf[pos + 1..pos + 1 + label_len] {
                if b.is_ascii_alphabetic() {
                    let flip = entropy & 1 == 1;
                    entropy = entropy.rotate_right(1) ^ 0x9E37_79B9_7F4A_7C15;
                    *b = if flip {
                        b.to_ascii_uppercase()
                    } else {
                        b.to_ascii_lowercase()
                    };
                }
            }
            pos += 1 + label_len;
        }
        out
    }

    /// Encodes the name, using message compression when the writer allows.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        let data = self.data();
        let mut pos = 0usize;
        // Try to compress each suffix against names already emitted,
        // registering the offsets of the suffixes we write out.
        while pos < data.len() {
            if let Some(target) = find_compression_target(w, &data[pos..]) {
                w.write_u16(0xC000 | target);
                return Ok(());
            }
            let offset = w.len();
            w.register_compression_offset(offset);
            let label_len = data[pos] as usize;
            w.write_slice(&data[pos..pos + 1 + label_len]);
            pos += 1 + label_len;
        }
        w.write_u8(0); // root
        Ok(())
    }

    /// Decodes a possibly-compressed name from the reader.
    ///
    /// The reader is left positioned after the name *in the original
    /// stream* (i.e. after the first pointer, if any).
    ///
    /// # Errors
    ///
    /// Reports truncation, reserved label types, malicious pointer chains
    /// (forward pointers or loops) and length violations distinctly.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = Self::root();
        let mut len = 0usize;
        let mut count = 0usize;
        let mut wire_len = 1usize;
        let mut hops = 0usize;
        // Position to restore after the first pointer jump.
        let mut resume: Option<usize> = None;
        loop {
            let offset = r.position();
            let byte = r.read_u8("name label length")?;
            match byte {
                0 => break,
                l if l & 0xC0 == 0xC0 => {
                    let lo = r.read_u8("compression pointer")?;
                    let target = ((l as usize & 0x3F) << 8) | lo as usize;
                    // Pointers must point strictly backwards to prevent
                    // loops (RFC 1035 intends "prior occurrence").
                    if target >= offset {
                        return Err(WireError::BadCompressionPointer { target, offset });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadCompressionPointer { target, offset });
                    }
                    if resume.is_none() {
                        resume = Some(r.position());
                    }
                    r.seek(target);
                }
                l if l & 0xC0 != 0 => {
                    return Err(WireError::BadLabelType { byte: l, offset });
                }
                l => {
                    let label = r.read_slice(l as usize, "name label")?;
                    wire_len += 1 + label.len();
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    out.buf[len] = l;
                    out.buf[len + 1..len + 1 + label.len()].copy_from_slice(label);
                    len += 1 + label.len();
                    count += 1;
                }
            }
        }
        if let Some(pos) = resume {
            r.seek(pos);
        }
        out.len = len as u8;
        out.count = count as u8;
        Ok(out)
    }
}

struct LabelIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            return None;
        }
        let len = self.rest[0] as usize;
        let label = &self.rest[1..1 + len];
        self.rest = &self.rest[1 + len..];
        Some(label)
    }
}

/// ASCII case-insensitive label equality.
fn eq_label(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

/// Scans the writer's registered name offsets for one whose encoding
/// equals `suffix` (length-prefixed labels, no root byte), ASCII
/// case-insensitively. First registration wins, matching the emission
/// order the old map-based scheme produced.
fn find_compression_target(w: &Writer, suffix: &[u8]) -> Option<u16> {
    let buf = w.bytes();
    w.compression_targets()
        .iter()
        .copied()
        .find(|&target| name_at_matches(buf, target as usize, suffix))
}

/// Whether the (possibly compressed) name encoded at `pos` in `buf`
/// equals `suffix`, following pointers as a decoder would.
fn name_at_matches(buf: &[u8], mut pos: usize, suffix: &[u8]) -> bool {
    let mut s = 0usize;
    let mut hops = 0usize;
    loop {
        // Follow any chain of (strictly backward) pointers.
        while pos + 1 < buf.len() && buf[pos] & 0xC0 == 0xC0 {
            let target = ((buf[pos] as usize & 0x3F) << 8) | buf[pos + 1] as usize;
            if target >= pos {
                return false;
            }
            hops += 1;
            if hops > MAX_POINTER_HOPS {
                return false;
            }
            pos = target;
        }
        let Some(&len) = buf.get(pos) else {
            return false;
        };
        if s == suffix.len() {
            // Our suffix is exhausted: the emitted name must end here too.
            return len == 0;
        }
        let want = suffix[s] as usize;
        if len as usize != want || pos + 1 + want > buf.len() {
            return false;
        }
        if !eq_label(&buf[pos + 1..pos + 1 + want], &suffix[s + 1..s + 1 + want]) {
            return false;
        }
        pos += 1 + want;
        s += 1 + want;
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Length bytes are ≤ 63 and thus below every ASCII letter, so a
        // case-insensitive sweep over the raw layout compares label
        // boundaries exactly and label bytes case-insensitively.
        self.len == other.len
            && self
                .data()
                .iter()
                .zip(other.data())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for label in self.labels() {
            for b in label {
                state.write_u8(b.to_ascii_lowercase());
            }
            state.write_u8(0);
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering: compare label sequences right-to-left,
    /// case-insensitively (RFC 4034 §6.1 style).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let (self_offsets, self_n) = self.label_offsets();
        let (other_offsets, other_n) = other.label_offsets();
        for k in 0..self_n.min(other_n) {
            let a = self.label_at(self_offsets[self_n - 1 - k]);
            let b = other.label_at(other_offsets[other_n - 1 - k]);
            let ord = cmp_label_ci(a, b);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self_n.cmp(&other_n)
    }
}

/// ASCII case-insensitive lexicographic label comparison.
fn cmp_label_ci(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.to_ascii_lowercase().cmp(&y.to_ascii_lowercase());
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for (i, label) in self.labels().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in label {
                // Escape dots and non-printables inside labels.
                match b {
                    b'.' => write!(f, "\\.")?,
                    0x21..=0x7E => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\{:03}", b)?,
                }
            }
        }
        Ok(())
    }
}

/// Error parsing a domain name from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNameError {
    /// A label was empty (e.g. `a..b`).
    EmptyLabel,
    /// A label exceeded 63 bytes.
    LabelTooLong(usize),
    /// The whole name exceeded 255 wire bytes.
    NameTooLong(usize),
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::EmptyLabel => write!(f, "empty label in domain name"),
            ParseNameError::LabelTooLong(n) => write!(f, "label of {n} bytes exceeds 63"),
            ParseNameError::NameTooLong(n) => write!(f, "name of {n} wire bytes exceeds 255"),
        }
    }
}

impl std::error::Error for ParseNameError {}

impl FromStr for Name {
    type Err = ParseNameError;

    /// Parses dotted notation; a single trailing dot is allowed and `"."`
    /// or `""` denote the root.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(s.split('.').map(str::as_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(name("www.example.com").to_string(), "www.example.com");
        assert_eq!(name("example.com.").to_string(), "example.com");
        assert_eq!(name(".").to_string(), ".");
        assert_eq!(name("").to_string(), ".");
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(name("Example.COM"));
        assert!(set.contains(&name("example.com")));
        assert_eq!(name("A.B"), name("a.b"));
        assert_ne!(name("a.b"), name("a.c"));
    }

    #[test]
    fn rejects_invalid_labels() {
        assert_eq!("a..b".parse::<Name>(), Err(ParseNameError::EmptyLabel));
        let long = "x".repeat(64);
        assert!(matches!(
            long.parse::<Name>(),
            Err(ParseNameError::LabelTooLong(64))
        ));
        let huge = vec!["abcdefgh"; 30].join(".");
        assert!(matches!(
            huge.parse::<Name>(),
            Err(ParseNameError::NameTooLong(_))
        ));
    }

    #[test]
    fn inline_storage_has_no_heap_parts() {
        // The whole point of the representation: a Name is one flat
        // value, so cloning or decoding it cannot allocate.
        assert_eq!(std::mem::size_of::<Name>(), INLINE_CAP + 2);
    }

    #[test]
    fn max_length_name_roundtrips() {
        // 3 × 63-byte labels + 1 × 61-byte label: wire_len = 255 exactly.
        let labels: Vec<String> = (0..3)
            .map(|i| format!("{i}").repeat(63))
            .chain(std::iter::once("x".repeat(61)))
            .collect();
        let n = Name::from_labels(labels.iter().map(String::as_bytes)).unwrap();
        assert_eq!(n.wire_len(), 255);
        let mut w = Writer::new();
        n.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        let back = Name::decode(&mut Reader::new(&buf)).unwrap();
        assert!(back.eq_bytes(&n));
    }

    #[test]
    fn subdomain_relation() {
        let zone = name("ucfsealresearch.net");
        assert!(name("or000.0000001.ucfsealresearch.net").is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&Name::root()));
        assert!(!name("example.net").is_subdomain_of(&zone));
        assert!(!name("net").is_subdomain_of(&zone));
        // Case-insensitive.
        assert!(name("A.UCFSEALRESEARCH.NET").is_subdomain_of(&zone));
    }

    #[test]
    fn parent_and_prepend() {
        let n = name("www.example.com");
        assert_eq!(n.parent().unwrap(), name("example.com"));
        assert_eq!(Name::root().parent(), None);
        assert_eq!(name("example.com").prepend("www").unwrap(), n);
    }

    #[test]
    fn wire_roundtrip_simple() {
        let n = name("or001.0004242.ucfsealresearch.net");
        let mut w = Writer::new();
        n.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), n.wire_len());
        let mut r = Reader::new(&buf);
        let back = Name::decode(&mut r).unwrap();
        assert_eq!(back, n);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn root_encodes_as_single_zero() {
        let mut w = Writer::new();
        Name::root().encode(&mut w).unwrap();
        assert_eq!(w.finish().unwrap(), vec![0]);
    }

    #[test]
    fn compression_reuses_suffix() {
        let mut w = Writer::new();
        name("www.example.com").encode(&mut w).unwrap();
        let uncompressed_len = w.len();
        name("mail.example.com").encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        // Second name: 1+4 ("mail") + 2 (pointer) = 7 bytes.
        assert_eq!(buf.len(), uncompressed_len + 7);
        let mut r = Reader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), name("www.example.com"));
        assert_eq!(Name::decode(&mut r).unwrap(), name("mail.example.com"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn identical_name_compresses_to_pure_pointer() {
        let mut w = Writer::new();
        name("example.com").encode(&mut w).unwrap();
        let first = w.len();
        name("EXAMPLE.com").encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), first + 2, "case difference must still compress");
    }

    #[test]
    fn compression_matches_through_pointer_chains() {
        // Third name must compress against a suffix that is itself
        // partially encoded via a pointer.
        let mut w = Writer::new();
        name("www.example.com").encode(&mut w).unwrap();
        name("mail.example.com").encode(&mut w).unwrap();
        let before = w.len();
        name("smtp.mail.example.com").encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        // Fourth name: 1+4 ("smtp") + 2 (pointer to "mail.example.com").
        assert_eq!(buf.len(), before + 7);
        let mut r = Reader::new(&buf);
        assert_eq!(Name::decode(&mut r).unwrap(), name("www.example.com"));
        assert_eq!(Name::decode(&mut r).unwrap(), name("mail.example.com"));
        assert_eq!(Name::decode(&mut r).unwrap(), name("smtp.mail.example.com"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 pointing to itself.
        let buf = [0xC0, 0x00];
        let err = Name::decode(&mut Reader::new(&buf)).unwrap_err();
        assert!(matches!(err, WireError::BadCompressionPointer { .. }));
    }

    #[test]
    fn decode_rejects_pointer_loop() {
        // offset 0: label "a"; offset 2: pointer to 4; offset 4: pointer to 2.
        // Forward pointer from 2 to 4 is rejected outright.
        let buf = [1, b'a', 0xC0, 0x04, 0xC0, 0x02];
        let mut r = Reader::new(&buf);
        let err = Name::decode(&mut r).unwrap_err();
        assert!(matches!(err, WireError::BadCompressionPointer { .. }));
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        let buf = [0x40, 0x00];
        assert!(matches!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::BadLabelType { byte: 0x40, .. }
        ));
        let buf = [0x80, 0x00];
        assert!(matches!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::BadLabelType { byte: 0x80, .. }
        ));
    }

    #[test]
    fn decode_rejects_truncated_label() {
        let buf = [5, b'a', b'b'];
        assert!(matches!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn decode_rejects_overlong_assembled_name() {
        // Chain of valid 63-byte labels exceeding 255 total.
        let mut buf = Vec::new();
        for _ in 0..5 {
            buf.push(63);
            buf.extend(std::iter::repeat_n(b'a', 63));
        }
        buf.push(0);
        assert_eq!(
            Name::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::NameTooLong
        );
    }

    #[test]
    fn display_escapes_weird_bytes() {
        let n = Name::from_labels([&b"a.b"[..], &b"\x01"[..]]).unwrap();
        assert_eq!(n.to_string(), "a\\.b.\\001");
    }

    #[test]
    fn dns0x20_case_randomization() {
        let n = name("or000.0000042.ucfsealresearch.net");
        let scrambled = n.randomize_case(0xDEAD_BEEF_1234_5678);
        // Equal under DNS semantics, different bytes.
        assert_eq!(scrambled, n);
        assert!(!scrambled.eq_bytes(&n) || n.to_string().chars().all(|c| !c.is_alphabetic()));
        // Deterministic per entropy; different entropy differs.
        assert!(scrambled.eq_bytes(&n.randomize_case(0xDEAD_BEEF_1234_5678)));
        assert!(!scrambled.eq_bytes(&n.randomize_case(1)));
        // Digits and dots untouched.
        assert!(scrambled.to_string().contains("000042"));
    }

    #[test]
    fn eq_bytes_is_case_sensitive() {
        assert!(name("a.b").eq_bytes(&name("a.b")));
        assert!(!name("A.b").eq_bytes(&name("a.b")));
        assert_eq!(name("A.b"), name("a.b"), "semantic equality unchanged");
    }

    #[test]
    fn canonical_ordering_is_right_to_left() {
        let mut names = [name("b.com"), name("a.net"), name("a.com"), name("com")];
        names.sort();
        let strs: Vec<String> = names.iter().map(Name::to_string).collect();
        assert_eq!(strs, vec!["com", "a.com", "b.com", "a.net"]);
    }
}

impl Name {
    /// The `in-addr.arpa` reverse-lookup name for an IPv4 address
    /// (RFC 1035 §3.5): `1.2.3.4` maps to `4.3.2.1.in-addr.arpa`.
    ///
    /// # Example
    ///
    /// ```
    /// use orscope_dns_wire::Name;
    /// use std::net::Ipv4Addr;
    ///
    /// let ptr = Name::reverse_pointer(Ipv4Addr::new(208, 91, 197, 91));
    /// assert_eq!(ptr.to_string(), "91.197.91.208.in-addr.arpa");
    /// ```
    pub fn reverse_pointer(addr: std::net::Ipv4Addr) -> Name {
        let [a, b, c, d] = addr.octets();
        let labels = [
            d.to_string(),
            c.to_string(),
            b.to_string(),
            a.to_string(),
            "in-addr".to_string(),
            "arpa".to_string(),
        ];
        Name::from_labels(labels).expect("octet labels are valid")
    }
}

#[cfg(test)]
mod reverse_tests {
    use super::*;

    #[test]
    fn reverse_pointer_construction() {
        let ptr = Name::reverse_pointer(std::net::Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(ptr.to_string(), "4.3.2.1.in-addr.arpa");
        assert!(ptr.is_subdomain_of(&"in-addr.arpa".parse().unwrap()));
        let zero = Name::reverse_pointer(std::net::Ipv4Addr::new(0, 0, 0, 0));
        assert_eq!(zero.to_string(), "0.0.0.0.in-addr.arpa");
    }

    #[test]
    fn reverse_pointer_three_digit_octets() {
        let ptr = Name::reverse_pointer(std::net::Ipv4Addr::new(208, 91, 197, 255));
        assert_eq!(ptr.to_string(), "255.197.91.208.in-addr.arpa");
    }
}
