//! Decode/encode error types.

use std::fmt;

/// An error produced while encoding or decoding a DNS message.
///
/// The decoder is deliberately specific about failure causes: the
/// measurement pipeline counts undecodable responses (the paper found
/// 8,764 of them in the 2013 capture) and wants to distinguish truncated
/// packets from compression-pointer abuse from label-length violations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The packet ended before the announced structure was complete.
    Truncated {
        /// Byte offset at which more data was required.
        offset: usize,
        /// What the decoder was trying to read.
        expected: &'static str,
    },
    /// A label length byte used the reserved `0b10`/`0b01` prefixes.
    BadLabelType {
        /// Offending length byte.
        byte: u8,
        /// Byte offset of the label.
        offset: usize,
    },
    /// A compression pointer pointed at or beyond its own position, or a
    /// pointer chain exceeded the hop limit.
    BadCompressionPointer {
        /// Target offset of the offending pointer.
        target: usize,
        /// Offset the pointer itself was read from.
        offset: usize,
    },
    /// A domain name exceeded 255 octets on the wire.
    NameTooLong,
    /// A single label exceeded 63 octets.
    LabelTooLong {
        /// The offending label length.
        len: usize,
    },
    /// An rdata section's declared length disagrees with its contents.
    BadRdataLength {
        /// The record type whose rdata was malformed.
        rtype: u16,
        /// Declared rdata length.
        declared: usize,
        /// Bytes actually available/consumed.
        actual: usize,
    },
    /// Trailing bytes remained after the announced sections were decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A message being encoded would exceed the 65,535-byte limit.
    MessageTooLong {
        /// Size the encoding would have reached.
        size: usize,
    },
    /// A character-string (e.g. TXT segment) exceeded 255 bytes.
    CharacterStringTooLong {
        /// The offending segment length.
        len: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { offset, expected } => {
                write!(
                    f,
                    "packet truncated at offset {offset} while reading {expected}"
                )
            }
            WireError::BadLabelType { byte, offset } => {
                write!(f, "reserved label type byte {byte:#04x} at offset {offset}")
            }
            WireError::BadCompressionPointer { target, offset } => {
                write!(
                    f,
                    "invalid compression pointer to {target} at offset {offset}"
                )
            }
            WireError::NameTooLong => write!(f, "domain name exceeds 255 octets"),
            WireError::LabelTooLong { len } => write!(f, "label of {len} octets exceeds 63"),
            WireError::BadRdataLength {
                rtype,
                declared,
                actual,
            } => write!(
                f,
                "rdata length mismatch for type {rtype}: declared {declared}, actual {actual}"
            ),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after message end")
            }
            WireError::MessageTooLong { size } => {
                write!(f, "encoded message of {size} bytes exceeds 65535")
            }
            WireError::CharacterStringTooLong { len } => {
                write!(f, "character-string of {len} bytes exceeds 255")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated {
            offset: 5,
            expected: "header",
        };
        assert!(e.to_string().contains("offset 5"));
        assert!(e.to_string().contains("header"));
        let e = WireError::BadRdataLength {
            rtype: 1,
            declared: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("declared 4"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}
