//! Resource records: types, classes, and the record container.

use std::fmt;

use crate::error::WireError;
use crate::name::Name;
use crate::rdata::RData;
use crate::wire::{Reader, Writer};

/// DNS record types (RFC 1035 §3.2.2 plus AAAA, OPT and the ANY qtype the
/// amplification analysis uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// 1: IPv4 host address.
    A,
    /// 2: authoritative name server.
    Ns,
    /// 5: canonical name (alias).
    Cname,
    /// 6: start of authority.
    Soa,
    /// 12: domain name pointer (reverse lookups).
    Ptr,
    /// 15: mail exchange.
    Mx,
    /// 16: text strings.
    Txt,
    /// 28: IPv6 host address.
    Aaaa,
    /// 41: EDNS(0) pseudo-record (RFC 6891).
    Opt,
    /// 255: request for all records ("ANY"), the amplification vector.
    Any,
    /// Any other type code.
    Other(u16),
}

impl RecordType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Any => 255,
            RecordType::Other(v) => v,
        }
    }

    /// Decodes a 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            255 => RecordType::Any,
            other => RecordType::Other(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Any => write!(f, "ANY"),
            RecordType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// DNS record classes; effectively always `IN` on the Internet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecordClass {
    /// 1: the Internet.
    #[default]
    In,
    /// 3: Chaos (used by version.bind queries).
    Ch,
    /// 4: Hesiod.
    Hs,
    /// 255: any class.
    Any,
    /// Any other class code (OPT records smuggle the UDP payload size
    /// through this field).
    Other(u16),
}

impl RecordClass {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
            RecordClass::Hs => 4,
            RecordClass::Any => 255,
            RecordClass::Other(v) => v,
        }
    }

    /// Decodes a 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            3 => RecordClass::Ch,
            4 => RecordClass::Hs,
            255 => RecordClass::Any,
            other => RecordClass::Other(other),
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordClass::In => write!(f, "IN"),
            RecordClass::Ch => write!(f, "CH"),
            RecordClass::Hs => write!(f, "HS"),
            RecordClass::Any => write!(f, "ANY"),
            RecordClass::Other(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// One resource record: owner name, class, TTL and typed rdata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    name: Name,
    class: RecordClass,
    ttl: u32,
    rdata: RData,
}

impl Record {
    /// Creates a record.
    pub fn new(name: Name, class: RecordClass, ttl: u32, rdata: RData) -> Self {
        Self {
            name,
            class,
            ttl,
            rdata,
        }
    }

    /// Convenience constructor for `IN` records.
    pub fn in_class(name: Name, ttl: u32, rdata: RData) -> Self {
        Self::new(name, RecordClass::In, ttl, rdata)
    }

    /// Owner name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Record class.
    pub fn class(&self) -> RecordClass {
        self.class
    }

    /// Time to live, in seconds.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// Replaces the TTL (used by caches counting down remaining life).
    pub fn set_ttl(&mut self, ttl: u32) -> &mut Self {
        self.ttl = ttl;
        self
    }

    /// The record type, derived from the rdata.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    /// The typed rdata.
    pub fn rdata(&self) -> &RData {
        &self.rdata
    }

    /// Consumes the record, returning its rdata.
    pub fn into_rdata(self) -> RData {
        self.rdata
    }

    /// Encodes the record with a backpatched RDLENGTH.
    pub fn encode(&self, w: &mut Writer) -> Result<(), WireError> {
        self.name.encode(w)?;
        w.write_u16(self.rtype().to_u16());
        w.write_u16(self.class.to_u16());
        w.write_u32(self.ttl);
        let len_at = w.len();
        w.write_u16(0); // placeholder RDLENGTH
        let start = w.len();
        self.rdata.encode(w)?;
        let rdlen = w.len() - start;
        if rdlen > u16::MAX as usize {
            return Err(WireError::BadRdataLength {
                rtype: self.rtype().to_u16(),
                declared: u16::MAX as usize,
                actual: rdlen,
            });
        }
        w.patch_u16(len_at, rdlen as u16);
        Ok(())
    }

    /// Decodes one record.
    ///
    /// # Errors
    ///
    /// Reports truncation and rdata-length mismatches; unknown record
    /// types are preserved as [`RData::Unknown`] rather than rejected.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = Name::decode(r)?;
        let rtype = RecordType::from_u16(r.read_u16("record type")?);
        let class = RecordClass::from_u16(r.read_u16("record class")?);
        let ttl = r.read_u32("record ttl")?;
        let rdlen = r.read_u16("rdata length")? as usize;
        if r.remaining() < rdlen {
            return Err(WireError::Truncated {
                offset: r.position(),
                expected: "rdata",
            });
        }
        let rdata_end = r.position() + rdlen;
        let rdata = RData::decode(r, rtype, rdlen)?;
        if r.position() != rdata_end {
            return Err(WireError::BadRdataLength {
                rtype: rtype.to_u16(),
                declared: rdlen,
                actual: r.position() + rdlen - rdata_end,
            });
        }
        Ok(Self {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    /// Zone-file-ish presentation: `name ttl class type rdata`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name,
            self.ttl,
            self.class,
            self.rtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn type_code_roundtrip() {
        for t in [1u16, 2, 5, 6, 12, 15, 16, 28, 41, 255, 99, 257] {
            assert_eq!(RecordType::from_u16(t).to_u16(), t);
        }
    }

    #[test]
    fn class_code_roundtrip() {
        for c in [1u16, 3, 4, 255, 4096] {
            assert_eq!(RecordClass::from_u16(c).to_u16(), c);
        }
    }

    #[test]
    fn a_record_roundtrip() {
        let rec = Record::in_class(
            name("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(93, 184, 216, 34)),
        );
        let mut w = Writer::new();
        rec.encode(&mut w).unwrap();
        let buf = w.finish().unwrap();
        let back = Record::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.rtype(), RecordType::A);
        assert_eq!(back.ttl(), 300);
    }

    #[test]
    fn display_is_zone_file_like() {
        let rec = Record::in_class(name("a.example"), 60, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(rec.to_string(), "a.example 60 IN A 1.2.3.4");
    }

    #[test]
    fn rdata_length_mismatch_detected() {
        // A record declaring 5 rdata bytes but A rdata is 4.
        let mut w = Writer::new();
        name("x").encode(&mut w).unwrap();
        w.write_u16(1); // type A
        w.write_u16(1); // class IN
        w.write_u32(0); // ttl
        w.write_u16(5); // WRONG rdlength
        w.write_slice(&[1, 2, 3, 4, 9]);
        let buf = w.finish().unwrap();
        let err = Record::decode(&mut Reader::new(&buf)).unwrap_err();
        assert!(matches!(err, WireError::BadRdataLength { rtype: 1, .. }));
    }

    #[test]
    fn truncated_rdata_detected() {
        let mut w = Writer::new();
        name("x").encode(&mut w).unwrap();
        w.write_u16(1);
        w.write_u16(1);
        w.write_u32(0);
        w.write_u16(4);
        w.write_slice(&[1, 2]); // only 2 of 4 bytes
        let buf = w.finish().unwrap();
        assert!(matches!(
            Record::decode(&mut Reader::new(&buf)).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn display_names() {
        assert_eq!(RecordType::Any.to_string(), "ANY");
        assert_eq!(RecordType::Other(99).to_string(), "TYPE99");
        assert_eq!(RecordClass::Other(512).to_string(), "CLASS512");
    }
}
