//! Low-level wire reading/writing cursors.

use crate::error::WireError;

/// A bounds-checked reader over a raw DNS packet.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Repositions the cursor (used when following compression pointers).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// The whole underlying buffer (for pointer targets).
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, expected: &'static str) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated {
            offset: self.pos,
            expected,
        })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn read_u16(&mut self, expected: &'static str) -> Result<u16, WireError> {
        let hi = self.read_u8(expected)?;
        let lo = self.read_u8(expected)?;
        Ok(u16::from_be_bytes([hi, lo]))
    }

    /// Reads a big-endian u32.
    pub fn read_u32(&mut self, expected: &'static str) -> Result<u32, WireError> {
        let a = self.read_u8(expected)?;
        let b = self.read_u8(expected)?;
        let c = self.read_u8(expected)?;
        let d = self.read_u8(expected)?;
        Ok(u32::from_be_bytes([a, b, c, d]))
    }

    /// Reads exactly `len` bytes.
    pub fn read_slice(
        &mut self,
        len: usize,
        expected: &'static str,
    ) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated {
                offset: self.pos,
                expected,
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }
}

/// Compression targets tracked per message. DNS messages in this
/// workspace carry a handful of distinct names; once the fixed table is
/// full, later names are simply emitted uncompressed (graceful
/// degradation, never an error).
const MAX_COMPRESSION_TARGETS: usize = 64;

/// An appending writer that tracks name-compression targets.
///
/// Instead of keying a heap-allocated map by suffix text, the writer
/// records the *offsets* at which name encodings start; `Name::encode`
/// matches candidate suffixes by walking the already-emitted bytes
/// (following pointers like a decoder would). This keeps the encode path
/// free of per-name allocations.
#[derive(Debug)]
pub struct Writer {
    buf: Vec<u8>,
    /// Offsets (RFC 1035 §4.1.4 pointer targets) of names already
    /// emitted, in emission order. Only offsets that fit the 14-bit
    /// pointer field are stored.
    targets: [u16; MAX_COMPRESSION_TARGETS],
    targets_len: usize,
    /// When false, names are emitted without compression pointers (some
    /// rdata, e.g. inside OPT, must not be compressed).
    compression_enabled: bool,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// Creates an empty writer with compression enabled.
    pub fn new() -> Self {
        Self::with_buf(Vec::with_capacity(512))
    }

    /// Creates a writer that reuses `buf`'s allocation, clearing any
    /// previous contents. Pair with [`Writer::into_buf`] to recycle a
    /// scratch buffer across messages without reallocating.
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self {
            buf,
            targets: [0; MAX_COMPRESSION_TARGETS],
            targets_len: 0,
            compression_enabled: true,
        }
    }

    /// Disables compression for subsequently written names.
    pub fn set_compression(&mut self, enabled: bool) {
        self.compression_enabled = enabled;
    }

    /// Whether compression is currently enabled.
    pub fn compression_enabled(&self) -> bool {
        self.compression_enabled
    }

    /// Current output length (== offset of the next byte written).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn write_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrites a previously written big-endian u16 at `offset`
    /// (used to backpatch rdata lengths).
    ///
    /// # Panics
    ///
    /// Panics if `offset + 2` exceeds the current length.
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// The bytes written so far (compression candidates match against
    /// this).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Offsets of name encodings registered for compression, in emission
    /// order. Empty while compression is disabled.
    pub fn compression_targets(&self) -> &[u16] {
        if self.compression_enabled {
            &self.targets[..self.targets_len]
        } else {
            &[]
        }
    }

    /// Registers `offset` as the start of a name encoding for future
    /// compression, if it fits in a 14-bit pointer and the table has
    /// room.
    pub fn register_compression_offset(&mut self, offset: usize) {
        if self.compression_enabled && offset < 0x3FFF && self.targets_len < MAX_COMPRESSION_TARGETS
        {
            self.targets[self.targets_len] = offset as u16;
            self.targets_len += 1;
        }
    }

    /// Finishes the message, enforcing the 64 KiB limit.
    pub fn finish(self) -> Result<Vec<u8>, WireError> {
        if self.buf.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong {
                size: self.buf.len(),
            });
        }
        Ok(self.buf)
    }

    /// Recovers the underlying buffer regardless of length, for callers
    /// that restore a reusable scratch allocation on the error path.
    pub fn into_buf(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_reads_scalars() {
        let data = [0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE];
        let mut r = Reader::new(&data);
        assert_eq!(r.read_u8("x").unwrap(), 0x12);
        assert_eq!(r.read_u16("x").unwrap(), 0x3456);
        assert_eq!(r.read_u32("x").unwrap(), 0x789A_BCDE);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_truncation_reports_offset() {
        let data = [0x01];
        let mut r = Reader::new(&data);
        r.read_u8("first").unwrap();
        let err = r.read_u16("second").unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                offset: 1,
                expected: "second"
            }
        );
    }

    #[test]
    fn reader_slice_bounds() {
        let data = [1, 2, 3];
        let mut r = Reader::new(&data);
        assert_eq!(r.read_slice(2, "x").unwrap(), &[1, 2]);
        assert!(r.read_slice(2, "x").is_err());
        assert_eq!(r.read_slice(1, "x").unwrap(), &[3]);
    }

    #[test]
    fn writer_roundtrip_and_patch() {
        let mut w = Writer::new();
        w.write_u16(0); // placeholder
        w.write_u32(0xAABB_CCDD);
        w.patch_u16(0, 0x0102);
        let out = w.finish().unwrap();
        assert_eq!(out, vec![0x01, 0x02, 0xAA, 0xBB, 0xCC, 0xDD]);
    }

    #[test]
    fn writer_rejects_oversize() {
        let mut w = Writer::new();
        w.write_slice(&vec![0u8; 70_000]);
        assert!(matches!(
            w.finish(),
            Err(WireError::MessageTooLong { size: 70_000 })
        ));
    }

    #[test]
    fn compression_registry_respects_pointer_range() {
        let mut w = Writer::new();
        w.register_compression_offset(0x4000); // too far for a pointer
        assert_eq!(w.compression_targets(), &[] as &[u16]);
        w.register_compression_offset(12);
        assert_eq!(w.compression_targets(), &[12]);
        w.set_compression(false);
        assert_eq!(w.compression_targets(), &[] as &[u16]);
        w.set_compression(true);
        assert_eq!(w.compression_targets(), &[12]);
    }

    #[test]
    fn compression_registry_degrades_when_full() {
        let mut w = Writer::new();
        for i in 0..2 * MAX_COMPRESSION_TARGETS {
            w.register_compression_offset(i);
        }
        assert_eq!(w.compression_targets().len(), MAX_COMPRESSION_TARGETS);
        assert_eq!(w.compression_targets()[0], 0);
    }

    #[test]
    fn with_buf_reuses_allocation() {
        let mut scratch = Vec::with_capacity(4096);
        scratch.extend_from_slice(b"stale");
        let ptr = scratch.as_ptr();
        let mut w = Writer::with_buf(scratch);
        assert!(w.is_empty());
        w.write_u16(0xBEEF);
        let out = w.into_buf();
        assert_eq!(out, vec![0xBE, 0xEF]);
        assert_eq!(out.as_ptr(), ptr, "allocation must be recycled");
    }
}
