//! Low-level wire reading/writing cursors.

use crate::error::WireError;

/// A bounds-checked reader over a raw DNS packet.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Repositions the cursor (used when following compression pointers).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// The whole underlying buffer (for pointer targets).
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, expected: &'static str) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated {
            offset: self.pos,
            expected,
        })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn read_u16(&mut self, expected: &'static str) -> Result<u16, WireError> {
        let hi = self.read_u8(expected)?;
        let lo = self.read_u8(expected)?;
        Ok(u16::from_be_bytes([hi, lo]))
    }

    /// Reads a big-endian u32.
    pub fn read_u32(&mut self, expected: &'static str) -> Result<u32, WireError> {
        let a = self.read_u8(expected)?;
        let b = self.read_u8(expected)?;
        let c = self.read_u8(expected)?;
        let d = self.read_u8(expected)?;
        Ok(u32::from_be_bytes([a, b, c, d]))
    }

    /// Reads exactly `len` bytes.
    pub fn read_slice(
        &mut self,
        len: usize,
        expected: &'static str,
    ) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated {
                offset: self.pos,
                expected,
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }
}

/// An appending writer that tracks name-compression targets.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    /// Map from an already-emitted (lowercased) name suffix to its offset,
    /// used for RFC 1035 §4.1.4 message compression. Offsets must fit the
    /// 14-bit pointer field.
    compression: std::collections::HashMap<Vec<u8>, u16>,
    /// When false, names are emitted without compression pointers (some
    /// rdata, e.g. inside OPT, must not be compressed).
    compression_enabled: bool,
}

impl Writer {
    /// Creates an empty writer with compression enabled.
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(512),
            compression: std::collections::HashMap::new(),
            compression_enabled: true,
        }
    }

    /// Disables compression for subsequently written names.
    pub fn set_compression(&mut self, enabled: bool) {
        self.compression_enabled = enabled;
    }

    /// Whether compression is currently enabled.
    pub fn compression_enabled(&self) -> bool {
        self.compression_enabled
    }

    /// Current output length (== offset of the next byte written).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn write_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrites a previously written big-endian u16 at `offset`
    /// (used to backpatch rdata lengths).
    ///
    /// # Panics
    ///
    /// Panics if `offset + 2` exceeds the current length.
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Looks up a compression target for a (lowercased) suffix key.
    pub fn compression_target(&self, key: &[u8]) -> Option<u16> {
        if self.compression_enabled {
            self.compression.get(key).copied()
        } else {
            None
        }
    }

    /// Registers the current suffix at `offset` for future compression,
    /// if the offset still fits in a 14-bit pointer.
    pub fn register_compression(&mut self, key: Vec<u8>, offset: usize) {
        if self.compression_enabled && offset < 0x3FFF {
            self.compression.entry(key).or_insert(offset as u16);
        }
    }

    /// Finishes the message, enforcing the 64 KiB limit.
    pub fn finish(self) -> Result<Vec<u8>, WireError> {
        if self.buf.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong {
                size: self.buf.len(),
            });
        }
        Ok(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_reads_scalars() {
        let data = [0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE];
        let mut r = Reader::new(&data);
        assert_eq!(r.read_u8("x").unwrap(), 0x12);
        assert_eq!(r.read_u16("x").unwrap(), 0x3456);
        assert_eq!(r.read_u32("x").unwrap(), 0x789A_BCDE);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_truncation_reports_offset() {
        let data = [0x01];
        let mut r = Reader::new(&data);
        r.read_u8("first").unwrap();
        let err = r.read_u16("second").unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                offset: 1,
                expected: "second"
            }
        );
    }

    #[test]
    fn reader_slice_bounds() {
        let data = [1, 2, 3];
        let mut r = Reader::new(&data);
        assert_eq!(r.read_slice(2, "x").unwrap(), &[1, 2]);
        assert!(r.read_slice(2, "x").is_err());
        assert_eq!(r.read_slice(1, "x").unwrap(), &[3]);
    }

    #[test]
    fn writer_roundtrip_and_patch() {
        let mut w = Writer::new();
        w.write_u16(0); // placeholder
        w.write_u32(0xAABB_CCDD);
        w.patch_u16(0, 0x0102);
        let out = w.finish().unwrap();
        assert_eq!(out, vec![0x01, 0x02, 0xAA, 0xBB, 0xCC, 0xDD]);
    }

    #[test]
    fn writer_rejects_oversize() {
        let mut w = Writer::new();
        w.write_slice(&vec![0u8; 70_000]);
        assert!(matches!(
            w.finish(),
            Err(WireError::MessageTooLong { size: 70_000 })
        ));
    }

    #[test]
    fn compression_registry_respects_pointer_range() {
        let mut w = Writer::new();
        w.register_compression(b"example".to_vec(), 0x4000); // too far
        assert_eq!(w.compression_target(b"example"), None);
        w.register_compression(b"example".to_vec(), 12);
        assert_eq!(w.compression_target(b"example"), Some(12));
        w.set_compression(false);
        assert_eq!(w.compression_target(b"example"), None);
    }
}
