//! Simulated root and TLD name servers (Fig. 1, steps 2-5).
//!
//! The paper could not build its own root or TLD servers and simply used
//! the real ones. Our resolvers recurse inside the simulation, so we
//! provide minimal but protocol-faithful delegation servers: they never
//! answer address queries themselves; they return referrals (empty answer
//! section, NS in authority, glue A in additional) toward the next zone
//! cut, which is exactly what an iterative resolver needs.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use orscope_dns_wire::{Message, Name, RData, Rcode, Record};
use orscope_netsim::{Context, Datagram, Endpoint};

/// A delegation entry: the child zone's name server and its glue address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delegation {
    /// The delegated zone (e.g. `net` at the root, `ucfsealresearch.net`
    /// at the TLD).
    pub zone: Name,
    /// The child zone's name server name.
    pub ns: Name,
    /// Glue: the name server's address.
    pub glue: Ipv4Addr,
}

/// Shared referral logic for root and TLD servers.
#[derive(Debug, Clone, Default)]
struct DelegationTable {
    /// Keyed by the delegated zone name.
    entries: HashMap<Name, Delegation>,
}

impl DelegationTable {
    fn insert(&mut self, delegation: Delegation) {
        self.entries.insert(delegation.zone.clone(), delegation);
    }

    /// Finds the closest enclosing delegation for `qname`.
    fn find(&self, qname: &Name) -> Option<&Delegation> {
        let mut candidate = Some(qname.clone());
        while let Some(name) = candidate {
            if let Some(d) = self.entries.get(&name) {
                return Some(d);
            }
            candidate = name.parent();
        }
        None
    }

    /// Builds a referral (or NXDomain) response for a query.
    fn respond(&self, query: &Message) -> Message {
        let Some(question) = query.first_question() else {
            return Message::builder()
                .response_to(query)
                .rcode(Rcode::FormErr)
                .build();
        };
        match self.find(question.qname()) {
            Some(d) => Message::builder()
                .response_to(query)
                .authority(Record::in_class(
                    d.zone.clone(),
                    172_800,
                    RData::Ns(d.ns.clone()),
                ))
                .additional(Record::in_class(d.ns.clone(), 172_800, RData::A(d.glue)))
                .build(),
            None => Message::builder()
                .response_to(query)
                .rcode(Rcode::NXDomain)
                .build(),
        }
    }
}

macro_rules! delegation_endpoint {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            table: DelegationTable,
            queries_served: std::cell::Cell<u64>,
        }

        impl $name {
            /// Creates an empty server; add delegations before use.
            pub fn new() -> Self {
                Self::default()
            }

            /// Adds a delegation for `zone` served by `ns` at `glue`.
            pub fn delegate(&mut self, zone: Name, ns: Name, glue: Ipv4Addr) -> &mut Self {
                self.table.insert(Delegation { zone, ns, glue });
                self
            }

            /// Number of queries served (for Table II style accounting).
            pub fn queries_served(&self) -> u64 {
                self.queries_served.get()
            }

            /// Builds the referral response for a decoded query.
            pub fn respond(&self, query: &Message) -> Message {
                self.queries_served.set(self.queries_served.get() + 1);
                self.table.respond(query)
            }
        }

        impl Endpoint for $name {
            fn handle_datagram(&mut self, dgram: &Datagram, ctx: &mut Context<'_>) {
                if dgram.dst_port != 53 {
                    return;
                }
                let Ok(query) = Message::decode(&dgram.payload) else {
                    return;
                };
                if query.header().is_response() {
                    return;
                }
                let response = self.respond(&query);
                if let Ok(wire) = response.encode_truncated(query.response_size_limit()) {
                    ctx.send(dgram.reply(wire));
                }
            }
        }
    };
}

delegation_endpoint! {
    /// A root name server: delegates TLDs.
    RootServer
}

delegation_endpoint! {
    /// A TLD name server: delegates second-level domains.
    TldServer
}

#[cfg(test)]
mod tests {
    use super::*;
    use orscope_dns_wire::Question;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn root() -> RootServer {
        let mut r = RootServer::new();
        r.delegate(
            name("net"),
            name("a.gtld-servers.net"),
            Ipv4Addr::new(192, 5, 6, 30),
        );
        r
    }

    #[test]
    fn referral_for_known_tld() {
        let r = root();
        let q = Message::query(1, Question::a(name("or000.0000001.ucfsealresearch.net")));
        let resp = r.respond(&q);
        assert_eq!(resp.header().rcode(), Rcode::NoError);
        assert!(resp.answers().is_empty(), "referral has no answer");
        assert!(!resp.header().authoritative());
        assert_eq!(resp.authorities().len(), 1);
        assert_eq!(resp.authorities()[0].name(), &name("net"));
        assert_eq!(
            resp.additionals()[0].rdata().as_a(),
            Some(Ipv4Addr::new(192, 5, 6, 30))
        );
    }

    #[test]
    fn nxdomain_for_unknown_tld() {
        let r = root();
        let q = Message::query(2, Question::a(name("example.zz")));
        let resp = r.respond(&q);
        assert_eq!(resp.header().rcode(), Rcode::NXDomain);
    }

    #[test]
    fn tld_delegates_sld() {
        let mut tld = TldServer::new();
        tld.delegate(
            name("ucfsealresearch.net"),
            name("ns1.ucfsealresearch.net"),
            Ipv4Addr::new(45, 77, 1, 1),
        );
        let q = Message::query(3, Question::a(name("or001.0000002.ucfsealresearch.net")));
        let resp = tld.respond(&q);
        assert_eq!(resp.authorities()[0].name(), &name("ucfsealresearch.net"));
        assert_eq!(
            resp.additionals()[0].rdata().as_a(),
            Some(Ipv4Addr::new(45, 77, 1, 1))
        );
        assert_eq!(tld.queries_served(), 1);
    }

    #[test]
    fn closest_enclosing_delegation_wins() {
        let mut tld = TldServer::new();
        tld.delegate(name("net"), name("ns.net"), Ipv4Addr::new(1, 1, 1, 1));
        tld.delegate(
            name("example.net"),
            name("ns.example.net"),
            Ipv4Addr::new(2, 2, 2, 2),
        );
        let q = Message::query(4, Question::a(name("deep.www.example.net")));
        let resp = tld.respond(&q);
        assert_eq!(resp.authorities()[0].name(), &name("example.net"));
    }

    #[test]
    fn empty_question_gets_formerr() {
        let r = root();
        let mut q = Message::query(5, Question::a(name("x.net")));
        q.clear_questions();
        assert_eq!(r.respond(&q).header().rcode(), Rcode::FormErr);
    }
}
