//! BIND-style zone-file text format: parsing and serialization.
//!
//! The paper's authoritative server loaded its five-million-subdomain
//! clusters from generated zone files. This module provides the text
//! format those files use — enough of RFC 1035 §5 master-file syntax to
//! round-trip every record type the measurement emits:
//!
//! ```text
//! $ORIGIN ucfsealresearch.net.
//! $TTL 60
//! @                 3600 IN SOA ns1 hostmaster 2018042601 7200 900 1209600 300
//! @                 3600 IN NS  ns1
//! ns1               3600 IN A   104.238.191.60
//! or000.0000000           IN A  45.76.31.7
//! or000.0000001           IN A  45.77.100.2
//! ```
//!
//! Supported: `$ORIGIN`, `$TTL`, `@`, relative and absolute names,
//! comments (`;`), and A / NS / CNAME / SOA / PTR / MX / TXT / AAAA
//! records.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use orscope_dns_wire::rdata::Soa;
use orscope_dns_wire::{Name, RData, Record, RecordClass};

use crate::zone::Zone;

/// An error with the line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneFileError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ZoneFileError {}

fn err(line: usize, reason: impl Into<String>) -> ZoneFileError {
    ZoneFileError {
        line,
        reason: reason.into(),
    }
}

/// Parses a zone file into a [`Zone`].
///
/// The file must contain a `$ORIGIN`, exactly one SOA, and at least one
/// NS record, as BIND requires.
///
/// # Errors
///
/// Returns the first syntax or semantic error with its line number.
///
/// # Example
///
/// ```
/// use orscope_authns::zonefile;
///
/// let text = "\
/// $ORIGIN example.net.
/// $TTL 300
/// @    IN SOA ns1 hostmaster 1 7200 900 1209600 300
/// @    IN NS ns1
/// ns1  IN A  192.0.2.53
/// www  IN A  192.0.2.80
/// ";
/// let zone = zonefile::parse(text)?;
/// assert_eq!(zone.origin().to_string(), "example.net");
/// assert_eq!(zone.record_count(), 2); // ns1 + www (SOA/NS are built in)
/// # Ok::<(), orscope_authns::zonefile::ZoneFileError>(())
/// ```
pub fn parse(text: &str) -> Result<Zone, ZoneFileError> {
    let mut origin: Option<Name> = None;
    let mut default_ttl: u32 = 3600;
    let mut soa: Option<(Name, u32, Soa)> = None;
    let mut ns: Vec<(Name, u32, Name)> = Vec::new();
    let mut records: Vec<Record> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let mut tokens = tokenize(line);
        if tokens.is_empty() {
            continue;
        }
        // Directives.
        if tokens[0] == "$ORIGIN" {
            let name = tokens
                .get(1)
                .ok_or_else(|| err(lineno, "$ORIGIN needs a name"))?;
            origin = Some(
                name.parse()
                    .map_err(|e| err(lineno, format!("bad origin: {e}")))?,
            );
            continue;
        }
        if tokens[0] == "$TTL" {
            default_ttl = tokens
                .get(1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(lineno, "$TTL needs a number"))?;
            continue;
        }
        let origin_name = origin
            .clone()
            .ok_or_else(|| err(lineno, "record before $ORIGIN"))?;
        // Owner name.
        let owner_token = tokens.remove(0);
        let owner = resolve_name(&owner_token, &origin_name)
            .map_err(|e| err(lineno, format!("bad owner name: {e}")))?;
        // Optional TTL, optional class, then type.
        let mut ttl = default_ttl;
        if let Some(t) = tokens.first() {
            if let Ok(parsed) = t.parse::<u32>() {
                ttl = parsed;
                tokens.remove(0);
            }
        }
        if tokens.first().map(|t| t.as_str()) == Some("IN") {
            tokens.remove(0);
        }
        let rtype = tokens
            .first()
            .cloned()
            .ok_or_else(|| err(lineno, "missing record type"))?;
        tokens.remove(0);
        let rdata =
            parse_rdata(&rtype, &tokens, &origin_name).map_err(|reason| err(lineno, reason))?;
        match rdata {
            RData::Soa(s) => {
                if soa.is_some() {
                    return Err(err(lineno, "duplicate SOA"));
                }
                soa = Some((owner, ttl, s));
            }
            RData::Ns(target) => ns.push((owner, ttl, target)),
            other => records.push(Record::new(owner, RecordClass::In, ttl, other)),
        }
    }

    let origin = origin.ok_or_else(|| err(0, "no $ORIGIN in file"))?;
    let (soa_owner, _soa_ttl, soa) = soa.ok_or_else(|| err(0, "no SOA record"))?;
    if soa_owner != origin {
        return Err(err(0, "SOA owner is not the zone origin"));
    }
    if ns.is_empty() {
        return Err(err(0, "no NS record"));
    }
    let mut zone = Zone::new_with_soa(origin, soa);
    for (owner, ttl, target) in ns {
        zone.add_ns(owner, ttl, target);
    }
    zone.set_default_ttl(default_ttl);
    for record in records {
        zone.add_record(record);
    }
    Ok(zone)
}

/// Serializes a [`Zone`] to master-file text that [`parse`] round-trips.
pub fn serialize(zone: &Zone) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let origin = zone.origin();
    let _ = writeln!(out, "$ORIGIN {origin}.");
    let soa = zone.soa();
    if let RData::Soa(s) = soa.rdata() {
        let _ = writeln!(
            out,
            "@ {} IN SOA {}. {}. {} {} {} {} {}",
            soa.ttl(),
            s.mname,
            s.rname,
            s.serial,
            s.refresh,
            s.retry,
            s.expire,
            s.minimum
        );
    }
    for rec in zone.ns_records() {
        if let RData::Ns(target) = rec.rdata() {
            let _ = writeln!(out, "{}. {} IN NS {}.", rec.name(), rec.ttl(), target);
        }
    }
    for rec in zone.records() {
        let _ = writeln!(
            out,
            "{}. {} IN {} {}",
            rec.name(),
            rec.ttl(),
            rec.rtype(),
            rdata_text(rec.rdata())
        );
    }
    out
}

/// Presentation of rdata with absolute names (trailing dots).
fn rdata_text(rdata: &RData) -> String {
    match rdata {
        RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => format!("{n}."),
        RData::Mx {
            preference,
            exchange,
        } => format!("{preference} {exchange}."),
        RData::Txt(segments) => segments
            .iter()
            .map(|s| format!("\"{}\"", String::from_utf8_lossy(s)))
            .collect::<Vec<_>>()
            .join(" "),
        other => other.to_string(),
    }
}

/// Strips a `;` comment (TXT quoting is respected).
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits a line into tokens, keeping quoted strings intact.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Resolves `@`, relative, and absolute (dot-terminated) names.
fn resolve_name(token: &str, origin: &Name) -> Result<Name, String> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return absolute.parse().map_err(|e| format!("{e}"));
    }
    // Relative: append the origin.
    let relative: Name = token.parse().map_err(|e| format!("{e}"))?;
    let mut labels: Vec<Vec<u8>> = relative.labels().map(|l| l.to_vec()).collect();
    labels.extend(origin.labels().map(|l| l.to_vec()));
    Name::from_labels(labels).map_err(|e| format!("{e}"))
}

/// Parses the rdata tokens for `rtype`.
fn parse_rdata(rtype: &str, tokens: &[String], origin: &Name) -> Result<RData, String> {
    let need = |i: usize| -> Result<&String, String> {
        tokens
            .get(i)
            .ok_or_else(|| format!("{rtype} rdata too short"))
    };
    match rtype {
        "A" => Ok(RData::A(
            Ipv4Addr::from_str(need(0)?).map_err(|e| e.to_string())?,
        )),
        "AAAA" => Ok(RData::Aaaa(
            Ipv6Addr::from_str(need(0)?).map_err(|e| e.to_string())?,
        )),
        "NS" => Ok(RData::Ns(resolve_name(need(0)?, origin)?)),
        "CNAME" => Ok(RData::Cname(resolve_name(need(0)?, origin)?)),
        "PTR" => Ok(RData::Ptr(resolve_name(need(0)?, origin)?)),
        "MX" => Ok(RData::Mx {
            preference: need(0)?.parse().map_err(|_| "bad MX preference")?,
            exchange: resolve_name(need(1)?, origin)?,
        }),
        "SOA" => Ok(RData::Soa(Soa {
            mname: resolve_name(need(0)?, origin)?,
            rname: resolve_name(need(1)?, origin)?,
            serial: need(2)?.parse().map_err(|_| "bad SOA serial")?,
            refresh: need(3)?.parse().map_err(|_| "bad SOA refresh")?,
            retry: need(4)?.parse().map_err(|_| "bad SOA retry")?,
            expire: need(5)?.parse().map_err(|_| "bad SOA expire")?,
            minimum: need(6)?.parse().map_err(|_| "bad SOA minimum")?,
        })),
        "TXT" => {
            if tokens.is_empty() {
                return Err("TXT rdata too short".into());
            }
            let segments = tokens
                .iter()
                .map(|t| {
                    t.strip_prefix('"')
                        .and_then(|t| t.strip_suffix('"'))
                        .map(|t| t.as_bytes().to_vec())
                        .ok_or_else(|| "TXT segment must be quoted".to_owned())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RData::Txt(segments))
        }
        other => Err(format!("unsupported record type {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneAnswer;
    use orscope_dns_wire::RecordType;

    const SAMPLE: &str = r#"
; generated cluster fragment
$ORIGIN ucfsealresearch.net.
$TTL 60
@                3600 IN SOA ns1 hostmaster 2018042601 7200 900 1209600 300
@                3600 IN NS  ns1
ns1              3600 IN A   104.238.191.60
@                     IN TXT "v=measurement; k=1"
or000.0000000         IN A   45.76.31.7
or000.0000001         IN A   45.77.100.2
www                   IN CNAME or000.0000000
mail                  IN MX  10 mx.example.com.
host6                 IN AAAA 2001:db8::7
"#;

    #[test]
    fn parses_sample_zone() {
        let zone = parse(SAMPLE).unwrap();
        assert_eq!(zone.origin().to_string(), "ucfsealresearch.net");
        match zone.lookup(
            &"or000.0000001.ucfsealresearch.net".parse().unwrap(),
            RecordType::A,
        ) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(recs[0].rdata().as_a(), Some(Ipv4Addr::new(45, 77, 100, 2)));
                assert_eq!(recs[0].ttl(), 60, "default TTL applied");
            }
            other => panic!("{other:?}"),
        }
        match zone.lookup(
            &"www.ucfsealresearch.net".parse().unwrap(),
            RecordType::Cname,
        ) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(
                    recs[0].rdata().to_string(),
                    "or000.0000000.ucfsealresearch.net"
                );
            }
            other => panic!("{other:?}"),
        }
        // Absolute name in MX stayed absolute.
        match zone.lookup(&"mail.ucfsealresearch.net".parse().unwrap(), RecordType::Mx) {
            ZoneAnswer::Answer(recs) => {
                assert!(recs[0].rdata().to_string().contains("mx.example.com"))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_serialize() {
        let zone = parse(SAMPLE).unwrap();
        let text = serialize(&zone);
        let back = parse(&text).unwrap();
        assert_eq!(back.origin(), zone.origin());
        assert_eq!(back.record_count(), zone.record_count());
        // Spot-check a record surviving the roundtrip.
        for qname in [
            "or000.0000000.ucfsealresearch.net",
            "host6.ucfsealresearch.net",
        ] {
            let q: Name = qname.parse().unwrap();
            let a = format!("{:?}", zone.lookup(&q, RecordType::Any));
            let b = format!("{:?}", back.lookup(&q, RecordType::Any));
            assert_eq!(a, b, "{qname}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let missing_origin = "www IN A 1.2.3.4\n";
        assert_eq!(parse(missing_origin).unwrap_err().line, 1);

        let bad_a = "$ORIGIN x.net.\n@ IN SOA ns1 h 1 2 3 4 5\n@ IN NS ns1\nbad IN A not-an-ip\n";
        let e = parse(bad_a).unwrap_err();
        assert_eq!(e.line, 4);

        let dup_soa = "$ORIGIN x.net.\n@ IN SOA ns1 h 1 2 3 4 5\n@ IN SOA ns1 h 1 2 3 4 5\n";
        assert!(parse(dup_soa).unwrap_err().reason.contains("duplicate SOA"));

        let no_ns = "$ORIGIN x.net.\n@ IN SOA ns1 h 1 2 3 4 5\n";
        assert!(parse(no_ns).unwrap_err().reason.contains("no NS"));
    }

    #[test]
    fn comments_and_quotes() {
        let text = "$ORIGIN x.net.\n@ IN SOA ns1 h 1 2 3 4 5 ; the SOA\n@ IN NS ns1\nt IN TXT \"semi;colon\" ; trailing\n";
        let zone = parse(text).unwrap();
        match zone.lookup(&"t.x.net".parse().unwrap(), RecordType::Txt) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(recs[0].rdata().to_string(), "\"semi;colon\"");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn generated_cluster_fragment_parses() {
        // Generate a small cluster the way the measurement would.
        use crate::scheme::{ground_truth, ProbeLabel};
        let mut text = String::from(
            "$ORIGIN ucfsealresearch.net.\n$TTL 60\n@ IN SOA ns1 hostmaster 1 7200 900 1209600 300\n@ IN NS ns1\n",
        );
        for seq in 0..100 {
            let label = ProbeLabel::new(0, seq);
            let (a, b) = label.labels();
            text.push_str(&format!("{a}.{b} IN A {}\n", ground_truth(label)));
        }
        let zone = parse(&text).unwrap();
        assert_eq!(zone.record_count(), 100);
        let q = ProbeLabel::new(0, 42).qname(&"ucfsealresearch.net".parse().unwrap());
        match zone.lookup(&q, RecordType::A) {
            ZoneAnswer::Answer(recs) => assert_eq!(
                recs[0].rdata().as_a(),
                Some(ground_truth(ProbeLabel::new(0, 42)))
            ),
            other => panic!("{other:?}"),
        }
    }
}
