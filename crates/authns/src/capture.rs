//! The server-side packet log (the tcpdump of Fig. 2).

use std::net::Ipv4Addr;
use std::sync::Arc;

use orscope_netsim::{Datagram, SimTime};
use parking_lot::Mutex;

/// Direction of a captured packet relative to the capturing host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Arrived at the host (Q2 at the authoritative server).
    Inbound,
    /// Sent by the host (R1 at the authoritative server).
    Outbound,
}

/// One captured packet with its virtual timestamp.
#[derive(Debug, Clone)]
pub struct CapturedPacket {
    /// When the packet crossed the capture point.
    pub at: SimTime,
    /// Inbound or outbound.
    pub direction: Direction,
    /// Remote address (source for inbound, destination for outbound).
    pub peer: Ipv4Addr,
    /// Remote port.
    pub peer_port: u16,
    /// Raw UDP payload.
    pub payload: bytes::Bytes,
}

/// A shared, cloneable handle to a capture buffer.
///
/// The campaign creates one handle per capture point, hands clones to the
/// capturing endpoints, and reads the accumulated packets after the
/// simulation drains.
#[derive(Debug, Clone, Default)]
pub struct CaptureHandle {
    inner: Arc<Mutex<Vec<CapturedPacket>>>,
}

impl CaptureHandle {
    /// Creates an empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an inbound datagram at time `at`.
    pub fn record_inbound(&self, at: SimTime, dgram: &Datagram) {
        self.inner.lock().push(CapturedPacket {
            at,
            direction: Direction::Inbound,
            peer: dgram.src,
            peer_port: dgram.src_port,
            payload: dgram.payload.clone(),
        });
    }

    /// Records an outbound datagram at time `at`.
    pub fn record_outbound(&self, at: SimTime, dgram: &Datagram) {
        self.inner.lock().push(CapturedPacket {
            at,
            direction: Direction::Outbound,
            peer: dgram.dst,
            peer_port: dgram.dst_port,
            payload: dgram.payload.clone(),
        });
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Count by direction.
    pub fn count(&self, direction: Direction) -> usize {
        self.inner
            .lock()
            .iter()
            .filter(|p| p.direction == direction)
            .count()
    }

    /// Takes the captured packets, leaving the buffer empty.
    pub fn drain(&self) -> Vec<CapturedPacket> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Clones the captured packets without draining.
    pub fn snapshot(&self) -> Vec<CapturedPacket> {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgram() -> Datagram {
        Datagram::new(
            (Ipv4Addr::new(1, 1, 1, 1), 5353),
            (Ipv4Addr::new(2, 2, 2, 2), 53),
            b"payload".to_vec(),
        )
    }

    #[test]
    fn records_both_directions() {
        let cap = CaptureHandle::new();
        cap.record_inbound(SimTime::from_secs(1), &dgram());
        cap.record_outbound(SimTime::from_secs(2), &dgram());
        assert_eq!(cap.len(), 2);
        assert_eq!(cap.count(Direction::Inbound), 1);
        assert_eq!(cap.count(Direction::Outbound), 1);
        let packets = cap.snapshot();
        assert_eq!(packets[0].peer, Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(packets[1].peer, Ipv4Addr::new(2, 2, 2, 2));
    }

    #[test]
    fn drain_empties_buffer() {
        let cap = CaptureHandle::new();
        cap.record_inbound(SimTime::ZERO, &dgram());
        assert_eq!(cap.drain().len(), 1);
        assert!(cap.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let cap = CaptureHandle::new();
        let clone = cap.clone();
        clone.record_inbound(SimTime::ZERO, &dgram());
        assert_eq!(cap.len(), 1);
    }
}
