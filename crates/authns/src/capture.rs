//! The server-side packet log (the tcpdump of Fig. 2).

use std::net::Ipv4Addr;
use std::sync::Arc;

use orscope_netsim::{Datagram, SimTime};
use parking_lot::Mutex;

/// Direction of a captured packet relative to the capturing host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Arrived at the host (Q2 at the authoritative server).
    Inbound,
    /// Sent by the host (R1 at the authoritative server).
    Outbound,
}

/// One captured packet with its virtual timestamp.
#[derive(Debug, Clone)]
pub struct CapturedPacket {
    /// When the packet crossed the capture point.
    pub at: SimTime,
    /// Inbound or outbound.
    pub direction: Direction,
    /// Remote address (source for inbound, destination for outbound).
    pub peer: Ipv4Addr,
    /// Remote port.
    pub peer_port: u16,
    /// Raw UDP payload.
    pub payload: bytes::Bytes,
}

/// A capture-time consumer of server-side packets (streaming analysis,
/// record bus). When at least one is installed, packets are handed to
/// every sink in installation order instead of buffering.
pub type PacketSink = Box<dyn FnMut(&CapturedPacket) + Send>;

#[derive(Default)]
struct Shared {
    packets: Vec<CapturedPacket>,
    /// Monotonic per-direction counters, maintained whether or not a
    /// sink is installed, so `count` stays O(1) and meaningful in
    /// streaming mode where `packets` never fills.
    inbound: u64,
    outbound: u64,
    /// Streaming sinks; empty means buffer into `packets`.
    sinks: Vec<PacketSink>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("packets", &self.packets)
            .field("inbound", &self.inbound)
            .field("outbound", &self.outbound)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Shared {
    fn record(&mut self, packet: CapturedPacket) {
        match packet.direction {
            Direction::Inbound => self.inbound += 1,
            Direction::Outbound => self.outbound += 1,
        }
        if self.sinks.is_empty() {
            self.packets.push(packet);
            return;
        }
        for sink in &mut self.sinks {
            sink(&packet);
        }
    }
}

/// A shared, cloneable handle to a capture buffer.
///
/// The campaign creates one handle per capture point, hands clones to the
/// capturing endpoints, and reads the accumulated packets after the
/// simulation drains.
#[derive(Debug, Clone, Default)]
pub struct CaptureHandle {
    inner: Arc<Mutex<Shared>>,
}

impl CaptureHandle {
    /// Creates an empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an inbound datagram at time `at`.
    pub fn record_inbound(&self, at: SimTime, dgram: &Datagram) {
        self.inner.lock().record(CapturedPacket {
            at,
            direction: Direction::Inbound,
            peer: dgram.src,
            peer_port: dgram.src_port,
            payload: dgram.payload.clone(),
        });
    }

    /// Records an outbound datagram at time `at`.
    pub fn record_outbound(&self, at: SimTime, dgram: &Datagram) {
        self.inner.lock().record(CapturedPacket {
            at,
            direction: Direction::Outbound,
            peer: dgram.dst,
            peer_port: dgram.dst_port,
            payload: dgram.payload.clone(),
        });
    }

    /// Number of buffered packets (zero in streaming mode, where
    /// packets are consumed at capture time).
    pub fn len(&self) -> usize {
        self.inner.lock().packets.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().packets.is_empty()
    }

    /// Packets seen in `direction` since creation. O(1): maintained as
    /// a counter, unaffected by [`CaptureHandle::drain`] or a sink.
    pub fn count(&self, direction: Direction) -> usize {
        let shared = self.inner.lock();
        let n = match direction {
            Direction::Inbound => shared.inbound,
            Direction::Outbound => shared.outbound,
        };
        n as usize
    }

    /// Takes the buffered packets, leaving the buffer empty.
    pub fn drain(&self) -> Vec<CapturedPacket> {
        std::mem::take(&mut self.inner.lock().packets)
    }

    /// Clones the buffered packets without draining.
    pub fn snapshot(&self) -> Vec<CapturedPacket> {
        self.inner.lock().packets.clone()
    }

    /// Installs an additional streaming sink: every packet from now on
    /// is handed to each installed sink (in installation order) at
    /// capture time instead of buffering, so payloads drop as soon as
    /// the last sink returns. Install before the simulation starts;
    /// already-buffered packets stay buffered.
    pub fn add_sink(&self, sink: impl FnMut(&CapturedPacket) + Send + 'static) {
        self.inner.lock().sinks.push(Box::new(sink));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgram() -> Datagram {
        Datagram::new(
            (Ipv4Addr::new(1, 1, 1, 1), 5353),
            (Ipv4Addr::new(2, 2, 2, 2), 53),
            b"payload".to_vec(),
        )
    }

    #[test]
    fn records_both_directions() {
        let cap = CaptureHandle::new();
        cap.record_inbound(SimTime::from_secs(1), &dgram());
        cap.record_outbound(SimTime::from_secs(2), &dgram());
        assert_eq!(cap.len(), 2);
        assert_eq!(cap.count(Direction::Inbound), 1);
        assert_eq!(cap.count(Direction::Outbound), 1);
        let packets = cap.snapshot();
        assert_eq!(packets[0].peer, Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(packets[1].peer, Ipv4Addr::new(2, 2, 2, 2));
    }

    #[test]
    fn drain_empties_buffer() {
        let cap = CaptureHandle::new();
        cap.record_inbound(SimTime::ZERO, &dgram());
        assert_eq!(cap.drain().len(), 1);
        assert!(cap.is_empty());
        assert_eq!(
            cap.count(Direction::Inbound),
            1,
            "direction counters survive drain"
        );
    }

    #[test]
    fn clones_share_state() {
        let cap = CaptureHandle::new();
        let clone = cap.clone();
        clone.record_inbound(SimTime::ZERO, &dgram());
        assert_eq!(cap.len(), 1);
    }

    #[test]
    fn sink_consumes_instead_of_buffering() {
        let cap = CaptureHandle::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sunk = seen.clone();
        cap.add_sink(move |p| sunk.lock().push((p.direction, p.peer)));
        cap.record_inbound(SimTime::ZERO, &dgram());
        cap.record_outbound(SimTime::from_secs(1), &dgram());
        assert!(cap.is_empty(), "sink mode must not buffer");
        assert_eq!(cap.count(Direction::Inbound), 1);
        assert_eq!(cap.count(Direction::Outbound), 1);
        assert_eq!(seen.lock().len(), 2);
    }

    #[test]
    fn multiple_sinks_all_observe_every_packet() {
        let cap = CaptureHandle::new();
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (ca, cb) = (a.clone(), b.clone());
        cap.add_sink(move |_| *ca.lock() += 1);
        cap.add_sink(move |_| *cb.lock() += 1);
        cap.record_inbound(SimTime::ZERO, &dgram());
        cap.record_outbound(SimTime::from_secs(1), &dgram());
        assert!(cap.is_empty(), "sink mode must not buffer");
        assert_eq!(*a.lock(), 2);
        assert_eq!(*b.lock(), 2);
    }
}
