//! Zone data and RFC 1035 lookup semantics.

use std::collections::BTreeMap;

use orscope_dns_wire::rdata::Soa;
use orscope_dns_wire::{Name, RData, Record, RecordType};

/// The result of a zone lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// The name exists and has records of the requested type.
    Answer(Vec<Record>),
    /// The name exists but has no records of the requested type;
    /// the SOA goes in the authority section for negative caching.
    NoData(Record),
    /// The name does not exist in the zone (rcode NXDomain + SOA).
    NxDomain(Record),
    /// The name is not within this zone at all.
    OutOfZone,
}

/// An authoritative zone: origin, SOA, NS set, and explicit records.
///
/// # Example
///
/// ```
/// use orscope_authns::{Zone, ZoneAnswer};
/// use orscope_dns_wire::{Name, RData, RecordType};
/// use std::net::Ipv4Addr;
///
/// let origin: Name = "example.net".parse()?;
/// let mut zone = Zone::new(origin.clone(), "ns1.example.net".parse()?);
/// zone.add_a("www.example.net".parse()?, Ipv4Addr::new(1, 2, 3, 4));
/// match zone.lookup(&"www.example.net".parse()?, RecordType::A) {
///     ZoneAnswer::Answer(recs) => assert_eq!(recs.len(), 1),
///     other => panic!("{other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    soa: Record,
    ns: Vec<Record>,
    /// Records keyed by owner name; values grouped in insertion order.
    records: BTreeMap<Name, Vec<Record>>,
    /// Default TTL for added records.
    default_ttl: u32,
}

impl Zone {
    /// Creates a zone with a standard SOA and a single NS record.
    pub fn new(origin: Name, primary_ns: Name) -> Self {
        let soa = Record::in_class(
            origin.clone(),
            3600,
            RData::Soa(Soa {
                mname: primary_ns.clone(),
                rname: origin
                    .prepend("hostmaster")
                    .unwrap_or_else(|_| origin.clone()),
                serial: 2018042601, // zone built for the 2018/04/26 scan
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            }),
        );
        let ns = vec![Record::in_class(
            origin.clone(),
            3600,
            RData::Ns(primary_ns),
        )];
        Self {
            origin,
            soa,
            ns,
            records: BTreeMap::new(),
            default_ttl: 60,
        }
    }

    /// Creates a zone from an explicit SOA payload (zone-file loading).
    pub fn new_with_soa(origin: Name, soa: Soa) -> Self {
        Self {
            soa: Record::in_class(origin.clone(), 3600, RData::Soa(soa)),
            ns: Vec::new(),
            origin,
            records: BTreeMap::new(),
            default_ttl: 60,
        }
    }

    /// Adds an NS record for `owner` pointing at `target`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is outside the zone.
    pub fn add_ns(&mut self, owner: Name, ttl: u32, target: Name) -> &mut Self {
        assert!(
            owner.is_subdomain_of(&self.origin),
            "{owner} is outside zone {}",
            self.origin
        );
        self.ns
            .push(Record::in_class(owner, ttl, RData::Ns(target)));
        self
    }

    /// Iterates the explicit (non-SOA, non-NS) records.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The zone's SOA record.
    pub fn soa(&self) -> &Record {
        &self.soa
    }

    /// The zone's NS records.
    pub fn ns_records(&self) -> &[Record] {
        &self.ns
    }

    /// Sets the TTL used by the `add_*` helpers.
    pub fn set_default_ttl(&mut self, ttl: u32) -> &mut Self {
        self.default_ttl = ttl;
        self
    }

    /// Adds an arbitrary record.
    ///
    /// # Panics
    ///
    /// Panics if the owner name is outside the zone (a zone-file bug).
    pub fn add_record(&mut self, record: Record) -> &mut Self {
        assert!(
            record.name().is_subdomain_of(&self.origin),
            "{} is outside zone {}",
            record.name(),
            self.origin
        );
        self.records
            .entry(record.name().clone())
            .or_default()
            .push(record);
        self
    }

    /// Adds an A record with the default TTL.
    pub fn add_a(&mut self, name: Name, addr: std::net::Ipv4Addr) -> &mut Self {
        let ttl = self.default_ttl;
        self.add_record(Record::in_class(name, ttl, RData::A(addr)))
    }

    /// Adds a TXT record with the default TTL (apex TXT bulk is what makes
    /// ANY queries amplify).
    pub fn add_txt(&mut self, name: Name, text: &str) -> &mut Self {
        let ttl = self.default_ttl;
        self.add_record(Record::in_class(
            name,
            ttl,
            RData::Txt(vec![text.as_bytes().to_vec()]),
        ))
    }

    /// Number of explicit records (across all names).
    pub fn record_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Looks up `qname`/`qtype` with authoritative semantics.
    pub fn lookup(&self, qname: &Name, qtype: RecordType) -> ZoneAnswer {
        if !qname.is_subdomain_of(&self.origin) {
            return ZoneAnswer::OutOfZone;
        }
        // Apex built-ins: SOA and NS.
        let mut found: Vec<Record> = Vec::new();
        let at_apex = qname == &self.origin;
        if at_apex {
            if matches!(qtype, RecordType::Soa | RecordType::Any) {
                found.push(self.soa.clone());
            }
            if matches!(qtype, RecordType::Ns | RecordType::Any) {
                found.extend(self.ns.iter().cloned());
            }
        }
        let explicit = self.records.get(qname);
        if let Some(records) = explicit {
            for rec in records {
                if qtype == RecordType::Any || rec.rtype() == qtype {
                    found.push(rec.clone());
                }
            }
        }
        if !found.is_empty() {
            return ZoneAnswer::Answer(found);
        }
        // RFC 1034 section 4.3.2 step 3a: a CNAME at the node answers
        // queries for any other type with the alias record itself.
        if qtype != RecordType::Cname {
            if let Some(records) = explicit {
                if let Some(cname) = records.iter().find(|r| r.rtype() == RecordType::Cname) {
                    return ZoneAnswer::Answer(vec![cname.clone()]);
                }
            }
        }
        if at_apex || explicit.is_some() {
            return ZoneAnswer::NoData(self.soa.clone());
        }
        ZoneAnswer::NxDomain(self.soa.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn test_zone() -> Zone {
        let mut z = Zone::new(name("ucfsealresearch.net"), name("ns1.ucfsealresearch.net"));
        z.add_a(name("ns1.ucfsealresearch.net"), Ipv4Addr::new(45, 77, 1, 1));
        z.add_a(name("www.ucfsealresearch.net"), Ipv4Addr::new(45, 77, 1, 2));
        z.add_txt(name("ucfsealresearch.net"), "v=spf1 -all");
        z
    }

    #[test]
    fn answer_for_existing_name() {
        let z = test_zone();
        match z.lookup(&name("www.ucfsealresearch.net"), RecordType::A) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(recs.len(), 1);
                assert_eq!(recs[0].rdata().as_a(), Some(Ipv4Addr::new(45, 77, 1, 2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nodata_for_wrong_type() {
        let z = test_zone();
        match z.lookup(&name("www.ucfsealresearch.net"), RecordType::Mx) {
            ZoneAnswer::NoData(soa) => assert_eq!(soa.rtype(), RecordType::Soa),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let z = test_zone();
        match z.lookup(&name("missing.ucfsealresearch.net"), RecordType::A) {
            ZoneAnswer::NxDomain(soa) => assert_eq!(soa.rtype(), RecordType::Soa),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_zone() {
        let z = test_zone();
        assert_eq!(
            z.lookup(&name("example.com"), RecordType::A),
            ZoneAnswer::OutOfZone
        );
    }

    #[test]
    fn apex_soa_and_ns() {
        let z = test_zone();
        match z.lookup(&name("ucfsealresearch.net"), RecordType::Soa) {
            ZoneAnswer::Answer(recs) => assert_eq!(recs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        match z.lookup(&name("ucfsealresearch.net"), RecordType::Ns) {
            ZoneAnswer::Answer(recs) => assert_eq!(recs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn any_collects_everything_at_apex() {
        let z = test_zone();
        match z.lookup(&name("ucfsealresearch.net"), RecordType::Any) {
            ZoneAnswer::Answer(recs) => {
                // SOA + NS + TXT.
                assert_eq!(recs.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn adding_foreign_record_panics() {
        let mut z = test_zone();
        z.add_a(name("www.example.com"), Ipv4Addr::LOCALHOST);
    }

    #[test]
    fn case_insensitive_lookup() {
        let z = test_zone();
        assert!(matches!(
            z.lookup(&name("WWW.UCFSEALRESEARCH.NET"), RecordType::A),
            ZoneAnswer::Answer(_)
        ));
    }

    #[test]
    fn record_count() {
        assert_eq!(test_zone().record_count(), 3);
    }
}
