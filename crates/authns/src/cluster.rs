//! The two-tier zone cluster of Fig. 3.
//!
//! The paper's authoritative server could reliably hold about five
//! million zone entries at once, so the 3.7-billion-target probe space is
//! cut into numbered clusters of five million subdomains each; when a
//! cluster is exhausted the server loads the next one (about one minute
//! of load time per cluster). Subdomain reuse reduced the real scan from
//! a theoretical 800 clusters to 4.
//!
//! [`ClusterZone`] reproduces those semantics without materializing five
//! million `Record`s: membership of `or{ccc}.{sssssss}` in the active
//! cluster is decided from the parsed label, and the A answer is the
//! deterministic [`ground_truth`] address the zone files would contain.

use std::time::Duration;

use orscope_dns_wire::{Name, RData, Record, RecordType};

use crate::scheme::{ground_truth, ProbeLabel, CLUSTER_CAPACITY};
use crate::zone::{Zone, ZoneAnswer};

/// Time the paper reports for loading one five-million-entry cluster.
pub const CLUSTER_LOAD_TIME: Duration = Duration::from_secs(60);

/// A [`Zone`] wrapper that additionally serves the active probe cluster.
#[derive(Debug, Clone)]
pub struct ClusterZone {
    /// Static zone content (apex SOA/NS/TXT, ns1 glue, ...).
    zone: Zone,
    /// The currently loaded cluster, if any.
    active_cluster: Option<u32>,
    /// How many subdomains of the active cluster are actually loaded
    /// (the final cluster of a scan may be partial).
    loaded: u64,
    /// The previously active cluster, kept serving while in-flight
    /// resolutions for it drain (zones overlap during a reload).
    previous: Option<(u32, u64)>,
    /// TTL served for probe subdomains.
    probe_ttl: u32,
    /// Total clusters loaded over the zone's lifetime.
    clusters_loaded: u32,
}

impl ClusterZone {
    /// Wraps `zone`, initially with no cluster loaded.
    pub fn new(zone: Zone) -> Self {
        Self {
            zone,
            active_cluster: None,
            loaded: 0,
            previous: None,
            probe_ttl: 60,
            clusters_loaded: 0,
        }
    }

    /// The static zone content.
    pub fn zone(&self) -> &Zone {
        &self.zone
    }

    /// Mutable access to the static zone content.
    pub fn zone_mut(&mut self) -> &mut Zone {
        &mut self.zone
    }

    /// The active cluster number, if one is loaded.
    pub fn active_cluster(&self) -> Option<u32> {
        self.active_cluster
    }

    /// Total clusters loaded so far (the paper's scan needed only 4).
    pub fn clusters_loaded(&self) -> u32 {
        self.clusters_loaded
    }

    /// Loads cluster `cluster` with `count` subdomains (capped at
    /// [`CLUSTER_CAPACITY`]), replacing the previous cluster.
    ///
    /// Returns the simulated load duration to charge against the scan
    /// clock (one minute per full cluster, pro-rated for partials).
    pub fn load_cluster(&mut self, cluster: u32, count: u64) -> Duration {
        let count = count.min(CLUSTER_CAPACITY);
        self.previous = self.active_cluster.map(|c| (c, self.loaded));
        self.active_cluster = Some(cluster);
        self.loaded = count;
        self.clusters_loaded += 1;
        Duration::from_secs_f64(
            CLUSTER_LOAD_TIME.as_secs_f64() * count as f64 / CLUSTER_CAPACITY as f64,
        )
    }

    /// Looks up a name: probe subdomains of the active cluster answer
    /// with their ground-truth address; everything else defers to the
    /// static zone (which yields NXDomain for unloaded probe names,
    /// exactly as a real zone file would).
    pub fn lookup(&self, qname: &Name, qtype: RecordType) -> ZoneAnswer {
        if let Some(label) = ProbeLabel::parse(qname, self.zone.origin()) {
            let in_active = Some(label.cluster) == self.active_cluster && label.seq < self.loaded;
            let in_previous = self
                .previous
                .is_some_and(|(c, n)| c == label.cluster && label.seq < n);
            if in_active || in_previous {
                if matches!(qtype, RecordType::A | RecordType::Any) {
                    return ZoneAnswer::Answer(vec![Record::in_class(
                        qname.clone(),
                        self.probe_ttl,
                        RData::A(ground_truth(label)),
                    )]);
                }
                return ZoneAnswer::NoData(self.zone.soa().clone());
            }
            // A probe name outside the loaded cluster does not exist.
            return ZoneAnswer::NxDomain(self.zone.soa().clone());
        }
        self.zone.lookup(qname, qtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_zone() -> ClusterZone {
        let zone = Zone::new(
            "ucfsealresearch.net".parse().unwrap(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
        );
        ClusterZone::new(zone)
    }

    fn qname(cluster: u32, seq: u64) -> Name {
        ProbeLabel::new(cluster, seq).qname(&"ucfsealresearch.net".parse().unwrap())
    }

    #[test]
    fn unloaded_cluster_yields_nxdomain() {
        let cz = cluster_zone();
        assert!(matches!(
            cz.lookup(&qname(0, 1), RecordType::A),
            ZoneAnswer::NxDomain(_)
        ));
    }

    #[test]
    fn loaded_cluster_answers_ground_truth() {
        let mut cz = cluster_zone();
        cz.load_cluster(3, 1000);
        match cz.lookup(&qname(3, 999), RecordType::A) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(
                    recs[0].rdata().as_a(),
                    Some(ground_truth(ProbeLabel::new(3, 999)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequence_beyond_loaded_count_is_nxdomain() {
        let mut cz = cluster_zone();
        cz.load_cluster(3, 1000);
        assert!(matches!(
            cz.lookup(&qname(3, 1000), RecordType::A),
            ZoneAnswer::NxDomain(_)
        ));
    }

    #[test]
    fn other_cluster_is_nxdomain() {
        let mut cz = cluster_zone();
        cz.load_cluster(3, 1000);
        assert!(matches!(
            cz.lookup(&qname(2, 5), RecordType::A),
            ZoneAnswer::NxDomain(_)
        ));
    }

    #[test]
    fn rollover_keeps_previous_cluster_until_next_roll() {
        let mut cz = cluster_zone();
        cz.load_cluster(0, 100);
        cz.load_cluster(1, 100);
        assert_eq!(cz.active_cluster(), Some(1));
        assert_eq!(cz.clusters_loaded(), 2);
        // Cluster 0 still drains while cluster 1 is active...
        assert!(matches!(
            cz.lookup(&qname(0, 5), RecordType::A),
            ZoneAnswer::Answer(_)
        ));
        assert!(matches!(
            cz.lookup(&qname(1, 5), RecordType::A),
            ZoneAnswer::Answer(_)
        ));
        // ...but is dropped once cluster 2 loads.
        cz.load_cluster(2, 100);
        assert!(matches!(
            cz.lookup(&qname(0, 5), RecordType::A),
            ZoneAnswer::NxDomain(_)
        ));
        assert!(matches!(
            cz.lookup(&qname(1, 5), RecordType::A),
            ZoneAnswer::Answer(_)
        ));
    }

    #[test]
    fn load_time_scales_with_count() {
        let mut cz = cluster_zone();
        let full = cz.load_cluster(0, CLUSTER_CAPACITY);
        assert_eq!(full, CLUSTER_LOAD_TIME);
        let half = cz.load_cluster(1, CLUSTER_CAPACITY / 2);
        assert_eq!(half, CLUSTER_LOAD_TIME / 2);
    }

    #[test]
    fn mx_on_probe_name_is_nodata() {
        let mut cz = cluster_zone();
        cz.load_cluster(0, 10);
        assert!(matches!(
            cz.lookup(&qname(0, 5), RecordType::Mx),
            ZoneAnswer::NoData(_)
        ));
    }

    #[test]
    fn static_zone_still_served() {
        let mut cz = cluster_zone();
        cz.zone_mut().add_a(
            "ns1.ucfsealresearch.net".parse().unwrap(),
            "45.77.1.1".parse().unwrap(),
        );
        cz.load_cluster(0, 10);
        assert!(matches!(
            cz.lookup(&"ns1.ucfsealresearch.net".parse().unwrap(), RecordType::A),
            ZoneAnswer::Answer(_)
        ));
    }
}
