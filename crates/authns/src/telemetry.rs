//! Telemetry wiring for the authoritative server.

use orscope_dns_wire::{Rcode, RecordType};
use orscope_telemetry::{Collector, Counter, Scope};

/// Pre-resolved metric handles for one [`crate::AuthoritativeServer`].
/// The default bundle is fully disabled.
///
/// Everything here is [`Scope::Global`]: which queries reach the
/// authoritative server (and with what rcode they are answered) is
/// per-flow deterministic.
#[derive(Clone, Debug, Default)]
pub struct AuthTelemetry {
    /// `auth.queries` — queries answered (Q2 in the paper's notation).
    pub queries: Counter,
    /// `auth.qtype_a` — A-type questions.
    pub qtype_a: Counter,
    /// `auth.qtype_any` — ANY questions (the amplification vector).
    pub qtype_any: Counter,
    /// `auth.qtype_txt` — TXT questions.
    pub qtype_txt: Counter,
    /// `auth.qtype_other` — every other (or absent) question type.
    pub qtype_other: Counter,
    /// `auth.rcode_noerror` — responses with rcode 0.
    pub rcode_noerror: Counter,
    /// `auth.rcode_nxdomain` — NXDomain responses.
    pub rcode_nxdomain: Counter,
    /// `auth.rcode_refused` — Refused responses (out-of-zone queries).
    pub rcode_refused: Counter,
    /// `auth.rcode_formerr` — FormErr responses (broken queries).
    pub rcode_formerr: Counter,
    /// `auth.rcode_other` — any other rcode.
    pub rcode_other: Counter,
}

impl AuthTelemetry {
    /// Resolves every handle against `collector`.
    pub fn from_collector(collector: &Collector) -> Self {
        Self {
            queries: collector.counter(Scope::Global, "auth.queries"),
            qtype_a: collector.counter(Scope::Global, "auth.qtype_a"),
            qtype_any: collector.counter(Scope::Global, "auth.qtype_any"),
            qtype_txt: collector.counter(Scope::Global, "auth.qtype_txt"),
            qtype_other: collector.counter(Scope::Global, "auth.qtype_other"),
            rcode_noerror: collector.counter(Scope::Global, "auth.rcode_noerror"),
            rcode_nxdomain: collector.counter(Scope::Global, "auth.rcode_nxdomain"),
            rcode_refused: collector.counter(Scope::Global, "auth.rcode_refused"),
            rcode_formerr: collector.counter(Scope::Global, "auth.rcode_formerr"),
            rcode_other: collector.counter(Scope::Global, "auth.rcode_other"),
        }
    }

    /// Records one answered query: the question type (None when the
    /// query carried no readable question) and the response rcode.
    pub fn record(&self, qtype: Option<RecordType>, rcode: Rcode) {
        self.queries.inc();
        match qtype {
            Some(RecordType::A) => self.qtype_a.inc(),
            Some(RecordType::Any) => self.qtype_any.inc(),
            Some(RecordType::Txt) => self.qtype_txt.inc(),
            _ => self.qtype_other.inc(),
        }
        match rcode {
            Rcode::NoError => self.rcode_noerror.inc(),
            Rcode::NXDomain => self.rcode_nxdomain.inc(),
            Rcode::Refused => self.rcode_refused.inc(),
            Rcode::FormErr => self.rcode_formerr.inc(),
            _ => self.rcode_other.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_qtype_and_rcode() {
        let collector = Collector::new();
        let telemetry = AuthTelemetry::from_collector(&collector);
        telemetry.record(Some(RecordType::A), Rcode::NoError);
        telemetry.record(Some(RecordType::Any), Rcode::NXDomain);
        telemetry.record(None, Rcode::FormErr);
        let snapshot = collector.snapshot();
        assert_eq!(snapshot.counters["auth.queries"].value, 3);
        assert_eq!(snapshot.counters["auth.qtype_a"].value, 1);
        assert_eq!(snapshot.counters["auth.qtype_any"].value, 1);
        assert_eq!(snapshot.counters["auth.qtype_other"].value, 1);
        assert_eq!(snapshot.counters["auth.rcode_formerr"].value, 1);
    }
}
