#![warn(missing_docs)]
//! Name servers under our control: the authoritative server for the
//! measurement domain, plus simulated root and TLD servers.
//!
//! The paper's methodology needs a controlled last hop: every probe query
//! is for a unique subdomain of `ucfsealresearch.net`, and the
//! authoritative server for that zone both answers the queries (R1) and
//! captures the incoming resolver traffic (Q2) — the tcpdump side of
//! Fig. 2. Because our resolvers really recurse, this crate also provides
//! the root and `.net` TLD servers they walk through (Fig. 1 steps 2-5).
//!
//! Modules:
//!
//! - [`scheme`]: the two-tier probe subdomain naming scheme of Fig. 3
//!   (`or{ccc}.{sssssss}.<zone>`) and the per-subdomain ground-truth
//!   addresses answers are validated against,
//! - [`zone`]: zone data and lookup semantics (answer, NXDomain, NoData),
//! - [`cluster`]: the 5-million-entry zone cluster with rollover,
//! - [`server`]: the [`AuthoritativeServer`] endpoint with Q2/R1 capture,
//! - [`hierarchy`]: [`RootServer`] and [`TldServer`] delegation endpoints,
//! - [`capture`]: the shared server-side packet log,
//! - [`zonefile`]: BIND-style master-file parsing and serialization
//!   (the format the real scan's generated clusters were loaded from).

pub mod capture;
pub mod cluster;
pub mod hierarchy;
pub mod scheme;
pub mod server;
pub mod telemetry;
pub mod zone;
pub mod zonefile;

pub use capture::{CaptureHandle, CapturedPacket, Direction, PacketSink};
pub use cluster::ClusterZone;
pub use hierarchy::{RootServer, TldServer};
pub use scheme::{ground_truth, ProbeLabel};
pub use server::AuthoritativeServer;
pub use telemetry::AuthTelemetry;
pub use zone::{Zone, ZoneAnswer};
