//! The probe subdomain naming scheme of Fig. 3 and the ground truth.
//!
//! Every probed IP address receives a query for a unique subdomain
//! `or{ccc}.{sssssss}.<zone>`, where `ccc` is the three-digit cluster
//! number and `sssssss` the seven-digit sequence number within the
//! cluster. Uniqueness defeats resolver caches and lets the analysis
//! group Q1/Q2/R1/R2 by qname instead of the 16-bit DNS ID (which cannot
//! disambiguate 100k packets per second).

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use orscope_dns_wire::Name;

/// Subdomains per cluster: the paper's authoritative server could hold
/// about five million zone entries at a time.
pub const CLUSTER_CAPACITY: u64 = 5_000_000;

/// A parsed probe label: cluster number and in-cluster sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeLabel {
    /// Cluster number (`ccc`, 0..=999).
    pub cluster: u32,
    /// Sequence within the cluster (`sssssss`, 0..CLUSTER_CAPACITY).
    pub seq: u64,
}

impl ProbeLabel {
    /// Creates a label, validating the ranges.
    ///
    /// # Panics
    ///
    /// Panics if `cluster > 999` or `seq >= CLUSTER_CAPACITY` — both are
    /// generator bugs, not runtime conditions.
    pub fn new(cluster: u32, seq: u64) -> Self {
        assert!(cluster <= 999, "cluster {cluster} out of range");
        assert!(seq < CLUSTER_CAPACITY, "sequence {seq} out of range");
        Self { cluster, seq }
    }

    /// The two leading labels, e.g. `("or007", "0001234")`.
    pub fn labels(&self) -> (String, String) {
        (format!("or{:03}", self.cluster), format!("{:07}", self.seq))
    }

    /// The full qname under `zone`, e.g. `or007.0001234.<zone>`.
    pub fn qname(&self, zone: &Name) -> Name {
        let (a, b) = self.labels();
        zone.prepend(&b)
            .and_then(|n| n.prepend(&a))
            .expect("probe labels are always valid")
    }

    /// Parses a probe qname back into its label, if `qname` is a
    /// well-formed probe subdomain directly under `zone`.
    pub fn parse(qname: &Name, zone: &Name) -> Option<ProbeLabel> {
        if !qname.is_subdomain_of(zone) || qname.label_count() != zone.label_count() + 2 {
            return None;
        }
        let mut labels = qname.labels();
        // DNS names are case-insensitive (and DNS 0x20 clients scramble
        // case deliberately): normalize before parsing.
        let first = std::str::from_utf8(labels.next()?)
            .ok()?
            .to_ascii_lowercase();
        let second = std::str::from_utf8(labels.next()?)
            .ok()?
            .to_ascii_lowercase();
        let cluster_digits = first.strip_prefix("or")?;
        if cluster_digits.len() != 3 || second.len() != 7 {
            return None;
        }
        let cluster = u32::from_str(cluster_digits).ok()?;
        let seq = u64::from_str(&second).ok()?;
        if seq >= CLUSTER_CAPACITY {
            return None;
        }
        Some(ProbeLabel { cluster, seq })
    }
}

impl fmt::Display for ProbeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.labels();
        write!(f, "{a}.{b}")
    }
}

/// The ground-truth A record for a probe subdomain.
///
/// The paper's zone files assign each subdomain an address; correctness of
/// an open resolver's answer (Table III) is judged against this value. We
/// derive it deterministically from the label so the authoritative server
/// need not materialize five million records: addresses land in
/// 45.76.0.0/15 (the hosting range our simulated Vultr instance lives in),
/// which never collides with the manipulated answers resolvers inject.
pub fn ground_truth(label: ProbeLabel) -> Ipv4Addr {
    let mut x = (label.cluster as u64) << 40 | label.seq;
    // SplitMix-style mixing.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // 45.76.0.0/15: fix the top 15 bits, scatter the remaining 17.
    let base = u32::from(Ipv4Addr::new(45, 76, 0, 0));
    Ipv4Addr::from(base | (x as u32 & 0x0001_FFFF))
}

/// Whether `addr` lies in the ground-truth range (45.76.0.0/15). Used by
/// the classifier as a fast plausibility filter.
pub fn in_ground_truth_range(addr: Ipv4Addr) -> bool {
    u32::from(addr) >> 17 == u32::from(Ipv4Addr::new(45, 76, 0, 0)) >> 17
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> Name {
        "ucfsealresearch.net".parse().unwrap()
    }

    #[test]
    fn qname_formatting_matches_figure_3() {
        let label = ProbeLabel::new(0, 1);
        assert_eq!(
            label.qname(&zone()).to_string(),
            "or000.0000001.ucfsealresearch.net"
        );
        let label = ProbeLabel::new(999, 4_999_999);
        assert_eq!(
            label.qname(&zone()).to_string(),
            "or999.4999999.ucfsealresearch.net"
        );
    }

    #[test]
    fn parse_roundtrip() {
        for (cluster, seq) in [(0u32, 0u64), (3, 42), (999, 4_999_999)] {
            let label = ProbeLabel::new(cluster, seq);
            let qname = label.qname(&zone());
            assert_eq!(ProbeLabel::parse(&qname, &zone()), Some(label));
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        // DNS 0x20 clients send scrambled case; the zone must still
        // recognize its own subdomains.
        let name: Name = "oR007.0000123.UcFsEaLreSEARCH.net".parse().unwrap();
        assert_eq!(
            ProbeLabel::parse(&name, &zone()),
            Some(ProbeLabel::new(7, 123))
        );
    }

    #[test]
    fn parse_rejects_foreign_names() {
        let z = zone();
        for bad in [
            "www.ucfsealresearch.net",
            "or000.ucfsealresearch.net",
            "or00.0000001.ucfsealresearch.net",
            "or000.000001.ucfsealresearch.net",
            "xx000.0000001.ucfsealresearch.net",
            "or000.0000001.example.net",
            "deep.or000.0000001.ucfsealresearch.net",
            "or000.9999999.ucfsealresearch.net", // seq >= capacity
        ] {
            let name: Name = bad.parse().unwrap();
            assert_eq!(ProbeLabel::parse(&name, &z), None, "{bad}");
        }
    }

    #[test]
    fn ground_truth_is_deterministic_and_in_range() {
        let a = ground_truth(ProbeLabel::new(1, 77));
        let b = ground_truth(ProbeLabel::new(1, 77));
        assert_eq!(a, b);
        assert!(in_ground_truth_range(a));
        assert!(!in_ground_truth_range(Ipv4Addr::new(208, 91, 197, 91)));
        assert!(!in_ground_truth_range(Ipv4Addr::new(192, 168, 1, 1)));
    }

    #[test]
    fn ground_truth_spreads_across_addresses() {
        let unique: std::collections::HashSet<Ipv4Addr> = (0..1000)
            .map(|seq| ground_truth(ProbeLabel::new(0, seq)))
            .collect();
        assert!(unique.len() > 990, "only {} unique addresses", unique.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_cluster_panics() {
        let _ = ProbeLabel::new(1000, 0);
    }

    #[test]
    fn display() {
        assert_eq!(ProbeLabel::new(7, 123).to_string(), "or007.0000123");
    }
}
