//! The authoritative name server endpoint.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

use orscope_dns_wire::{Message, Rcode};
use orscope_netsim::{Context, Datagram, Endpoint, SimTime};

use crate::capture::CaptureHandle;
use crate::cluster::ClusterZone;
use crate::telemetry::AuthTelemetry;
use crate::zone::ZoneAnswer;

/// Response-rate-limiting configuration (BIND-style RRL): at most
/// `max_responses` per client address per `window`, with excess answers
/// dropped. The standard mitigation for the amplification abuse of
/// section II-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrlConfig {
    /// Sliding-window length.
    pub window: Duration,
    /// Responses allowed per client within a window.
    pub max_responses: u32,
}

impl Default for RrlConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_secs(1),
            max_responses: 10,
        }
    }
}

/// The authoritative server for the measurement zone.
///
/// Mirrors the paper's BIND 9.9.4 instance on Vultr: it answers queries
/// for `ucfsealresearch.net` subdomains (R1) and captures every inbound
/// query (Q2) and outbound response through its [`CaptureHandle`] — the
/// tcpdump vantage point of Fig. 2.
#[derive(Debug)]
pub struct AuthoritativeServer {
    zone: ClusterZone,
    capture: CaptureHandle,
    queries_served: u64,
    /// When set, a query for the cluster after the active one triggers a
    /// rollover (models the operator loading the next zone file as the
    /// prober advances). Load time is accumulated in `load_time_secs`.
    auto_advance: bool,
    /// Cluster size used for auto-advanced loads.
    auto_cluster_size: u64,
    /// Accumulated simulated zone-load time (charged against the scan
    /// wall clock when reporting Table II).
    load_time_secs: f64,
    /// Response rate limiting, off by default (the paper's server — like
    /// most of the abused population — did not deploy it).
    rrl: Option<RrlConfig>,
    /// Per-client RRL state: (window start, responses in window).
    rrl_state: HashMap<Ipv4Addr, (SimTime, u32)>,
    /// Responses suppressed by RRL.
    rrl_dropped: u64,
    telemetry: AuthTelemetry,
    /// Reusable wire-encoding buffer; steady-state responses encode
    /// without allocating.
    scratch: Vec<u8>,
}

impl AuthoritativeServer {
    /// Creates a server over `zone` that logs through `capture`.
    pub fn new(zone: ClusterZone, capture: CaptureHandle) -> Self {
        Self {
            zone,
            capture,
            queries_served: 0,
            auto_advance: false,
            auto_cluster_size: crate::scheme::CLUSTER_CAPACITY,
            load_time_secs: 0.0,
            rrl: None,
            rrl_state: HashMap::new(),
            rrl_dropped: 0,
            telemetry: AuthTelemetry::default(),
            scratch: Vec::with_capacity(512),
        }
    }

    /// Enables BIND-style response rate limiting.
    pub fn enable_rrl(&mut self, config: RrlConfig) -> &mut Self {
        self.rrl = Some(config);
        self
    }

    /// Attaches pre-resolved telemetry handles (default: disabled).
    pub fn set_telemetry(&mut self, telemetry: AuthTelemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Responses suppressed by rate limiting so far.
    pub fn rrl_dropped(&self) -> u64 {
        self.rrl_dropped
    }

    /// Whether RRL permits answering `client` at `now`.
    fn rrl_permits(&mut self, client: Ipv4Addr, now: SimTime) -> bool {
        let Some(config) = self.rrl else {
            return true;
        };
        let entry = self.rrl_state.entry(client).or_insert((now, 0));
        if now.since(entry.0) >= config.window {
            *entry = (now, 0);
        }
        if entry.1 >= config.max_responses {
            self.rrl_dropped += 1;
            false
        } else {
            entry.1 += 1;
            true
        }
    }

    /// Enables automatic cluster rollover with `cluster_size` entries per
    /// cluster: when a query arrives for the cluster following the active
    /// one, the server loads it (and charges the load time).
    pub fn enable_auto_advance(&mut self, cluster_size: u64) -> &mut Self {
        self.auto_advance = true;
        self.auto_cluster_size = cluster_size.max(1);
        self
    }

    /// Total simulated zone-load time accumulated by auto-advance.
    pub fn load_time_secs(&self) -> f64 {
        self.load_time_secs
    }

    /// The zone being served.
    pub fn zone(&self) -> &ClusterZone {
        &self.zone
    }

    /// Mutable zone access (cluster rollover happens through here).
    pub fn zone_mut(&mut self) -> &mut ClusterZone {
        &mut self.zone
    }

    /// Queries answered so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Builds the authoritative response for a decoded query.
    pub fn respond(&mut self, query: &Message) -> Message {
        self.queries_served += 1;
        let Some(question) = query.first_question() else {
            self.telemetry.record(None, Rcode::FormErr);
            return Message::builder()
                .response_to(query)
                .rcode(Rcode::FormErr)
                .build();
        };
        let qtype = question.qtype();
        if self.auto_advance {
            if let Some(label) =
                crate::scheme::ProbeLabel::parse(question.qname(), self.zone.zone().origin())
            {
                // With no cluster loaded yet, the first query picks the
                // starting cluster (sharded probers start at a nonzero
                // base); afterwards only the immediately-next cluster
                // triggers a rollover.
                let advance = match self.zone.active_cluster() {
                    None => true,
                    Some(active) => label.cluster == active + 1,
                };
                if advance {
                    let load = self
                        .zone
                        .load_cluster(label.cluster, self.auto_cluster_size);
                    self.load_time_secs += load.as_secs_f64();
                }
            }
        }
        let mut builder = Message::builder().response_to(query).authoritative(true);
        match self.zone.lookup(question.qname(), question.qtype()) {
            ZoneAnswer::Answer(records) => {
                for rec in records {
                    builder = builder.answer(rec);
                }
            }
            ZoneAnswer::NoData(soa) => {
                builder = builder.authority(soa);
            }
            ZoneAnswer::NxDomain(soa) => {
                builder = builder.rcode(Rcode::NXDomain).authority(soa);
            }
            ZoneAnswer::OutOfZone => {
                // A real authoritative-only server refuses queries for
                // zones it does not serve (and clears AA).
                builder = builder.authoritative(false).rcode(Rcode::Refused);
            }
        }
        let response = builder.build();
        self.telemetry
            .record(Some(qtype), response.header().rcode());
        response
    }
}

impl Endpoint for AuthoritativeServer {
    fn handle_datagram(&mut self, dgram: &Datagram, ctx: &mut Context<'_>) {
        if dgram.dst_port != 53 {
            return; // the server only listens on the DNS port
        }
        self.capture.record_inbound(ctx.now(), dgram);
        if !self.rrl_permits(dgram.src, ctx.now()) {
            return; // RRL: drop, don't answer (slip=0)
        }
        let (response, size_limit) = match Message::decode(&dgram.payload) {
            Ok(query) if !query.header().is_response() => {
                let limit = query.response_size_limit();
                (self.respond(&query), limit)
            }
            Ok(_) => return, // stray response; a server ignores these
            Err(_) => {
                // BIND answers undecodable queries with FormErr when it
                // can at least read the ID; we echo a minimal FormErr.
                let id = if dgram.payload.len() >= 2 {
                    u16::from_be_bytes([dgram.payload[0], dgram.payload[1]])
                } else {
                    0
                };
                let mut m = Message::builder().id(id).rcode(Rcode::FormErr).build();
                m.header_mut().set_response(true);
                self.telemetry.record(None, Rcode::FormErr);
                (m, Message::CLASSIC_UDP_LIMIT)
            }
        };
        // UDP responses are truncated to the client's advertised budget
        // (512 bytes for non-EDNS clients), with TC set — the size
        // behaviour §II-C's amplification discussion hinges on.
        if response
            .encode_truncated_into(size_limit, &mut self.scratch)
            .is_err()
        {
            return;
        }
        let reply = dgram.reply(bytes::Bytes::copy_from_slice(&self.scratch));
        self.capture.record_outbound(ctx.now(), &reply);
        ctx.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Direction;
    use crate::scheme::{ground_truth, ProbeLabel};
    use crate::zone::Zone;
    use orscope_dns_wire::{Name, Question};
    use orscope_netsim::{SimNet, SimTime};
    use std::net::Ipv4Addr;

    const SERVER: Ipv4Addr = Ipv4Addr::new(45, 77, 1, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);

    fn zone_name() -> Name {
        "ucfsealresearch.net".parse().unwrap()
    }

    fn server(capture: CaptureHandle) -> AuthoritativeServer {
        let zone = Zone::new(zone_name(), "ns1.ucfsealresearch.net".parse().unwrap());
        let mut cz = ClusterZone::new(zone);
        cz.load_cluster(0, 1000);
        AuthoritativeServer::new(cz, capture)
    }

    fn roundtrip(query: Message) -> (Message, CaptureHandle) {
        let capture = CaptureHandle::new();
        let mut net = SimNet::builder().seed(1).build();
        net.register(SERVER, server(capture.clone()));
        // A sink client to receive the response.
        struct Sink(std::sync::Arc<parking_lot::Mutex<Option<Message>>>);
        impl Endpoint for Sink {
            fn handle_datagram(&mut self, dgram: &Datagram, _ctx: &mut Context<'_>) {
                *self.0.lock() = Some(Message::decode(&dgram.payload).unwrap());
            }
        }
        let slot = std::sync::Arc::new(parking_lot::Mutex::new(None));
        net.register(CLIENT, Sink(slot.clone()));
        net.inject(Datagram::new(
            (CLIENT, 40_000),
            (SERVER, 53),
            query.encode().unwrap(),
        ));
        net.run_until_idle();
        let response = slot.lock().take().expect("no response received");
        (response, capture)
    }

    #[test]
    fn answers_probe_subdomain_with_ground_truth() {
        let label = ProbeLabel::new(0, 42);
        let query = Message::query(7, Question::a(label.qname(&zone_name())));
        let (resp, capture) = roundtrip(query);
        assert!(resp.header().authoritative());
        assert_eq!(resp.header().rcode(), Rcode::NoError);
        assert_eq!(resp.answers()[0].rdata().as_a(), Some(ground_truth(label)));
        // Q2 and R1 were captured.
        assert_eq!(capture.count(Direction::Inbound), 1);
        assert_eq!(capture.count(Direction::Outbound), 1);
    }

    #[test]
    fn nxdomain_for_unloaded_cluster() {
        let label = ProbeLabel::new(5, 42);
        let query = Message::query(8, Question::a(label.qname(&zone_name())));
        let (resp, _) = roundtrip(query);
        assert_eq!(resp.header().rcode(), Rcode::NXDomain);
        assert!(resp.answers().is_empty());
        assert_eq!(resp.authorities().len(), 1, "SOA for negative caching");
    }

    #[test]
    fn refuses_out_of_zone() {
        let query = Message::query(9, Question::a("www.example.com".parse().unwrap()));
        let (resp, _) = roundtrip(query);
        assert_eq!(resp.header().rcode(), Rcode::Refused);
        assert!(!resp.header().authoritative());
    }

    #[test]
    fn formerr_for_garbage() {
        let capture = CaptureHandle::new();
        let mut net = SimNet::builder().seed(2).build();
        net.register(SERVER, server(capture.clone()));
        struct Sink(std::sync::Arc<parking_lot::Mutex<Option<Message>>>);
        impl Endpoint for Sink {
            fn handle_datagram(&mut self, dgram: &Datagram, _ctx: &mut Context<'_>) {
                *self.0.lock() = Some(Message::decode(&dgram.payload).unwrap());
            }
        }
        let slot = std::sync::Arc::new(parking_lot::Mutex::new(None));
        net.register(CLIENT, Sink(slot.clone()));
        net.inject(Datagram::new(
            (CLIENT, 40_000),
            (SERVER, 53),
            vec![0xAB, 0xCD, 0xFF],
        ));
        net.run_until_idle();
        let resp = slot.lock().take().unwrap();
        assert_eq!(resp.header().rcode(), Rcode::FormErr);
        assert_eq!(resp.header().id(), 0xABCD, "echoes the query id bytes");
    }

    #[test]
    fn ignores_non_dns_port() {
        let capture = CaptureHandle::new();
        let mut net = SimNet::builder().seed(3).build();
        net.register(SERVER, server(capture.clone()));
        net.inject(Datagram::new((CLIENT, 40_000), (SERVER, 8080), vec![0; 12]));
        net.run_until_idle();
        assert!(capture.is_empty());
    }

    #[test]
    fn empty_question_query_gets_formerr() {
        let mut query = Message::query(3, Question::a("x.ucfsealresearch.net".parse().unwrap()));
        query.clear_questions();
        let (resp, _) = roundtrip(query);
        assert_eq!(resp.header().rcode(), Rcode::FormErr);
    }

    #[test]
    fn auto_advance_starts_at_first_seen_cluster() {
        // A sharded prober starts at a nonzero base cluster; the server
        // must load that cluster on first contact instead of cluster 0.
        let zone = Zone::new(zone_name(), "ns1.ucfsealresearch.net".parse().unwrap());
        let mut srv = AuthoritativeServer::new(ClusterZone::new(zone), CaptureHandle::new());
        srv.enable_auto_advance(1000);
        let label = ProbeLabel::new(250, 7);
        let query = Message::query(11, Question::a(label.qname(&zone_name())));
        let resp = srv.respond(&query);
        assert_eq!(resp.header().rcode(), Rcode::NoError);
        assert_eq!(resp.answers()[0].rdata().as_a(), Some(ground_truth(label)));
        assert_eq!(srv.zone().active_cluster(), Some(250));
        assert!(srv.load_time_secs() > 0.0);
        // The following cluster still rolls over normally.
        let next = ProbeLabel::new(251, 0);
        let resp = srv.respond(&Message::query(12, Question::a(next.qname(&zone_name()))));
        assert_eq!(resp.header().rcode(), Rcode::NoError);
        assert_eq!(srv.zone().active_cluster(), Some(251));
    }

    #[test]
    fn capture_timestamps_are_ordered() {
        let label = ProbeLabel::new(0, 1);
        let query = Message::query(7, Question::a(label.qname(&zone_name())));
        let (_, capture) = roundtrip(query);
        let packets = capture.snapshot();
        assert_eq!(packets.len(), 2);
        assert!(packets[0].at <= packets[1].at);
        assert!(packets[0].at > SimTime::ZERO, "latency applied");
    }
}

#[cfg(test)]
mod truncation_tests {
    use super::*;
    use crate::zone::Zone;
    use orscope_dns_wire::{Message, Name, Question};

    fn bulky_server() -> AuthoritativeServer {
        let origin: Name = "ucfsealresearch.net".parse().unwrap();
        let mut zone = Zone::new(origin.clone(), "ns1.ucfsealresearch.net".parse().unwrap());
        for i in 0..20 {
            zone.add_txt(origin.clone(), &format!("bulk-{i:02}: {}", "y".repeat(100)));
        }
        let mut cz = ClusterZone::new(zone);
        cz.load_cluster(0, 10);
        AuthoritativeServer::new(cz, CaptureHandle::new())
    }

    #[test]
    fn non_edns_any_response_truncates_at_512() {
        let mut srv = bulky_server();
        let query = Message::query(1, Question::any("ucfsealresearch.net".parse().unwrap()));
        let resp = srv.respond(&query);
        let wire = resp.encode_truncated(query.response_size_limit()).unwrap();
        assert!(wire.len() <= 512, "{} bytes", wire.len());
        let decoded = Message::decode(&wire).unwrap();
        assert!(decoded.header().truncated());
    }

    #[test]
    fn edns_client_receives_the_full_answer() {
        let mut srv = bulky_server();
        let mut query = Message::query(2, Question::any("ucfsealresearch.net".parse().unwrap()));
        query.set_edns_udp_size(4096);
        let resp = srv.respond(&query);
        let wire = resp.encode_truncated(query.response_size_limit()).unwrap();
        assert!(wire.len() > 512, "{} bytes", wire.len());
        assert!(!Message::decode(&wire).unwrap().header().truncated());
    }
}

#[cfg(test)]
mod rrl_tests {
    use super::*;
    use crate::zone::Zone;
    use orscope_dns_wire::{Message, Question};
    use orscope_netsim::SimNet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const SERVER: Ipv4Addr = Ipv4Addr::new(45, 77, 1, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);

    struct Counter(Arc<AtomicU64>);
    impl Endpoint for Counter {
        fn handle_datagram(&mut self, _d: &Datagram, _c: &mut Context<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn run_queries(rrl: Option<RrlConfig>, queries: u32) -> (u64, u64) {
        let mut net = SimNet::builder().seed(4).build();
        let mut cz = ClusterZone::new(Zone::new(
            "ucfsealresearch.net".parse().unwrap(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
        ));
        cz.load_cluster(0, 10_000);
        let mut server = AuthoritativeServer::new(cz, CaptureHandle::new());
        if let Some(config) = rrl {
            server.enable_rrl(config);
        }
        net.register(SERVER, server);
        let got = Arc::new(AtomicU64::new(0));
        net.register(CLIENT, Counter(got.clone()));
        for i in 0..queries {
            let label = crate::scheme::ProbeLabel::new(0, i as u64);
            let q = Message::query(
                i as u16,
                Question::a(label.qname(&"ucfsealresearch.net".parse().unwrap())),
            );
            net.inject(Datagram::new(
                (CLIENT, 40_000),
                (SERVER, 53),
                q.encode().unwrap(),
            ));
        }
        net.run_until_idle();
        (got.load(Ordering::Relaxed), queries as u64)
    }

    #[test]
    fn rrl_caps_burst_responses() {
        // All 50 queries arrive within one latency window (~same time).
        let (answered, sent) = run_queries(
            Some(RrlConfig {
                window: Duration::from_secs(1),
                max_responses: 10,
            }),
            50,
        );
        assert_eq!(sent, 50);
        assert_eq!(answered, 10, "only the window budget is answered");
    }

    #[test]
    fn no_rrl_answers_everything() {
        let (answered, sent) = run_queries(None, 50);
        assert_eq!(answered, sent);
    }

    #[test]
    fn rrl_window_resets() {
        let mut srv = AuthoritativeServer::new(
            ClusterZone::new(Zone::new(
                "x.net".parse().unwrap(),
                "ns1.x.net".parse().unwrap(),
            )),
            CaptureHandle::new(),
        );
        srv.enable_rrl(RrlConfig {
            window: Duration::from_millis(100),
            max_responses: 2,
        });
        let c = Ipv4Addr::new(1, 1, 1, 1);
        assert!(srv.rrl_permits(c, SimTime::ZERO));
        assert!(srv.rrl_permits(c, SimTime::ZERO));
        assert!(!srv.rrl_permits(c, SimTime::ZERO));
        assert_eq!(srv.rrl_dropped(), 1);
        // A new window opens 100ms later.
        assert!(srv.rrl_permits(c, SimTime::from_nanos(100_000_000)));
        // Other clients have their own budget.
        assert!(srv.rrl_permits(Ipv4Addr::new(2, 2, 2, 2), SimTime::ZERO));
    }
}
