//! Property-based tests for the address-space substrate.

use proptest::prelude::*;

use orscope_ipspace::{prime, Blocklist, Cidr, ScanPermutation};

proptest! {
    /// The scan permutation is a bijection: every value of `0..n` appears
    /// exactly once regardless of seed.
    #[test]
    fn permutation_is_bijective(n in 1u64..3000, seed in any::<u64>()) {
        let perm = ScanPermutation::new(n, seed);
        let mut visited: Vec<u32> = perm.iter().collect();
        visited.sort_unstable();
        prop_assert_eq!(visited.len() as u64, n);
        for (i, v) in visited.iter().enumerate() {
            prop_assert_eq!(*v as usize, i);
        }
    }

    /// Permutations are stable across repeated construction.
    #[test]
    fn permutation_is_deterministic(n in 1u64..500, seed in any::<u64>()) {
        let a: Vec<u32> = ScanPermutation::new(n, seed).iter().collect();
        let b: Vec<u32> = ScanPermutation::new(n, seed).iter().collect();
        prop_assert_eq!(a, b);
    }

    /// `next_prime` returns a prime strictly above its argument.
    #[test]
    fn next_prime_is_prime_and_greater(n in 0u64..10_000_000) {
        let p = prime::next_prime(n);
        prop_assert!(p > n);
        prop_assert!(prime::is_prime(p));
    }

    /// `pow_mod` agrees with naive repeated multiplication.
    #[test]
    fn pow_mod_matches_naive(base in 0u64..1000, exp in 0u64..64, m in 2u64..10_000) {
        let expected = {
            let mut acc = 1u64;
            for _ in 0..exp {
                acc = acc * base % m;
            }
            acc
        };
        prop_assert_eq!(prime::pow_mod(base, exp, m), expected);
    }

    /// A blocklist built from arbitrary CIDRs contains exactly the
    /// addresses its member blocks contain.
    #[test]
    fn blocklist_membership_matches_blocks(
        blocks in prop::collection::vec((any::<u32>(), 8u8..=32), 0..12),
        probes in prop::collection::vec(any::<u32>(), 32),
    ) {
        let cidrs: Vec<Cidr> = blocks
            .iter()
            .map(|&(addr, len)| Cidr::new(std::net::Ipv4Addr::from(addr), len))
            .collect();
        let list: Blocklist = cidrs.iter().copied().collect();
        for probe in probes {
            let expected = cidrs.iter().any(|c| c.contains(probe));
            prop_assert_eq!(list.contains(probe), expected, "probe {}", probe);
        }
    }

    /// Merged ranges never overlap and never touch (full coalescing).
    #[test]
    fn blocklist_ranges_are_disjoint_and_separated(
        blocks in prop::collection::vec((any::<u32>(), 4u8..=32), 1..16),
    ) {
        let list: Blocklist = blocks
            .iter()
            .map(|&(addr, len)| Cidr::new(std::net::Ipv4Addr::from(addr), len))
            .collect();
        for w in list.ranges().windows(2) {
            let (_, e0) = w[0];
            let (s1, _) = w[1];
            prop_assert!(e0 < s1, "ranges out of order or overlapping");
            prop_assert!(s1 - e0 > 1, "adjacent ranges were not merged");
        }
    }

    /// Covered-count equals the size of the union of the blocks.
    #[test]
    fn blocklist_covered_matches_union(
        blocks in prop::collection::vec((0u32..4096, 20u8..=32), 0..10),
    ) {
        let cidrs: Vec<Cidr> = blocks
            .iter()
            .map(|&(addr, len)| Cidr::new(std::net::Ipv4Addr::from(addr), len))
            .collect();
        let list: Blocklist = cidrs.iter().copied().collect();
        let mut union = std::collections::HashSet::new();
        for c in &cidrs {
            for a in c.iter() {
                union.insert(a);
            }
        }
        prop_assert_eq!(list.covered(), union.len() as u64);
    }

    /// CIDR roundtrip: display then parse yields the same block.
    #[test]
    fn cidr_display_parse_roundtrip(addr in any::<u32>(), len in 0u8..=32) {
        let c = Cidr::new(std::net::Ipv4Addr::from(addr), len);
        let back: Cidr = c.to_string().parse().unwrap();
        prop_assert_eq!(c, back);
    }
}
