//! CIDR block arithmetic.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An IPv4 CIDR block such as `192.168.0.0/16`.
///
/// The network address is stored normalized: host bits below the prefix
/// length are forced to zero, so `Cidr::new(Ipv4Addr::new(10, 1, 2, 3), 8)`
/// represents `10.0.0.0/8`.
///
/// # Example
///
/// ```
/// use orscope_ipspace::Cidr;
/// use std::net::Ipv4Addr;
///
/// let block: Cidr = "198.18.0.0/15".parse()?;
/// assert_eq!(block.len(), 131_072);
/// assert!(block.contains_addr(Ipv4Addr::new(198, 19, 255, 255)));
/// assert!(!block.contains_addr(Ipv4Addr::new(198, 20, 0, 0)));
/// # Ok::<(), orscope_ipspace::ParseCidrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cidr {
    network: u32,
    prefix_len: u8,
}

impl Cidr {
    /// Creates a CIDR block from a network address and prefix length.
    ///
    /// Host bits of `network` below the prefix are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn new(network: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} exceeds 32");
        let raw = u32::from(network);
        Self {
            network: raw & Self::mask(prefix_len),
            prefix_len,
        }
    }

    /// The full IPv4 space, `0.0.0.0/0`.
    pub const fn entire_space() -> Self {
        Self {
            network: 0,
            prefix_len: 0,
        }
    }

    /// Network mask for a prefix length (e.g. `/8` -> `0xff00_0000`).
    const fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// The (normalized) network address of the block.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// The prefix length of the block.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// First address of the block as a raw `u32`.
    pub fn first(&self) -> u32 {
        self.network
    }

    /// Last address of the block as a raw `u32`.
    pub fn last(&self) -> u32 {
        self.network | !Self::mask(self.prefix_len)
    }

    /// Number of addresses in the block (`2^(32 - prefix_len)`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// Whether the block contains the raw address `addr`.
    pub fn contains(&self, addr: u32) -> bool {
        addr & Self::mask(self.prefix_len) == self.network
    }

    /// Whether the block contains the address `addr`.
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        self.contains(u32::from(addr))
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_block(&self, other: &Cidr) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.network)
    }

    /// Whether the two blocks share any address.
    pub fn overlaps(&self, other: &Cidr) -> bool {
        self.contains(other.network) || other.contains(self.network)
    }

    /// Iterates over every raw address in the block in ascending order.
    ///
    /// For `/0` this yields 2^32 items; callers scanning the full space
    /// should prefer [`crate::ScanPermutation`].
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (self.first() as u64..=self.last() as u64).map(|a| a as u32)
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

/// Error returned when parsing a malformed CIDR string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCidrError {
    input: String,
    reason: &'static str,
}

impl ParseCidrError {
    fn new(input: &str, reason: &'static str) -> Self {
        Self {
            input: input.to_owned(),
            reason,
        }
    }
}

impl fmt::Display for ParseCidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseCidrError {}

impl FromStr for Cidr {
    type Err = ParseCidrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = match s.split_once('/') {
            Some(parts) => parts,
            None => (s, "32"),
        };
        let addr: Ipv4Addr = addr_part
            .parse()
            .map_err(|_| ParseCidrError::new(s, "bad address"))?;
        let prefix_len: u8 = len_part
            .parse()
            .map_err(|_| ParseCidrError::new(s, "bad prefix length"))?;
        if prefix_len > 32 {
            return Err(ParseCidrError::new(s, "prefix length exceeds 32"));
        }
        Ok(Cidr::new(addr, prefix_len))
    }
}

impl From<Ipv4Addr> for Cidr {
    /// A single-address (`/32`) block.
    fn from(addr: Ipv4Addr) -> Self {
        Cidr::new(addr, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_host_bits() {
        let c = Cidr::new(Ipv4Addr::new(10, 99, 3, 7), 8);
        assert_eq!(c.network(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(c.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn len_and_bounds() {
        let c: Cidr = "192.168.0.0/16".parse().unwrap();
        assert_eq!(c.len(), 65_536);
        assert_eq!(c.first(), u32::from(Ipv4Addr::new(192, 168, 0, 0)));
        assert_eq!(c.last(), u32::from(Ipv4Addr::new(192, 168, 255, 255)));
    }

    #[test]
    fn slash_zero_covers_everything() {
        let c = Cidr::entire_space();
        assert_eq!(c.len(), 1 << 32);
        assert!(c.contains(0));
        assert!(c.contains(u32::MAX));
    }

    #[test]
    fn slash_32_is_single_address() {
        let c = Cidr::from(Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(c.len(), 1);
        assert!(c.contains_addr(Ipv4Addr::new(8, 8, 8, 8)));
        assert!(!c.contains_addr(Ipv4Addr::new(8, 8, 8, 9)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
        assert!("not-an-ip/8".parse::<Cidr>().is_err());
        assert!("10.0.0.0/x".parse::<Cidr>().is_err());
        assert!("10.0.0.256/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn parse_bare_address_as_slash_32() {
        let c: Cidr = "1.2.3.4".parse().unwrap();
        assert_eq!(c.prefix_len(), 32);
        assert_eq!(c.network(), Ipv4Addr::new(1, 2, 3, 4));
    }

    #[test]
    fn containment_and_overlap() {
        let big: Cidr = "10.0.0.0/8".parse().unwrap();
        let small: Cidr = "10.5.0.0/16".parse().unwrap();
        let other: Cidr = "11.0.0.0/8".parse().unwrap();
        assert!(big.contains_block(&small));
        assert!(!small.contains_block(&big));
        assert!(big.overlaps(&small));
        assert!(small.overlaps(&big));
        assert!(!big.overlaps(&other));
    }

    #[test]
    fn iter_small_block() {
        let c: Cidr = "203.0.113.0/30".parse().unwrap();
        let addrs: Vec<u32> = c.iter().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], c.first());
        assert_eq!(addrs[3], c.last());
    }

    #[test]
    fn iter_top_of_space_does_not_overflow() {
        let c: Cidr = "255.255.255.252/30".parse().unwrap();
        assert_eq!(c.iter().count(), 4);
        assert_eq!(c.last(), u32::MAX);
    }
}
