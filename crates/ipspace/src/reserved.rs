//! The registry of RFC-reserved address blocks excluded from probing.
//!
//! This is Table I of the paper: sixteen blocks, 575,931,649 addresses in
//! total, that an Internet-wide scan must never target (private networks,
//! loopback, multicast, documentation ranges, ...).

use crate::cidr::Cidr;

/// One entry of the exclusion table: a block and the RFC that reserves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservedBlock {
    /// The reserved CIDR block.
    pub cidr: Cidr,
    /// The RFC document reserving the block, e.g. `"RFC1918"`.
    pub rfc: &'static str,
}

/// The sixteen reserved blocks of Table I, in ascending address order.
pub fn blocks() -> &'static [ReservedBlock; 16] {
    use std::net::Ipv4Addr;
    use std::sync::OnceLock;
    static BLOCKS: OnceLock<[ReservedBlock; 16]> = OnceLock::new();
    BLOCKS.get_or_init(|| {
        let mk = |a, b, c, d, len, rfc| ReservedBlock {
            cidr: Cidr::new(Ipv4Addr::new(a, b, c, d), len),
            rfc,
        };
        [
            mk(0, 0, 0, 0, 8, "RFC1122"),
            mk(10, 0, 0, 0, 8, "RFC1918"),
            mk(100, 64, 0, 0, 10, "RFC6598"),
            mk(127, 0, 0, 0, 8, "RFC1122"),
            mk(169, 254, 0, 0, 16, "RFC3927"),
            mk(172, 16, 0, 0, 12, "RFC1918"),
            mk(192, 0, 0, 0, 24, "RFC6890"),
            mk(192, 0, 2, 0, 24, "RFC5737"),
            mk(192, 88, 99, 0, 24, "RFC3068"),
            mk(192, 168, 0, 0, 16, "RFC1918"),
            mk(198, 18, 0, 0, 15, "RFC2544"),
            mk(198, 51, 100, 0, 24, "RFC5737"),
            mk(203, 0, 113, 0, 24, "RFC5737"),
            mk(224, 0, 0, 0, 4, "RFC5771"),
            mk(240, 0, 0, 0, 4, "RFC1112"),
            mk(255, 255, 255, 255, 32, "RFC919"),
        ]
    })
}

/// The total printed at the bottom of Table I in the paper: 575,931,649.
///
/// This figure is internally inconsistent with the table's own rows, whose
/// sizes sum to [`row_sum`] = 592,708,865 (the printed total is exactly one
/// /8 short). The paper's own 2018 Q1 count (3,702,258,432 probes, Table II)
/// equals `2^32 -` [`total_excluded`]`()`, confirming that the row data —
/// not the printed total — is what the scan actually used.
pub const PAPER_PRINTED_TOTAL: u64 = 575_931_649;

/// Sum of the per-row block sizes of Table I: 592,708,865.
///
/// One address (255.255.255.255/32) is double-counted because it also lies
/// inside 240.0.0.0/4; the true union is [`total_excluded`].
pub fn row_sum() -> u64 {
    blocks().iter().map(|b| b.cidr.len()).sum()
}

/// Number of distinct excluded addresses (the union of Table I blocks):
/// 592,708,864.
pub fn total_excluded() -> u64 {
    crate::Blocklist::reserved().covered()
}

/// Number of probeable addresses: `2^32 - total_excluded()` =
/// 3,702,258,432, which matches the paper's 2018 Q1 count exactly.
pub fn total_probeable() -> u64 {
    (1u64 << 32) - total_excluded()
}

/// Whether a raw address falls in any reserved block.
pub fn is_reserved(addr: u32) -> bool {
    blocks().iter().any(|b| b.cidr.contains(addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn reserved_totals_are_consistent_with_table_2_q1() {
        assert_eq!(row_sum(), 592_708_865);
        assert_eq!(total_excluded(), 592_708_864);
        // The probeable count equals the paper's 2018 Q1 figure, which
        // cross-validates the block registry against Table II.
        assert_eq!(total_probeable(), 3_702_258_432);
        // Table I's printed total is one /8 short of its own rows.
        assert_eq!(row_sum() - PAPER_PRINTED_TOTAL, 16_777_216);
    }

    #[test]
    fn sixteen_blocks_in_ascending_order() {
        let b = blocks();
        assert_eq!(b.len(), 16);
        for w in b.windows(2) {
            assert!(w[0].cidr.first() < w[1].cidr.first());
        }
    }

    #[test]
    fn per_block_counts_match_table_1() {
        let expected: &[(&str, u64)] = &[
            ("0.0.0.0/8", 16_777_216),
            ("10.0.0.0/8", 16_777_216),
            ("100.64.0.0/10", 4_194_304),
            ("127.0.0.0/8", 16_777_216),
            ("169.254.0.0/16", 65_536),
            ("172.16.0.0/12", 1_048_576),
            ("192.0.0.0/24", 256),
            ("192.0.2.0/24", 256),
            ("192.88.99.0/24", 256),
            ("192.168.0.0/16", 65_536),
            ("198.18.0.0/15", 131_072),
            ("198.51.100.0/24", 256),
            ("203.0.113.0/24", 256),
            ("224.0.0.0/4", 268_435_456),
            ("240.0.0.0/4", 268_435_456),
            ("255.255.255.255/32", 1),
        ];
        for (block, (text, count)) in blocks().iter().zip(expected) {
            assert_eq!(block.cidr.to_string(), *text);
            assert_eq!(block.cidr.len(), *count, "count mismatch for {text}");
        }
    }

    #[test]
    fn only_known_overlap_is_broadcast_inside_class_e() {
        // 255.255.255.255/32 lies inside 240.0.0.0/4; Table I lists both.
        let b = blocks();
        let mut overlaps = Vec::new();
        for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                if b[i].cidr.overlaps(&b[j].cidr) {
                    overlaps.push((b[i].cidr.to_string(), b[j].cidr.to_string()));
                }
            }
        }
        assert_eq!(
            overlaps,
            vec![("240.0.0.0/4".to_owned(), "255.255.255.255/32".to_owned())]
        );
    }

    #[test]
    fn is_reserved_spot_checks() {
        assert!(is_reserved(u32::from(Ipv4Addr::new(10, 1, 2, 3))));
        assert!(is_reserved(u32::from(Ipv4Addr::new(192, 168, 1, 1))));
        assert!(is_reserved(u32::from(Ipv4Addr::new(239, 255, 255, 250))));
        assert!(is_reserved(u32::MAX));
        assert!(!is_reserved(u32::from(Ipv4Addr::new(8, 8, 8, 8))));
        assert!(!is_reserved(u32::from(Ipv4Addr::new(1, 1, 1, 1))));
        // Boundary: 192.0.1.0 sits between the 192.0.0.0/24 and
        // 192.0.2.0/24 documentation blocks and is probeable.
        assert!(!is_reserved(u32::from(Ipv4Addr::new(192, 0, 1, 0))));
    }

    #[test]
    fn rfc_attribution() {
        let rfc1918: Vec<_> = blocks().iter().filter(|b| b.rfc == "RFC1918").collect();
        assert_eq!(rfc1918.len(), 3);
    }
}
