//! Number-theoretic helpers for the scan permutation.
//!
//! The ZMap-style address permutation iterates the multiplicative group of
//! integers modulo a prime `p`. This module provides a deterministic
//! Miller-Rabin primality test valid for all `u64`, a next-prime search,
//! factorization, and primitive-root discovery.

/// Modular multiplication that never overflows (via `u128`).
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `base^exp mod m` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller-Rabin primality test, correct for all `u64`.
///
/// Uses the witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37},
/// which is proven sufficient for every integer below 3.3 * 10^24.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime strictly greater than `n`.
///
/// # Panics
///
/// Panics if the search would overflow `u64` (practically unreachable for
/// the 32-bit address spaces this crate works with).
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.checked_add(1).expect("next_prime overflow");
    if candidate <= 2 {
        return 2;
    }
    if candidate.is_multiple_of(2) {
        candidate += 1;
    }
    while !is_prime(candidate) {
        candidate = candidate.checked_add(2).expect("next_prime overflow");
    }
    candidate
}

/// The distinct prime factors of `n` by trial division with Pollard's-rho
/// fallback for large factors.
pub fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    for p in [2u64, 3, 5] {
        if n.is_multiple_of(p) {
            factors.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
    }
    // Wheel over 6k +/- 1 up to 2^21 (enough for p-1 where p ~ 2^32 after
    // small factors are stripped; anything left bigger is handled below).
    let mut k = 7u64;
    while k.saturating_mul(k) <= n && k < (1 << 21) {
        for cand in [k, k + 4] {
            if n.is_multiple_of(cand) {
                factors.push(cand);
                while n.is_multiple_of(cand) {
                    n /= cand;
                }
            }
        }
        k += 6;
    }
    if n > 1 {
        if is_prime(n) {
            factors.push(n);
        } else {
            // Composite remainder: split with Pollard's rho.
            let d = pollard_rho(n);
            for part in [d, n / d] {
                for f in distinct_prime_factors(part) {
                    if !factors.contains(&f) {
                        factors.push(f);
                    }
                }
            }
        }
    }
    factors.sort_unstable();
    factors.dedup();
    factors
}

/// Pollard's rho factor-finding (Brent variant); `n` must be composite.
fn pollard_rho(n: u64) -> u64 {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut c = 1u64;
    loop {
        let mut x = 2u64;
        let mut y = 2u64;
        let mut d = 1u64;
        let f = |v: u64| (mul_mod(v, v, n) + c) % n;
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1;
    }
}

/// Greatest common divisor by Euclid's algorithm.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Finds a primitive root modulo the prime `p`, i.e. a generator of the
/// full multiplicative group `Z_p^*` of order `p - 1`.
///
/// `preference` seeds where the search starts so that different scan seeds
/// produce different generators.
///
/// # Panics
///
/// Panics if `p` is not prime.
pub fn primitive_root(p: u64, preference: u64) -> u64 {
    assert!(is_prime(p), "{p} is not prime");
    if p == 2 {
        return 1;
    }
    let order = p - 1;
    let factors = distinct_prime_factors(order);
    let is_generator = |g: u64| -> bool { factors.iter().all(|&q| pow_mod(g, order / q, p) != 1) };
    let start = 2 + preference % (p - 3).max(1);
    let mut g = start;
    loop {
        if is_generator(g) {
            return g;
        }
        g += 1;
        if g >= p {
            g = 2;
        }
        assert_ne!(g, start, "no primitive root found for prime {p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101, 65_537];
        let composites = [0u64, 1, 4, 9, 15, 91, 561, 1_105, 65_535];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_are_composite() {
        // Classic Fermat pseudoprimes that fool weak tests.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(!is_prime(c), "{c} is a Carmichael number");
        }
    }

    #[test]
    fn zmap_prime() {
        // ZMap iterates mod 2^32 + 15, the smallest prime above 2^32.
        assert!(is_prime((1u64 << 32) + 15));
        assert_eq!(next_prime(1u64 << 32), (1u64 << 32) + 15);
    }

    #[test]
    fn next_prime_basics() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(3), 5);
        assert_eq!(next_prime(13), 17);
        assert_eq!(next_prime(1000), 1009);
    }

    #[test]
    fn factorization() {
        assert_eq!(distinct_prime_factors(1), Vec::<u64>::new());
        assert_eq!(distinct_prime_factors(2), vec![2]);
        assert_eq!(distinct_prime_factors(12), vec![2, 3]);
        assert_eq!(distinct_prime_factors(97), vec![97]);
        assert_eq!(
            distinct_prime_factors(2 * 3 * 5 * 7 * 11),
            vec![2, 3, 5, 7, 11]
        );
        // (2^32 + 15) - 1 = 2 * 3 * 5 * 131 * 364289 * 3
        let fs = distinct_prime_factors((1u64 << 32) + 14);
        let mut check = 1u64;
        for f in &fs {
            assert!(is_prime(*f));
            check *= f;
        }
        assert_eq!(((1u64 << 32) + 14) % check, 0);
    }

    #[test]
    fn factorization_with_large_prime_pair() {
        // 1000003 * 1000033 requires the rho fallback.
        let n = 1_000_003u64 * 1_000_033;
        assert_eq!(distinct_prime_factors(n), vec![1_000_003, 1_000_033]);
    }

    #[test]
    fn primitive_roots_generate_group() {
        for p in [5u64, 7, 11, 13, 65_537, 1_009] {
            let g = primitive_root(p, 0);
            let mut seen = std::collections::HashSet::new();
            let mut x = 1u64;
            for _ in 0..p - 1 {
                x = mul_mod(x, g, p);
                seen.insert(x);
            }
            assert_eq!(seen.len() as u64, p - 1, "g={g} does not generate Z_{p}^*");
        }
    }

    #[test]
    fn primitive_root_respects_preference() {
        let a = primitive_root(1_009, 1);
        let b = primitive_root(1_009, 500);
        // Both preferences must yield valid generators of the full group.
        for g in [a, b] {
            assert_eq!(pow_mod(g, 1_008, 1_009), 1);
            let factors = distinct_prime_factors(1_008);
            for q in factors {
                assert_ne!(pow_mod(g, 1_008 / q, 1_009), 1, "g={g} has small order");
            }
        }
    }

    #[test]
    fn pow_mod_edge_cases() {
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        assert_eq!(pow_mod(10, 10, 1), 0);
        assert_eq!(pow_mod(u64::MAX - 1, 2, u64::MAX - 2), 1);
    }
}
