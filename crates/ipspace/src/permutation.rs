//! ZMap-style stateless pseudorandom permutation of an address space.
//!
//! ZMap scans the IPv4 space in a pseudorandom order so that probe load is
//! spread across networks instead of hammering one /8 at a time, while
//! guaranteeing each address is visited exactly once. It does so by
//! iterating the multiplicative group of integers modulo a prime `p`
//! slightly larger than the space: starting from a random element, it
//! repeatedly multiplies by a primitive root `g`, visiting every value in
//! `1..p` exactly once per cycle; values that fall outside the target
//! space are skipped.
//!
//! [`ScanPermutation`] reproduces that construction for any space size
//! `n <= 2^32`, which lets the measurement pipeline scan scaled-down probe
//! spaces with the same access pattern as a full Internet-wide scan.

use crate::prime::{mul_mod, next_prime, primitive_root};

/// A bijective pseudorandom traversal of `0..n`.
///
/// The permutation is deterministic given `(n, seed)`.
///
/// # Example
///
/// ```
/// use orscope_ipspace::ScanPermutation;
///
/// let perm = ScanPermutation::new(100, 7);
/// let order: Vec<u32> = perm.iter().collect();
/// assert_eq!(order.len(), 100);
/// let mut sorted = order.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..100).collect::<Vec<_>>());
/// // The visit order is scrambled, not sequential.
/// assert_ne!(order, sorted);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPermutation {
    /// Size of the space being permuted; yields values in `0..n`.
    n: u64,
    /// Prime modulus `p > n`.
    modulus: u64,
    /// Primitive root of `Z_p^*`.
    generator: u64,
    /// First group element visited (in `1..p`).
    start: u64,
}

impl ScanPermutation {
    /// Creates a permutation of `0..n` determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 2^32`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "cannot permute an empty space");
        assert!(n <= 1 << 32, "space exceeds the IPv4 universe");
        let modulus = next_prime(n.max(2));
        // Derive independent generator preference and start position from
        // the seed with an splitmix-style mix so nearby seeds diverge.
        let mixed = splitmix(seed);
        let generator = primitive_root(modulus, mixed);
        let start = 1 + splitmix(mixed) % (modulus - 1);
        Self {
            n,
            modulus,
            generator,
            start,
        }
    }

    /// Creates the canonical full-IPv4 permutation (`n = 2^32`,
    /// modulus 2^32 + 15 as in ZMap).
    pub fn full_ipv4(seed: u64) -> Self {
        Self::new(1 << 32, seed)
    }

    /// Size of the permuted space.
    pub fn space_len(&self) -> u64 {
        self.n
    }

    /// The prime modulus backing the group.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Iterates all `n` values of the permutation.
    pub fn iter(&self) -> ScanPermutationIter {
        ScanPermutationIter {
            perm: self.clone(),
            current: self.start,
            emitted: 0,
        }
    }
}

/// Iterator over a [`ScanPermutation`]; see [`ScanPermutation::iter`].
#[derive(Debug, Clone)]
pub struct ScanPermutationIter {
    perm: ScanPermutation,
    current: u64,
    emitted: u64,
}

impl Iterator for ScanPermutationIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.emitted < self.perm.n {
            let value = self.current - 1; // group element x maps to address x-1
            self.current = mul_mod(self.current, self.perm.generator, self.perm.modulus);
            if value < self.perm.n {
                self.emitted += 1;
                return Some(value as u32);
            }
            // Values in n..p-1 are skipped, exactly as ZMap discards group
            // elements beyond the address space.
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.perm.n - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ScanPermutationIter {}

/// SplitMix64 finalizer: cheap, well-distributed 64-bit mixing.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_every_address_exactly_once() {
        for n in [1u64, 2, 3, 10, 97, 1_000, 4_096] {
            let perm = ScanPermutation::new(n, 1234);
            let visited: Vec<u32> = perm.iter().collect();
            assert_eq!(visited.len() as u64, n);
            let unique: HashSet<u32> = visited.iter().copied().collect();
            assert_eq!(unique.len() as u64, n, "duplicates for n={n}");
            assert!(visited.iter().all(|&v| (v as u64) < n));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = ScanPermutation::new(500, 9).iter().collect();
        let b: Vec<u32> = ScanPermutation::new(500, 9).iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u32> = ScanPermutation::new(500, 1).iter().collect();
        let b: Vec<u32> = ScanPermutation::new(500, 2).iter().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn order_is_scrambled() {
        let order: Vec<u32> = ScanPermutation::new(1_000, 77).iter().collect();
        // Count ascending adjacent pairs; a random permutation has ~50%.
        let ascending = order.windows(2).filter(|w| w[0] < w[1]).count();
        assert!(
            (300..700).contains(&ascending),
            "suspiciously ordered: {ascending}/999 ascending pairs"
        );
    }

    #[test]
    fn full_ipv4_uses_zmap_modulus() {
        let perm = ScanPermutation::full_ipv4(0);
        assert_eq!(perm.modulus(), (1 << 32) + 15);
        assert_eq!(perm.space_len(), 1 << 32);
        // Spot-check the first few outputs are in range and distinct.
        let head: Vec<u32> = perm.iter().take(1_000).collect();
        let unique: HashSet<u32> = head.iter().copied().collect();
        assert_eq!(unique.len(), 1_000);
    }

    #[test]
    fn size_hint_is_exact() {
        let perm = ScanPermutation::new(64, 3);
        let mut iter = perm.iter();
        assert_eq!(iter.len(), 64);
        iter.next();
        assert_eq!(iter.len(), 63);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_space_panics() {
        let _ = ScanPermutation::new(0, 0);
    }

    #[test]
    fn single_element_space() {
        let visited: Vec<u32> = ScanPermutation::new(1, 5).iter().collect();
        assert_eq!(visited, vec![0]);
    }
}

/// A shard of a [`ScanPermutation`], as in ZMap's `--shards`/`--shard`
/// options for splitting one logical scan across machines.
///
/// Shard `i` of `n` visits the permutation's positions `i, i+n, i+2n,
/// ...`; the shards are disjoint and their union is the full space, so
/// `n` probers can share one scan without coordination beyond the seed.
#[derive(Debug, Clone)]
pub struct ShardedPermutation {
    perm: ScanPermutation,
    shards: u32,
    shard: u32,
}

impl ScanPermutation {
    /// Returns shard `shard` of `shards` for this permutation.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shard >= shards`.
    pub fn shard(&self, shard: u32, shards: u32) -> ShardedPermutation {
        assert!(shards > 0, "need at least one shard");
        assert!(shard < shards, "shard {shard} out of {shards}");
        ShardedPermutation {
            perm: self.clone(),
            shards,
            shard,
        }
    }
}

impl ShardedPermutation {
    /// Iterates this shard's addresses.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.perm
            .iter()
            .skip(self.shard as usize)
            .step_by(self.shards as usize)
    }

    /// Number of addresses this shard covers.
    pub fn len(&self) -> u64 {
        let n = self.perm.space_len();
        let (shards, shard) = (self.shards as u64, self.shard as u64);
        n / shards + u64::from(n % shards > shard)
    }

    /// Whether the shard is empty (only when the space is tiny).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shards_partition_the_space() {
        let perm = ScanPermutation::new(1_000, 5);
        let mut seen = HashSet::new();
        let mut total = 0u64;
        for i in 0..7 {
            let shard = perm.shard(i, 7);
            let addrs: Vec<u32> = shard.iter().collect();
            assert_eq!(addrs.len() as u64, shard.len());
            for a in addrs {
                assert!(seen.insert(a), "{a} appeared in two shards");
                total += 1;
            }
        }
        assert_eq!(total, 1_000);
        assert_eq!(seen.len(), 1_000);
    }

    #[test]
    fn single_shard_is_the_whole_permutation() {
        let perm = ScanPermutation::new(256, 9);
        let full: Vec<u32> = perm.iter().collect();
        let sharded: Vec<u32> = perm.shard(0, 1).iter().collect();
        assert_eq!(full, sharded);
    }

    #[test]
    fn shard_lengths_are_balanced() {
        let perm = ScanPermutation::new(1_003, 1);
        let lens: Vec<u64> = (0..4).map(|i| perm.shard(i, 4).len()).collect();
        assert_eq!(lens.iter().sum::<u64>(), 1_003);
        assert!(lens.iter().all(|&l| l == 250 || l == 251));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn invalid_shard_panics() {
        let _ = ScanPermutation::new(10, 0).shard(3, 3);
    }
}
