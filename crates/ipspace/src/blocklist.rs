//! Efficient membership tests over sets of CIDR blocks.

use std::net::Ipv4Addr;

use crate::cidr::Cidr;
use crate::reserved;

/// A set of CIDR blocks supporting O(log n) membership queries.
///
/// Internally the blocks are merged into disjoint, sorted `[first, last]`
/// ranges, so overlapping or adjacent input blocks are coalesced.
///
/// # Example
///
/// ```
/// use orscope_ipspace::{Blocklist, Cidr};
/// use std::net::Ipv4Addr;
///
/// let list: Blocklist = ["10.0.0.0/8", "192.168.0.0/16"]
///     .iter()
///     .map(|s| s.parse::<Cidr>())
///     .collect::<Result<_, _>>()?;
/// assert!(list.contains_addr(Ipv4Addr::new(10, 200, 0, 1)));
/// assert!(!list.contains_addr(Ipv4Addr::new(11, 0, 0, 1)));
/// # Ok::<(), orscope_ipspace::ParseCidrError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Blocklist {
    /// Disjoint inclusive ranges, sorted by start.
    ranges: Vec<(u32, u32)>,
}

impl Blocklist {
    /// Creates an empty blocklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// The blocklist of Table I: every RFC-reserved block excluded from
    /// Internet-wide probing.
    pub fn reserved() -> Self {
        reserved::blocks().iter().map(|b| b.cidr).collect()
    }

    /// Adds a block, merging it with overlapping or adjacent ranges.
    pub fn insert(&mut self, block: Cidr) {
        let (mut first, mut last) = (block.first(), block.last());
        let mut merged = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            // Overlapping or directly adjacent (saturating: u32::MAX + 1
            // clamps, which only ever widens the adjacency test at the top
            // of the space where nothing lies beyond anyway).
            if s <= last.saturating_add(1) && first <= e.saturating_add(1) {
                first = first.min(s);
                last = last.max(e);
            } else {
                merged.push((s, e));
            }
        }
        merged.push((first, last));
        merged.sort_unstable();
        self.ranges = merged;
    }

    /// Whether the raw address is covered by any block.
    pub fn contains(&self, addr: u32) -> bool {
        match self.ranges.binary_search_by(|&(s, _)| s.cmp(&addr)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => addr <= self.ranges[i - 1].1,
        }
    }

    /// Whether the address is covered by any block.
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        self.contains(u32::from(addr))
    }

    /// Total number of addresses covered.
    pub fn covered(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(s, e)| (e as u64) - (s as u64) + 1)
            .sum()
    }

    /// Number of disjoint ranges after merging.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// The disjoint ranges, ascending by start, each inclusive.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }
}

impl FromIterator<Cidr> for Blocklist {
    fn from_iter<I: IntoIterator<Item = Cidr>>(iter: I) -> Self {
        let mut list = Blocklist::new();
        for block in iter {
            list.insert(block);
        }
        list
    }
}

impl Extend<Cidr> for Blocklist {
    fn extend<I: IntoIterator<Item = Cidr>>(&mut self, iter: I) {
        for block in iter {
            self.insert(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_contains_nothing() {
        let list = Blocklist::new();
        assert!(!list.contains(0));
        assert!(!list.contains(u32::MAX));
        assert_eq!(list.covered(), 0);
    }

    #[test]
    fn single_block() {
        let mut list = Blocklist::new();
        list.insert(cidr("10.0.0.0/8"));
        assert!(list.contains_addr(Ipv4Addr::new(10, 0, 0, 0)));
        assert!(list.contains_addr(Ipv4Addr::new(10, 255, 255, 255)));
        assert!(!list.contains_addr(Ipv4Addr::new(9, 255, 255, 255)));
        assert!(!list.contains_addr(Ipv4Addr::new(11, 0, 0, 0)));
        assert_eq!(list.covered(), 1 << 24);
    }

    #[test]
    fn merges_overlapping_blocks() {
        let mut list = Blocklist::new();
        list.insert(cidr("10.0.0.0/9"));
        list.insert(cidr("10.0.0.0/8"));
        assert_eq!(list.range_count(), 1);
        assert_eq!(list.covered(), 1 << 24);
    }

    #[test]
    fn merges_adjacent_blocks() {
        let mut list = Blocklist::new();
        list.insert(cidr("10.0.0.0/9"));
        list.insert(cidr("10.128.0.0/9"));
        assert_eq!(list.range_count(), 1);
        assert_eq!(list.covered(), 1 << 24);
    }

    #[test]
    fn keeps_disjoint_blocks_separate() {
        let mut list = Blocklist::new();
        list.insert(cidr("10.0.0.0/8"));
        list.insert(cidr("192.168.0.0/16"));
        assert_eq!(list.range_count(), 2);
        assert_eq!(list.covered(), (1 << 24) + (1 << 16));
    }

    #[test]
    fn reserved_blocklist_matches_table_1() {
        let list = Blocklist::reserved();
        assert_eq!(list.covered(), 592_708_864);
        // 224.0.0.0/4, 240.0.0.0/4 and 255.255.255.255/32 merge into one
        // range, so the sixteen blocks collapse to fewer ranges.
        assert!(list.range_count() <= 14);
        assert!(list.contains_addr(Ipv4Addr::new(127, 0, 0, 1)));
        assert!(list.contains_addr(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(!list.contains_addr(Ipv4Addr::new(8, 8, 4, 4)));
    }

    #[test]
    fn insert_at_space_boundaries() {
        let mut list = Blocklist::new();
        list.insert(cidr("0.0.0.0/8"));
        list.insert(cidr("255.255.255.255/32"));
        assert!(list.contains(0));
        assert!(list.contains(u32::MAX));
        assert!(!list.contains(u32::MAX - 1));
    }

    #[test]
    fn collect_from_iterator() {
        let list: Blocklist = ["10.0.0.0/8", "172.16.0.0/12"]
            .iter()
            .map(|s| cidr(s))
            .collect();
        assert_eq!(list.covered(), (1 << 24) + (1 << 20));
    }

    #[test]
    fn extend_merges() {
        let mut list = Blocklist::new();
        list.extend([cidr("10.0.0.0/9"), cidr("10.128.0.0/9")]);
        assert_eq!(list.range_count(), 1);
    }
}
