#![warn(missing_docs)]
//! IPv4 address-space utilities for Internet-wide scanning.
//!
//! This crate provides the address-space substrate used by the
//! open-resolver measurement pipeline:
//!
//! - [`Cidr`]: CIDR block arithmetic (`a.b.c.d/len`),
//! - [`reserved`]: the registry of RFC-reserved blocks excluded from
//!   probing (Table I of the paper),
//! - [`Blocklist`]: efficient membership tests over sets of CIDRs,
//! - [`ScanPermutation`]: a ZMap-style pseudorandom permutation of an
//!   address space based on iteration over a multiplicative group modulo
//!   a prime, so that a full scan visits every address exactly once in a
//!   hard-to-predict order without keeping per-address state.
//!
//! # Example
//!
//! ```
//! use orscope_ipspace::{reserved, Blocklist, ScanPermutation};
//!
//! let blocklist = Blocklist::reserved();
//! assert!(blocklist.contains(u32::from(std::net::Ipv4Addr::new(10, 0, 0, 1))));
//! assert_eq!(reserved::total_probeable(), 3_702_258_432);
//!
//! // A permutation over a small probe space: every address visited once.
//! let perm = ScanPermutation::new(1000, 42);
//! let mut seen: Vec<u32> = perm.iter().collect();
//! seen.sort_unstable();
//! assert_eq!(seen, (0..1000).collect::<Vec<_>>());
//! ```

pub mod allowed;
pub mod blocklist;
pub mod cidr;
pub mod permutation;
pub mod prime;
pub mod reserved;

pub use allowed::AllowedSpace;
pub use blocklist::Blocklist;
pub use cidr::{Cidr, ParseCidrError};
pub use permutation::{ScanPermutation, ScanPermutationIter};
