//! The complement of a blocklist: rank <-> address mapping over the
//! allowed (probeable) address space.
//!
//! Scaled-down campaigns scan every `k`-th probeable address. That needs
//! an order-preserving bijection between "probeable rank" (0-based index
//! among non-reserved addresses) and the actual IPv4 address, skipping
//! the reserved ranges of Table I.

use std::net::Ipv4Addr;

use crate::blocklist::Blocklist;

/// An indexable view of the addresses *not* covered by a blocklist.
///
/// # Example
///
/// ```
/// use orscope_ipspace::{AllowedSpace, Blocklist};
///
/// let space = AllowedSpace::probeable();
/// assert_eq!(space.len(), 3_702_258_432);
/// let first = space.nth(0).unwrap();
/// assert_eq!(u32::from(first), 0x0100_0000, "0.0.0.0/8 is skipped");
/// assert_eq!(space.rank(first), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowedSpace {
    /// Disjoint inclusive allowed ranges, ascending.
    ranges: Vec<(u32, u32)>,
    /// `cumulative[i]` = number of allowed addresses before `ranges[i]`.
    cumulative: Vec<u64>,
    /// Total allowed addresses.
    total: u64,
}

impl AllowedSpace {
    /// Builds the complement of `blocklist` over the full IPv4 space.
    pub fn new(blocklist: &Blocklist) -> Self {
        let mut ranges = Vec::new();
        let mut next: u64 = 0; // next uncovered address candidate
        for &(s, e) in blocklist.ranges() {
            if (s as u64) > next {
                ranges.push((next as u32, s - 1));
            }
            next = e as u64 + 1;
        }
        if next <= u32::MAX as u64 {
            ranges.push((next as u32, u32::MAX));
        }
        let mut cumulative = Vec::with_capacity(ranges.len());
        let mut total = 0u64;
        for &(s, e) in &ranges {
            cumulative.push(total);
            total += e as u64 - s as u64 + 1;
        }
        Self {
            ranges,
            cumulative,
            total,
        }
    }

    /// The probeable Internet: everything outside the Table I reserves.
    pub fn probeable() -> Self {
        Self::new(&Blocklist::reserved())
    }

    /// Number of allowed addresses.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// The `rank`-th allowed address in ascending order, if in range.
    pub fn nth(&self, rank: u64) -> Option<Ipv4Addr> {
        if rank >= self.total {
            return None;
        }
        // Find the last range whose cumulative start is <= rank.
        let i = match self.cumulative.binary_search(&rank) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (s, _) = self.ranges[i];
        Some(Ipv4Addr::from(
            (s as u64 + (rank - self.cumulative[i])) as u32,
        ))
    }

    /// The rank of `addr` among allowed addresses, or `None` if blocked.
    pub fn rank(&self, addr: Ipv4Addr) -> Option<u64> {
        let a = u32::from(addr);
        let i = match self.ranges.binary_search_by(|&(s, _)| s.cmp(&a)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (s, e) = self.ranges[i];
        if a > e {
            return None;
        }
        Some(self.cumulative[i] + (a as u64 - s as u64))
    }

    /// Whether `addr` is allowed (not blocked).
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.rank(addr).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cidr::Cidr;
    use crate::reserved;

    #[test]
    fn probeable_count_matches_reserved_registry() {
        let space = AllowedSpace::probeable();
        assert_eq!(space.len(), reserved::total_probeable());
    }

    #[test]
    fn nth_and_rank_are_inverse_at_boundaries() {
        let space = AllowedSpace::probeable();
        for rank in [
            0u64,
            1,
            1_000_000,
            space.len() / 2,
            space.len() - 2,
            space.len() - 1,
        ] {
            let addr = space.nth(rank).unwrap();
            assert_eq!(space.rank(addr), Some(rank), "rank {rank} -> {addr}");
            assert!(!reserved::is_reserved(u32::from(addr)));
        }
        assert_eq!(space.nth(space.len()), None);
    }

    #[test]
    fn first_allowed_address_skips_zero_slash_eight() {
        let space = AllowedSpace::probeable();
        assert_eq!(space.nth(0), Some(Ipv4Addr::new(1, 0, 0, 0)));
    }

    #[test]
    fn last_allowed_address_is_below_multicast() {
        let space = AllowedSpace::probeable();
        let last = space.nth(space.len() - 1).unwrap();
        assert_eq!(last, Ipv4Addr::new(223, 255, 255, 255));
    }

    #[test]
    fn reserved_addresses_have_no_rank() {
        let space = AllowedSpace::probeable();
        for blocked in [
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(127, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 1),
            Ipv4Addr::new(224, 0, 0, 1),
            Ipv4Addr::new(255, 255, 255, 255),
            Ipv4Addr::new(0, 0, 0, 0),
        ] {
            assert_eq!(space.rank(blocked), None, "{blocked}");
            assert!(!space.contains(blocked));
        }
    }

    #[test]
    fn empty_blocklist_is_identity() {
        let space = AllowedSpace::new(&Blocklist::new());
        assert_eq!(space.len(), 1 << 32);
        assert_eq!(space.nth(0), Some(Ipv4Addr::new(0, 0, 0, 0)));
        assert_eq!(
            space.nth((1 << 32) - 1),
            Some(Ipv4Addr::new(255, 255, 255, 255))
        );
        assert_eq!(space.rank(Ipv4Addr::new(0, 0, 1, 0)), Some(256));
    }

    #[test]
    fn full_blocklist_is_empty() {
        let mut list = Blocklist::new();
        list.insert(Cidr::entire_space());
        let space = AllowedSpace::new(&list);
        assert_eq!(space.len(), 0);
        assert_eq!(space.nth(0), None);
    }

    #[test]
    fn ranks_are_dense_and_ordered() {
        let mut list = Blocklist::new();
        list.insert("0.0.0.0/4".parse().unwrap());
        list.insert("128.0.0.0/4".parse().unwrap());
        let space = AllowedSpace::new(&list);
        let mut prev = None;
        for rank in (0..space.len()).step_by((space.len() / 100) as usize) {
            let addr = space.nth(rank).unwrap();
            assert_eq!(space.rank(addr), Some(rank));
            if let Some(p) = prev {
                assert!(addr > p);
            }
            prev = Some(addr);
        }
    }
}
