//! The reputation database.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::category::Category;
use crate::report::Report;

/// A queryable store of per-IP threat reports, mimicking the Cymon API.
///
/// # Example
///
/// ```
/// use orscope_threatintel::{Category, Report, ThreatDb};
/// use std::net::Ipv4Addr;
///
/// let mut db = ThreatDb::new();
/// let ip = Ipv4Addr::new(208, 91, 197, 91);
/// db.add_report(ip, Report::new(Category::Malware));
/// db.add_report(ip, Report::new(Category::Malware));
/// db.add_report(ip, Report::new(Category::Phishing));
/// assert_eq!(db.dominant_category(ip), Some(Category::Malware));
/// assert!(db.is_reported(ip));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThreatDb {
    reports: HashMap<Ipv4Addr, Vec<Report>>,
}

impl ThreatDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a report for `ip`.
    pub fn add_report(&mut self, ip: Ipv4Addr, report: Report) {
        self.reports.entry(ip).or_default().push(report);
    }

    /// Seeds `ip` with `count` reports of `category` (bulk loading).
    pub fn seed(&mut self, ip: Ipv4Addr, category: Category, count: usize) {
        let entry = self.reports.entry(ip).or_default();
        for day in 0..count {
            entry.push(Report::new(category).on_day(day as u32));
        }
    }

    /// All reports for `ip` (empty slice if never reported).
    pub fn lookup(&self, ip: Ipv4Addr) -> &[Report] {
        self.reports.get(&ip).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `ip` has at least one report.
    pub fn is_reported(&self, ip: Ipv4Addr) -> bool {
        self.reports.contains_key(&ip)
    }

    /// The most frequently reported category for `ip`, the paper's rule
    /// for multi-category addresses (Table IX). Ties break toward the
    /// earlier category in Table IX order (Malware first), matching the
    /// severity-leaning reading of the paper.
    pub fn dominant_category(&self, ip: Ipv4Addr) -> Option<Category> {
        let reports = self.reports.get(&ip)?;
        let mut counts: HashMap<Category, usize> = HashMap::new();
        for r in reports {
            *counts.entry(r.category).or_default() += 1;
        }
        Category::ALL
            .iter()
            .copied()
            .filter_map(|c| counts.get(&c).map(|&n| (c, n)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }

    /// Number of distinct reported addresses.
    pub fn reported_address_count(&self) -> usize {
        self.reports.len()
    }

    /// Iterates `(ip, dominant category)` over all reported addresses.
    pub fn iter_dominant(&self) -> impl Iterator<Item = (Ipv4Addr, Category)> + '_ {
        self.reports
            .keys()
            .map(move |&ip| (ip, self.dominant_category(ip).expect("reported ip")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ipv4Addr = Ipv4Addr::new(74, 220, 199, 15);

    #[test]
    fn empty_db() {
        let db = ThreatDb::new();
        assert!(!db.is_reported(IP));
        assert_eq!(db.dominant_category(IP), None);
        assert!(db.lookup(IP).is_empty());
        assert_eq!(db.reported_address_count(), 0);
    }

    #[test]
    fn dominant_is_most_frequent() {
        let mut db = ThreatDb::new();
        db.seed(IP, Category::Phishing, 5);
        db.seed(IP, Category::Malware, 2);
        assert_eq!(db.dominant_category(IP), Some(Category::Phishing));
        assert_eq!(db.lookup(IP).len(), 7);
    }

    #[test]
    fn ties_break_toward_earlier_table_ix_row() {
        let mut db = ThreatDb::new();
        db.seed(IP, Category::Botnet, 3);
        db.seed(IP, Category::Malware, 3);
        assert_eq!(db.dominant_category(IP), Some(Category::Malware));
    }

    #[test]
    fn single_report_dominates() {
        let mut db = ThreatDb::new();
        db.add_report(IP, Report::new(Category::Scan));
        assert_eq!(db.dominant_category(IP), Some(Category::Scan));
    }

    #[test]
    fn iter_dominant_covers_all() {
        let mut db = ThreatDb::new();
        db.seed(IP, Category::Malware, 1);
        db.seed(Ipv4Addr::new(1, 2, 3, 4), Category::Spam, 2);
        let mut cats: Vec<_> = db.iter_dominant().collect();
        cats.sort();
        assert_eq!(cats.len(), 2);
        assert_eq!(db.reported_address_count(), 2);
    }
}

/// JSON persistence: a threat feed can be exported and re-imported, the
/// way real reputation feeds are distributed as daily dumps.
impl ThreatDb {
    /// Serializes the full report store to JSON.
    pub fn to_json(&self) -> serde_json::Value {
        let entries: Vec<serde_json::Value> = {
            let mut keys: Vec<_> = self.reports.keys().collect();
            keys.sort();
            keys.into_iter()
                .map(|ip| {
                    serde_json::json!({
                        "ip": ip.to_string(),
                        "reports": self.reports[ip],
                    })
                })
                .collect()
        };
        serde_json::json!({ "format": "orscope-threat-feed/1", "entries": entries })
    }

    /// Loads a feed produced by [`ThreatDb::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn from_json(value: &serde_json::Value) -> Result<Self, String> {
        if value.get("format").and_then(|f| f.as_str()) != Some("orscope-threat-feed/1") {
            return Err("unknown feed format".into());
        }
        let mut db = ThreatDb::new();
        let entries = value
            .get("entries")
            .and_then(|e| e.as_array())
            .ok_or("missing entries array")?;
        for entry in entries {
            let ip: Ipv4Addr = entry
                .get("ip")
                .and_then(|v| v.as_str())
                .ok_or("entry without ip")?
                .parse()
                .map_err(|e| format!("bad ip: {e}"))?;
            let reports: Vec<Report> = serde_json::from_value(
                entry
                    .get("reports")
                    .cloned()
                    .ok_or("entry without reports")?,
            )
            .map_err(|e| format!("bad reports for {ip}: {e}"))?;
            for report in reports {
                db.add_report(ip, report);
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn feed_roundtrip() {
        let mut db = ThreatDb::new();
        db.seed(Ipv4Addr::new(74, 220, 199, 15), Category::Malware, 3);
        db.seed(Ipv4Addr::new(208, 91, 197, 91), Category::Phishing, 2);
        db.add_report(
            Ipv4Addr::new(208, 91, 197, 91),
            Report::new(Category::Botnet),
        );
        let json = db.to_json();
        let back = ThreatDb::from_json(&json).unwrap();
        assert_eq!(back.reported_address_count(), 2);
        assert_eq!(
            back.dominant_category(Ipv4Addr::new(74, 220, 199, 15)),
            Some(Category::Malware)
        );
        assert_eq!(back.lookup(Ipv4Addr::new(208, 91, 197, 91)).len(), 3);
        // Serialization is stable (sorted by address).
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn rejects_malformed_feeds() {
        assert!(ThreatDb::from_json(&serde_json::json!({})).is_err());
        assert!(ThreatDb::from_json(&serde_json::json!({
            "format": "orscope-threat-feed/1",
            "entries": [{"ip": "not-an-ip", "reports": []}]
        }))
        .is_err());
    }
}
