//! Individual threat reports.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::category::Category;

/// The feed a report came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportSource {
    /// Aggregated community feed (the Cymon analogue).
    CommunityFeed,
    /// Dedicated ransomware tracker (the abuse.ch analogue that flagged
    /// 208.91.197.91 in the paper).
    RansomwareTracker,
    /// Honeypot-derived sighting.
    Honeypot,
    /// Manual analyst submission.
    Analyst,
}

/// A single report: category, source, and a day-granularity timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// What the address was reported for.
    pub category: Category,
    /// Where the report came from.
    pub source: ReportSource,
    /// Days since the feed epoch (ordering only).
    pub day: u32,
}

impl Report {
    /// Creates a report from the community feed on day 0.
    pub fn new(category: Category) -> Self {
        Self {
            category,
            source: ReportSource::CommunityFeed,
            day: 0,
        }
    }

    /// Builder-style source override.
    pub fn with_source(mut self, source: ReportSource) -> Self {
        self.source = source;
        self
    }

    /// Builder-style day override.
    pub fn on_day(mut self, day: u32) -> Self {
        self.day = day;
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?}, day {})", self.category, self.source, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let r = Report::new(Category::Phishing)
            .with_source(ReportSource::Honeypot)
            .on_day(42);
        assert_eq!(r.category, Category::Phishing);
        assert_eq!(r.source, ReportSource::Honeypot);
        assert_eq!(r.day, 42);
    }

    #[test]
    fn display() {
        let r = Report::new(Category::Malware);
        assert!(r.to_string().contains("Malware"));
    }
}
