//! Threat report categories.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The report categories of Table IX, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Malware distribution or command-and-control.
    Malware,
    /// Phishing pages (credential theft).
    Phishing,
    /// Spam sources.
    Spam,
    /// SSH brute-force sources.
    SshBruteforce,
    /// Network scanning sources.
    Scan,
    /// Botnet membership.
    Botnet,
    /// Email brute-force sources.
    EmailBruteforce,
}

impl Category {
    /// All categories, in Table IX row order.
    pub const ALL: [Category; 7] = [
        Category::Malware,
        Category::Phishing,
        Category::Spam,
        Category::SshBruteforce,
        Category::Scan,
        Category::Botnet,
        Category::EmailBruteforce,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Malware => "Malware",
            Category::Phishing => "Phishing",
            Category::Spam => "Spam",
            Category::SshBruteforce => "SSH Bruteforce",
            Category::Scan => "Scan",
            Category::Botnet => "Botnet",
            Category::EmailBruteforce => "Email Bruteforce",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_categories_in_paper_order() {
        assert_eq!(Category::ALL.len(), 7);
        assert_eq!(Category::ALL[0], Category::Malware);
        assert_eq!(Category::ALL[6], Category::EmailBruteforce);
    }

    #[test]
    fn display_matches_table_ix_labels() {
        let labels: Vec<String> = Category::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            labels,
            vec![
                "Malware",
                "Phishing",
                "Spam",
                "SSH Bruteforce",
                "Scan",
                "Botnet",
                "Email Bruteforce"
            ]
        );
    }
}
