#![warn(missing_docs)]
//! A Cymon-like threat-intelligence reputation database.
//!
//! The paper validates suspicious answer addresses against Cymon (and
//! Ransomware Tracker): each IP may carry reports in categories such as
//! malware, phishing or botnet, and when an address has reports in several
//! categories the most frequently reported one is selected (Table IX).
//! Cymon was shut down in 2019; this crate reimplements its lookup
//! semantics over a locally seeded report store.

pub mod category;
pub mod db;
pub mod report;

pub use category::Category;
pub use db::ThreatDb;
pub use report::{Report, ReportSource};
