//! Property tests over the calibrated population generator: at any
//! scale, the generated hosts must stay faithful to the paper's cells.

use proptest::prelude::*;

use orscope_resolver::paper::{AnswerClass, Year, YearSpec};
use orscope_resolver::population::{Population, PopulationConfig};
use orscope_resolver::scaling::{apportion, scale_counts};
use orscope_resolver::{AnswerData, ResponseAction};

fn year_strategy() -> impl Strategy<Value = Year> {
    prop_oneof![Just(Year::Y2013), Just(Year::Y2018)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The population total equals round(R2 / scale) at any scale.
    #[test]
    fn totals_track_scale(
        year in year_strategy(),
        scale in 1_000.0f64..50_000.0,
        seed in any::<u64>(),
    ) {
        let mut config = PopulationConfig::new(year, scale);
        config.seed = seed;
        let population = Population::generate(&config);
        let expected = (YearSpec::get(year).r2 as f64 / scale).round() as u64;
        prop_assert_eq!(population.resolvers.len() as u64, expected);
    }

    /// Class marginals survive scaling within per-cell rounding: the
    /// recursing (correct-answer) share matches Table III.
    #[test]
    fn recursing_share_matches_table_3(
        year in year_strategy(),
        scale in 1_000.0f64..20_000.0,
    ) {
        let population = Population::generate(&PopulationConfig::new(year, scale));
        let spec = YearSpec::get(year);
        let expected = spec.answer_class_total(AnswerClass::Correct) as f64 / scale;
        let recursing = population
            .resolvers()
            .filter(|r| r.policy.recurses())
            .count() as f64;
        // Largest-remainder rounding across ~7 correct cells: off by at
        // most the cell count.
        prop_assert!((recursing - expected).abs() <= 8.0, "{recursing} vs {expected}");
    }

    /// Malicious resolvers always carry a category, a country, and a
    /// fixed IP answer; nothing else carries a category.
    #[test]
    fn malicious_invariants(
        year in year_strategy(),
        scale in 1_000.0f64..20_000.0,
        seed in any::<u64>(),
    ) {
        let mut config = PopulationConfig::new(year, scale);
        config.seed = seed;
        let population = Population::generate(&config);
        for resolver in population.resolvers() {
            match resolver.policy.malicious_category {
                Some(_) => {
                    prop_assert!(resolver.country.is_some());
                    let ResponseAction::Immediate(imm) = &resolver.policy.action else {
                        return Err(TestCaseError::fail("malicious must be immediate"));
                    };
                    prop_assert!(matches!(imm.answer, Some(AnswerData::FixedIp(_))));
                    prop_assert_eq!(imm.rcode, orscope_dns_wire::Rcode::NoError);
                }
                None => prop_assert!(resolver.country.is_none()),
            }
        }
        // Malicious count tracks Table IX within rounding.
        let malicious = population
            .resolvers()
            .filter(|r| r.policy.malicious_category.is_some())
            .count() as f64;
        let expected = YearSpec::get(year).malicious_r2() as f64 / scale;
        prop_assert!((malicious - expected).abs() <= 4.0, "{malicious} vs {expected}");
    }

    /// scale_counts is consistent with apportion at the same target.
    #[test]
    fn scale_counts_matches_apportion(
        counts in prop::collection::vec(0u64..1_000_000, 1..20),
        scale in 1.0f64..10_000.0,
    ) {
        let scaled = scale_counts(&counts, scale);
        let total: u64 = counts.iter().sum();
        let target = (total as f64 / scale).round() as u64;
        prop_assert_eq!(scaled, apportion(&counts, target));
    }

    /// Apportionment satisfies quota: every cell gets floor or ceil of
    /// its exact share.
    #[test]
    fn apportion_satisfies_quota(
        counts in prop::collection::vec(0u64..1_000_000, 1..20),
        target in 0u64..100_000,
    ) {
        let out = apportion(&counts, target);
        let total: u64 = counts.iter().sum();
        if total == 0 {
            prop_assert!(out.iter().all(|&v| v == 0));
        } else {
            prop_assert_eq!(out.iter().sum::<u64>(), target);
            for (&c, &got) in counts.iter().zip(&out) {
                let share = c as f64 * target as f64 / total as f64;
                prop_assert!(got as f64 >= share.floor(), "{got} < floor({share})");
                prop_assert!(got as f64 <= share.ceil(), "{got} > ceil({share})");
            }
        }
    }

    /// Population generation is a pure function of its config.
    #[test]
    fn generation_is_deterministic(
        year in year_strategy(),
        seed in any::<u64>(),
    ) {
        let mut config = PopulationConfig::new(year, 20_000.0);
        config.seed = seed;
        let a = Population::generate(&config);
        let b = Population::generate(&config);
        prop_assert_eq!(a.resolvers, b.resolvers);
        prop_assert_eq!(a.malicious_answers, b.malicious_answers);
        // Identical host lists can only compare equal if the two runs
        // also interned profiles in the same order.
        prop_assert_eq!(a.table().len(), b.table().len());
    }

    /// Every in-use policy round-trips through the interned table:
    /// `lookup` finds it, and its id resolves back to an equal policy.
    #[test]
    fn profile_ids_round_trip(
        year in year_strategy(),
        scale in 20_000.0f64..60_000.0,
        seed in any::<u64>(),
        forwarder_fraction in 0.0f64..0.5,
    ) {
        let mut config = PopulationConfig::new(year, scale);
        config.seed = seed;
        config.forwarder_fraction = forwarder_fraction;
        config.off_port_responders = 3;
        let population = Population::generate(&config);
        let table = population.table();
        for host in population
            .resolvers()
            .chain(population.off_port())
            .chain(population.upstreams())
        {
            let id = table.lookup(host.policy).expect("in-use policy interned");
            prop_assert_eq!(&**table.get(id), &**host.policy);
        }
    }

    /// The table is exactly the set of distinct in-use policies: no two
    /// distinct policies share an id (ids resolve injectively) and no
    /// orphaned entries survive generation — `table.len()` equals the
    /// number of unique policies across all three host lists.
    #[test]
    fn profile_table_is_exactly_the_unique_policies(
        year in year_strategy(),
        scale in 20_000.0f64..60_000.0,
        seed in any::<u64>(),
        forwarder_fraction in 0.0f64..0.5,
    ) {
        let mut config = PopulationConfig::new(year, scale);
        config.seed = seed;
        config.forwarder_fraction = forwarder_fraction;
        config.off_port_responders = 3;
        let population = Population::generate(&config);
        let table = population.table();
        let mut ids = std::collections::HashSet::new();
        let mut unique_policies = std::collections::HashSet::new();
        for host in population
            .resolvers()
            .chain(population.off_port())
            .chain(population.upstreams())
        {
            let id = table.lookup(host.policy).expect("in-use policy interned");
            ids.insert(id);
            unique_policies.insert((**host.policy).clone());
        }
        // Distinct policies got distinct ids...
        prop_assert_eq!(ids.len(), unique_policies.len());
        // ...and the table holds nothing beyond them.
        prop_assert_eq!(table.len(), unique_policies.len());
    }
}
