//! Behavior profiles: how a probed host answers a DNS query.
//!
//! Every behavioural category in the paper's Tables III-X corresponds to
//! a [`ResponsePolicy`]:
//!
//! | Paper observation | Policy |
//! |---|---|
//! | Honest open resolver (RA=1, correct answer) | `Recurse { ra: true, aa: false, .. }` |
//! | Correct answer but RA=0 (Table IV's 3,994) | `Recurse { ra: false, .. }` |
//! | Correct answer with AA=1 (Table V) | `Recurse { aa: true, .. }` |
//! | Answer + nonzero rcode (Table VI's 2,715) | `Recurse { rcode_override: Some(..) }` |
//! | Wrong/malicious IP answers (Tables VII-X) | `Immediate` with a fixed [`AnswerData`] |
//! | Refused/ServFail/... without answer | `Immediate` with `answer: None` and an rcode |
//! | Empty `dns_question` responders (§IV-B4) | `Immediate { empty_question: true, .. }` |
//! | Undecodable 2013 responses (Table VII N/A) | `Immediate { malformed_rdata: true, .. }` |
//! | Off-port responders (the ZMap blind spot, §V) | `Immediate { src_port: Some(p), .. }` |

use std::net::Ipv4Addr;

use orscope_dns_wire::Rcode;
use orscope_threatintel::Category;

/// The answer payload of a misbehaving responder.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AnswerData {
    /// An A record with a fixed (wrong) address — the dominant incorrect
    /// form (Table VII "IP").
    FixedIp(Ipv4Addr),
    /// A CNAME pointing at a redirect host (Table VII "URL", e.g.
    /// `u.dcoin.co`).
    Url(String),
    /// A TXT-style string answer (Table VII "string", e.g. `wild`, `OK`).
    Text(String),
}

/// A canned response: no recursion happens at all.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImmediateResponse {
    /// Answer-section payload; `None` leaves the answer section empty.
    pub answer: Option<AnswerData>,
    /// Value of the Recursion Available bit.
    pub ra: bool,
    /// Value of the Authoritative Answer bit.
    pub aa: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Strip the question section (the 494 packets of §IV-B4).
    pub empty_question: bool,
    /// Answer from this source port instead of 53 (ZMap blind spot).
    pub src_port: Option<u16>,
    /// Corrupt the answer rdata length on the wire so the capture side
    /// cannot decode the answer (the 8,764 N/A packets of 2013).
    pub malformed_rdata: bool,
}

impl ImmediateResponse {
    /// A refusal: no answer, rcode `Refused`, RA=0 — the single most
    /// common R2 in both scans (2.9M packets in 2018).
    pub fn refused() -> Self {
        Self {
            answer: None,
            ra: false,
            aa: false,
            rcode: Rcode::Refused,
            empty_question: false,
            src_port: None,
            malformed_rdata: false,
        }
    }

    /// No answer with an arbitrary flag/rcode combination.
    pub fn empty(ra: bool, aa: bool, rcode: Rcode) -> Self {
        Self {
            answer: None,
            ra,
            aa,
            rcode,
            empty_question: false,
            src_port: None,
            malformed_rdata: false,
        }
    }

    /// A fixed wrong-answer response (rcode NoError).
    pub fn wrong_answer(answer: AnswerData, ra: bool, aa: bool) -> Self {
        Self {
            answer: Some(answer),
            ra,
            aa,
            rcode: Rcode::NoError,
            empty_question: false,
            src_port: None,
            malformed_rdata: false,
        }
    }
}

/// A policy that really recurses, then (possibly) lies in the header.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecursePolicy {
    /// RA bit in the final response (standard behaviour: `true`).
    pub ra: bool,
    /// AA bit in the final response (standard behaviour: `false`).
    pub aa: bool,
    /// Replace the rcode in the final response (Table VI's nonzero-rcode-
    /// with-answer packets).
    pub rcode_override: Option<Rcode>,
    /// Total identical queries sent to the authoritative server per
    /// resolution (>= 1). Real resolver farms re-ask; this is what makes
    /// the paper's Q2 roughly 2-4x its R2.
    pub auth_duplicates: u16,
}

impl Default for RecursePolicy {
    /// Standard-conforming recursion.
    fn default() -> Self {
        Self {
            ra: true,
            aa: false,
            rcode_override: None,
            auth_duplicates: 1,
        }
    }
}

/// A DNS forwarder (proxy): the home-router pattern Schomp et al.
/// distinguish from true recursive resolvers. It performs no iteration
/// itself; it relays the query to a configured upstream resolver and
/// relays the answer back.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForwardPolicy {
    /// The upstream recursive resolver queries are relayed to.
    pub upstream: std::net::Ipv4Addr,
    /// RA bit stamped on relayed responses. Many cheap CPE devices
    /// forward the upstream's answer but rewrite flags; `None` passes
    /// the upstream's RA through unchanged.
    pub ra_override: Option<bool>,
}

/// What a probed host does with an incoming query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ResponseAction {
    /// Accept the packet but never answer (port open, service mute).
    Silent,
    /// Answer from configuration without recursing.
    Immediate(ImmediateResponse),
    /// Perform real iterative resolution, then answer.
    Recurse(RecursePolicy),
    /// Relay to an upstream resolver (a DNS proxy / home router).
    Forward(ForwardPolicy),
}

/// Coarse behavioral classes over [`ResponsePolicy`] — the unit of the
/// observatory's profile-drift transition matrix.
///
/// Classification is total: every policy the population generator can
/// produce maps to exactly one class, so per-class counts always sum to
/// the population size. The classes mirror the paper's behavioral
/// buckets (honest forwarding, NXDOMAIN walls, ad redirection, outright
/// malice) at the granularity churn drifts between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProfileClass {
    /// Standards-conforming recursion with a correct answer.
    Honest,
    /// Recurses but rewrites the rcode (filtering middleboxes).
    Filtering,
    /// Relays to an upstream resolver (CPE proxy).
    Forwarder,
    /// Answers immediately with a wrong value (ad redirection et al.).
    Misdirecting,
    /// Reported in threat intelligence: a malicious redirector.
    Malicious,
    /// Answers Refused without an answer section.
    Refusing,
    /// Answers NXDOMAIN for every name (the NXDOMAIN wall).
    NxWall,
    /// Some other immediate answer-less response (ServFail, FormErr,
    /// empty NoError, malformed packets).
    OtherImmediate,
    /// Accepts the packet but never answers.
    Silent,
}

impl ProfileClass {
    /// Every class, in matrix row/column order.
    pub const ALL: [ProfileClass; 9] = [
        ProfileClass::Honest,
        ProfileClass::Filtering,
        ProfileClass::Forwarder,
        ProfileClass::Misdirecting,
        ProfileClass::Malicious,
        ProfileClass::Refusing,
        ProfileClass::NxWall,
        ProfileClass::OtherImmediate,
        ProfileClass::Silent,
    ];

    /// Stable label (used in served JSON and Prometheus labels).
    pub fn as_str(self) -> &'static str {
        match self {
            ProfileClass::Honest => "honest",
            ProfileClass::Filtering => "filtering",
            ProfileClass::Forwarder => "forwarder",
            ProfileClass::Misdirecting => "misdirecting",
            ProfileClass::Malicious => "malicious",
            ProfileClass::Refusing => "refusing",
            ProfileClass::NxWall => "nxwall",
            ProfileClass::OtherImmediate => "other",
            ProfileClass::Silent => "silent",
        }
    }

    /// Position in [`ProfileClass::ALL`].
    pub fn index(self) -> usize {
        ProfileClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("ALL is exhaustive")
    }
}

impl std::fmt::Display for ProfileClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The full behavior profile of one probed host.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResponsePolicy {
    /// How queries are answered.
    pub action: ResponseAction,
    /// For malicious redirectors: the threat category their answer
    /// address is reported under (drives Tables VIII-X).
    pub malicious_category: Option<Category>,
    /// The software banner served for `version.bind CH TXT` queries
    /// (`None` refuses them). Software surveys like Takano et al.'s use
    /// this channel to fingerprint the resolver population.
    pub version_banner: Option<String>,
}

impl ResponsePolicy {
    /// An honest, standards-conforming open resolver.
    pub fn honest() -> Self {
        Self {
            action: ResponseAction::Recurse(RecursePolicy::default()),
            malicious_category: None,
            version_banner: None,
        }
    }

    /// A refusing resolver (closed to the public).
    pub fn refusing() -> Self {
        Self {
            action: ResponseAction::Immediate(ImmediateResponse::refused()),
            malicious_category: None,
            version_banner: None,
        }
    }

    /// A malicious redirector: answers every query with `target`,
    /// rcode NoError (the paper found *all* 26,926 malicious responses
    /// carried rcode 0), with the given flag bits.
    pub fn malicious(target: Ipv4Addr, ra: bool, aa: bool, category: Category) -> Self {
        Self {
            action: ResponseAction::Immediate(ImmediateResponse::wrong_answer(
                AnswerData::FixedIp(target),
                ra,
                aa,
            )),
            malicious_category: Some(category),
            version_banner: None,
        }
    }

    /// A forwarder relaying to `upstream`.
    pub fn forwarder(upstream: std::net::Ipv4Addr) -> Self {
        Self {
            action: ResponseAction::Forward(ForwardPolicy {
                upstream,
                ra_override: None,
            }),
            malicious_category: None,
            version_banner: None,
        }
    }

    /// Builder-style version banner.
    pub fn with_version_banner(mut self, banner: impl Into<String>) -> Self {
        self.version_banner = Some(banner.into());
        self
    }

    /// Whether this profile recurses (and therefore produces Q2 traffic).
    pub fn recurses(&self) -> bool {
        matches!(self.action, ResponseAction::Recurse(_))
    }

    /// Whether this profile forwards to an upstream resolver.
    pub fn forwards(&self) -> bool {
        matches!(self.action, ResponseAction::Forward(_))
    }

    /// The coarse behavioral class of this policy (see
    /// [`ProfileClass`]).
    pub fn class(&self) -> ProfileClass {
        if self.malicious_category.is_some() {
            return ProfileClass::Malicious;
        }
        match &self.action {
            ResponseAction::Recurse(rp) => {
                if rp.rcode_override.is_some() {
                    ProfileClass::Filtering
                } else {
                    ProfileClass::Honest
                }
            }
            ResponseAction::Forward(_) => ProfileClass::Forwarder,
            ResponseAction::Silent => ProfileClass::Silent,
            ResponseAction::Immediate(ir) => {
                if ir.answer.is_some() {
                    ProfileClass::Misdirecting
                } else {
                    match ir.rcode {
                        Rcode::Refused => ProfileClass::Refusing,
                        Rcode::NXDomain => ProfileClass::NxWall,
                        _ => ProfileClass::OtherImmediate,
                    }
                }
            }
        }
    }

    /// The upstream address a forwarder relays to, if any. Sharded
    /// campaigns use this as the host's placement affinity: a forwarder
    /// must live in the same partition as its upstream or the relayed
    /// query would cross a shard boundary.
    pub fn upstream_addr(&self) -> Option<Ipv4Addr> {
        match &self.action {
            ResponseAction::Forward(fp) => Some(fp.upstream),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_profile_is_standard() {
        let p = ResponsePolicy::honest();
        assert!(p.recurses());
        match p.action {
            ResponseAction::Recurse(rp) => {
                assert!(rp.ra);
                assert!(!rp.aa);
                assert_eq!(rp.rcode_override, None);
                assert_eq!(rp.auth_duplicates, 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn refused_profile_matches_paper_shape() {
        let p = ResponsePolicy::refusing();
        assert!(!p.recurses());
        match p.action {
            ResponseAction::Immediate(imm) => {
                assert_eq!(imm.rcode, Rcode::Refused);
                assert!(imm.answer.is_none());
                assert!(!imm.ra);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn malicious_profile_always_noerror() {
        let p = ResponsePolicy::malicious(
            Ipv4Addr::new(208, 91, 197, 91),
            false,
            true,
            Category::Malware,
        );
        match p.action {
            ResponseAction::Immediate(imm) => {
                assert_eq!(imm.rcode, Rcode::NoError);
                assert!(imm.aa);
                assert!(!imm.ra);
                assert!(matches!(imm.answer, Some(AnswerData::FixedIp(_))));
            }
            _ => unreachable!(),
        }
        assert_eq!(p.malicious_category, Some(Category::Malware));
    }

    #[test]
    fn classification_is_total_and_stable() {
        assert_eq!(ResponsePolicy::honest().class(), ProfileClass::Honest);
        assert_eq!(ResponsePolicy::refusing().class(), ProfileClass::Refusing);
        assert_eq!(
            ResponsePolicy::forwarder(Ipv4Addr::new(9, 9, 9, 9)).class(),
            ProfileClass::Forwarder
        );
        assert_eq!(
            ResponsePolicy::malicious(Ipv4Addr::new(1, 2, 3, 4), true, false, Category::Malware)
                .class(),
            ProfileClass::Malicious
        );
        let nxwall = ResponsePolicy {
            action: ResponseAction::Immediate(ImmediateResponse::empty(
                true,
                false,
                Rcode::NXDomain,
            )),
            malicious_category: None,
            version_banner: None,
        };
        assert_eq!(nxwall.class(), ProfileClass::NxWall);
        let silent = ResponsePolicy {
            action: ResponseAction::Silent,
            malicious_category: None,
            version_banner: None,
        };
        assert_eq!(silent.class(), ProfileClass::Silent);
        // Indexing round-trips through ALL.
        for (i, class) in ProfileClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        // Labels are unique (Prometheus label safety).
        let labels: std::collections::HashSet<_> =
            ProfileClass::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(labels.len(), ProfileClass::ALL.len());
    }
}
