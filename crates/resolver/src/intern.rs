//! Profile interning: the compact half of paper-scale populations.
//!
//! `Population::generate` draws every host's behavior from a small
//! number of calibrated year-spec cells, so a full-scale population of
//! millions of responders contains only a few hundred *distinct*
//! [`ResponsePolicy`] values (banner variants included). A
//! [`ProfileTable`] stores each distinct policy exactly once behind an
//! `Arc` and hands out dense `u32` ids; a planned responder is then a
//! packed IPv4 address plus a profile id plus a country id — a few
//! bytes of struct-of-arrays storage instead of an owned policy with
//! its heap-allocated banners and URLs (see
//! [`crate::population::HostList`]).
//!
//! The `Arc` is deliberate: lazily materialized resolver endpoints
//! share the interned policy instead of cloning it, so materializing a
//! host on first packet delivery allocates no policy state at all.

use std::sync::Arc;

use orscope_netsim::fxhash::FxHashMap;

use crate::profile::ResponsePolicy;

/// Dense index of a policy in a [`ProfileTable`].
pub type ProfileId = u32;

/// Country id marking "no country assigned".
pub const COUNTRY_NONE: u16 = u16::MAX;

/// An interning table over [`ResponsePolicy`] values (and the static
/// country labels that ride along with them).
///
/// Ids are assigned in first-intern order, so identically generated
/// populations produce identical tables — the property the sharding
/// and observatory layers rely on when they exchange bare ids.
#[derive(Debug, Clone, Default)]
pub struct ProfileTable {
    profiles: Vec<Arc<ResponsePolicy>>,
    index: FxHashMap<Arc<ResponsePolicy>, ProfileId>,
    countries: Vec<&'static str>,
    country_index: FxHashMap<&'static str, u16>,
}

impl ProfileTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `policy`, interning it on first sight.
    pub fn intern(&mut self, policy: ResponsePolicy) -> ProfileId {
        // `Arc<T>: Borrow<T>` lets the owned-key map answer a
        // borrowed-key lookup, so the hit path clones nothing.
        if let Some(&id) = self.index.get(&policy) {
            return id;
        }
        let id = ProfileId::try_from(self.profiles.len()).expect("profile table full");
        let shared = Arc::new(policy);
        self.profiles.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    /// The id of `policy` if it is already interned.
    pub fn lookup(&self, policy: &ResponsePolicy) -> Option<ProfileId> {
        self.index.get(policy).copied()
    }

    /// The interned policy for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: ProfileId) -> &Arc<ResponsePolicy> {
        &self.profiles[id as usize]
    }

    /// Number of distinct interned policies.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no policy has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Interns a country label, mapping `None` to [`COUNTRY_NONE`].
    pub fn intern_country(&mut self, country: Option<&'static str>) -> u16 {
        let Some(country) = country else {
            return COUNTRY_NONE;
        };
        if let Some(&id) = self.country_index.get(country) {
            return id;
        }
        let id = u16::try_from(self.countries.len()).expect("country table full");
        assert!(id != COUNTRY_NONE, "country table full");
        self.countries.push(country);
        self.country_index.insert(country, id);
        id
    }

    /// The country label for `id` ([`COUNTRY_NONE`] maps back to
    /// `None`).
    pub fn country(&self, id: u16) -> Option<&'static str> {
        if id == COUNTRY_NONE {
            None
        } else {
            Some(self.countries[id as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::Year;
    use crate::population::{Population, PopulationConfig};
    use crate::profile::ResponsePolicy;
    use orscope_threatintel::Category;
    use std::net::Ipv4Addr;

    // Deterministic twins of the proptests in
    // `crates/resolver/tests/properties.rs`, kept as plain unit tests
    // so the properties are exercised even when the workspace builds
    // without the proptest harness.

    fn assorted_policies() -> Vec<ResponsePolicy> {
        vec![
            ResponsePolicy::honest(),
            ResponsePolicy::refusing(),
            ResponsePolicy::honest().with_version_banner("9.8.2rc1"),
            ResponsePolicy::honest().with_version_banner("dnsmasq-2.51"),
            ResponsePolicy::forwarder(Ipv4Addr::new(9, 9, 9, 9)),
            ResponsePolicy::malicious(
                Ipv4Addr::new(208, 91, 197, 91),
                true,
                false,
                Category::Malware,
            ),
        ]
    }

    #[test]
    fn interning_round_trips_and_deduplicates() {
        let mut table = ProfileTable::new();
        let policies = assorted_policies();
        let ids: Vec<_> = policies.iter().cloned().map(|p| table.intern(p)).collect();
        // Round-trip: the id resolves back to an equal policy.
        for (policy, &id) in policies.iter().zip(&ids) {
            assert_eq!(table.get(id).as_ref(), policy);
            assert_eq!(table.lookup(policy), Some(id));
        }
        // Distinct policies get distinct ids.
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), policies.len());
        // Re-interning is a no-op.
        for (policy, &id) in policies.iter().zip(&ids) {
            assert_eq!(table.intern(policy.clone()), id);
        }
        assert_eq!(table.len(), policies.len());
    }

    #[test]
    fn country_ids_round_trip() {
        let mut table = ProfileTable::new();
        assert_eq!(table.intern_country(None), COUNTRY_NONE);
        let us = table.intern_country(Some("US"));
        let cn = table.intern_country(Some("CN"));
        assert_ne!(us, cn);
        assert_eq!(table.intern_country(Some("US")), us);
        assert_eq!(table.country(us), Some("US"));
        assert_eq!(table.country(COUNTRY_NONE), None);
    }

    #[test]
    fn generated_population_table_is_exactly_its_unique_policies() {
        for year in Year::ALL {
            let mut config = PopulationConfig::new(year, 40_000.0);
            config.forwarder_fraction = 0.2;
            config.off_port_responders = 5;
            let pop = Population::generate(&config);
            let mut seen: std::collections::HashSet<ResponsePolicy> =
                std::collections::HashSet::new();
            for host in pop.resolvers().chain(pop.off_port()).chain(pop.upstreams()) {
                // Round-trip: every host's policy is interned and its
                // id resolves back to an equal policy.
                let id = pop
                    .table()
                    .lookup(host.policy)
                    .expect("host policy interned");
                assert_eq!(pop.table().get(id), host.policy);
                seen.insert((**host.policy).clone());
            }
            // Table size == number of unique policies in use.
            assert_eq!(pop.table().len(), seen.len(), "{year}");
        }
    }
}
