//! Telemetry wiring for the resolver engine.

use orscope_telemetry::{Collector, Counter, Histogram, Scope};

use crate::engine::ResolverStats;

/// Pre-resolved metric handles shared by every [`crate::ProfiledResolver`]
/// in a shard. The default bundle is fully disabled.
///
/// Rather than threading a handle into each of the engine's eleven
/// counter-increment sites, the endpoint entry points snapshot
/// [`ResolverStats`] before dispatch and feed the delta to
/// [`ResolverTelemetry::observe`] afterwards — one `Copy` of a small
/// struct per event, and zero atomics when nothing changed.
///
/// All resolver metrics are [`Scope::Global`]: which resolver answers a
/// probe, how deep its referral chain runs, and whether its cache hits
/// are per-flow deterministic, independent of the shard layout.
#[derive(Clone, Debug, Default)]
pub struct ResolverTelemetry {
    /// `resolver.client_queries` — client queries received.
    pub client_queries: Counter,
    /// `resolver.responses_sent` — responses sent to clients.
    pub responses_sent: Counter,
    /// `resolver.upstream_queries` — queries sent to root/TLD/auth.
    pub upstream_queries: Counter,
    /// `resolver.failures` — resolutions ending in ServFail.
    pub failures: Counter,
    /// `resolver.cache_hits` — record-cache hits on client questions.
    pub cache_hits: Counter,
    /// `resolver.negative_hits` — RFC 2308 negative-cache hits.
    pub negative_hits: Counter,
    /// `resolver.forwarded` — queries relayed by forwarder profiles.
    pub forwarded: Counter,
    /// `resolver.recursion_depth` — referral-chain depth at completion.
    pub recursion_depth: Histogram,
}

impl ResolverTelemetry {
    /// Resolves every handle against `collector`.
    pub fn from_collector(collector: &Collector) -> Self {
        Self {
            client_queries: collector.counter(Scope::Global, "resolver.client_queries"),
            responses_sent: collector.counter(Scope::Global, "resolver.responses_sent"),
            upstream_queries: collector.counter(Scope::Global, "resolver.upstream_queries"),
            failures: collector.counter(Scope::Global, "resolver.failures"),
            cache_hits: collector.counter(Scope::Global, "resolver.cache_hits"),
            negative_hits: collector.counter(Scope::Global, "resolver.negative_hits"),
            forwarded: collector.counter(Scope::Global, "resolver.forwarded"),
            recursion_depth: collector.histogram(Scope::Global, "resolver.recursion_depth"),
        }
    }

    /// Publishes the difference between two stats snapshots. `Counter::add`
    /// skips zero deltas, so an event that touched no counter costs eight
    /// branches and no atomics.
    pub fn observe(&self, before: &ResolverStats, after: &ResolverStats) {
        self.client_queries
            .add(after.client_queries - before.client_queries);
        self.responses_sent
            .add(after.responses_sent - before.responses_sent);
        self.upstream_queries
            .add(after.upstream_queries - before.upstream_queries);
        self.failures.add(after.failures - before.failures);
        self.cache_hits.add(after.cache_hits - before.cache_hits);
        self.negative_hits
            .add(after.negative_hits - before.negative_hits);
        self.forwarded.add(after.forwarded - before.forwarded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_publishes_only_deltas() {
        let collector = Collector::new();
        let telemetry = ResolverTelemetry::from_collector(&collector);
        let before = ResolverStats {
            client_queries: 5,
            cache_hits: 2,
            ..ResolverStats::default()
        };
        let after = ResolverStats {
            client_queries: 8,
            cache_hits: 2,
            responses_sent: 1,
            ..ResolverStats::default()
        };
        telemetry.observe(&before, &after);
        let snapshot = collector.snapshot();
        assert_eq!(snapshot.counters["resolver.client_queries"].value, 3);
        assert_eq!(snapshot.counters["resolver.responses_sent"].value, 1);
        assert_eq!(snapshot.counters["resolver.cache_hits"].value, 0);
    }
}
