//! The resolver endpoint: policy dispatch plus a real iterative resolver.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

use bytes::Bytes;
use orscope_dns_wire::{Message, Name, Question, RData, Rcode, Record};
use orscope_netsim::{Context, Datagram, Endpoint, SimTime};

use crate::cache::DnsCache;
use crate::profile::{
    AnswerData, ForwardPolicy, ImmediateResponse, RecursePolicy, ResponseAction, ResponsePolicy,
};
use crate::telemetry::ResolverTelemetry;

/// Configuration shared by all recursing resolvers in a population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverConfig {
    /// Address of a root name server (the resolver's "root hint").
    pub root: Ipv4Addr,
    /// Per-upstream-query timeout.
    pub timeout: Duration,
    /// Retransmissions per server before giving up.
    pub retries: u8,
    /// Maximum referral chain length.
    pub max_referrals: u8,
    /// Record-cache capacity.
    pub cache_capacity: usize,
    /// Randomize upstream transaction IDs (the post-Kaminsky defence).
    /// When `false` the resolver allocates sequential IDs — the weak-
    /// entropy behaviour old resolvers exposed to record injection.
    pub randomize_txn: bool,
    /// DNS 0x20: randomize qname letter case on upstream queries and
    /// require the response to echo it byte-exactly.
    pub dns0x20: bool,
}

impl ResolverConfig {
    /// A sensible default pointing at `root`.
    pub fn new(root: Ipv4Addr) -> Self {
        Self {
            root,
            timeout: Duration::from_secs(2),
            retries: 2,
            max_referrals: 8,
            cache_capacity: 512,
            randomize_txn: true,
            dns0x20: false,
        }
    }
}

/// Counters exposed for tests and the campaign report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Client queries received.
    pub client_queries: u64,
    /// Responses sent to clients.
    pub responses_sent: u64,
    /// Queries sent upstream (root/TLD/auth, including duplicates).
    pub upstream_queries: u64,
    /// Resolutions that ended in ServFail (timeout or referral overflow).
    pub failures: u64,
    /// Cache hits on client questions.
    pub cache_hits: u64,
    /// Negative-cache hits (RFC 2308) on client questions.
    pub negative_hits: u64,
    /// Queries relayed upstream by forwarder profiles.
    pub forwarded: u64,
}

/// One in-flight recursive resolution.
#[derive(Debug, Clone)]
struct Pending {
    client: (Ipv4Addr, u16),
    client_id: u16,
    /// The client's advertised response-size budget (EDNS or 512).
    client_limit: usize,
    /// The question asked by the client (echoed in the final response).
    original_question: Question,
    /// The question currently being iterated (diverges from the
    /// original while chasing CNAMEs).
    question: Question,
    /// CNAME records collected so far, prepended to the final answer.
    cname_chain: Vec<Record>,
    /// The exact (possibly case-scrambled) question sent upstream, for
    /// DNS 0x20 echo validation.
    sent_question: Option<Question>,
    server: Ipv4Addr,
    depth: u8,
    retries_left: u8,
}

/// A probed host: applies its [`ResponsePolicy`] to incoming queries,
/// recursing for real through the simulated DNS hierarchy when the policy
/// calls for a genuine answer.
#[derive(Debug)]
pub struct ProfiledResolver {
    policy: std::sync::Arc<ResponsePolicy>,
    config: ResolverConfig,
    cache: DnsCache,
    /// Zone apex -> (name-server address, expiry): the referral cache.
    zone_servers: HashMap<Name, (Ipv4Addr, SimTime)>,
    /// Negative cache (RFC 2308): question -> (rcode, expiry).
    negative: HashMap<(Name, u16), (Rcode, SimTime)>,
    pending: HashMap<u16, Pending>,
    /// In-flight forwarded queries: relay txn -> (client, client id).
    forward_pending: HashMap<u16, ((Ipv4Addr, u16), u16)>,
    next_txn: u16,
    /// xorshift state for randomized transaction IDs.
    txn_rng: u32,
    stats: ResolverStats,
    telemetry: ResolverTelemetry,
    /// Reusable wire-encoding buffer; steady-state responses and
    /// upstream queries encode without allocating.
    scratch: Vec<u8>,
}

impl ProfiledResolver {
    /// Creates a resolver with `policy`, recursing via `config`.
    pub fn new(policy: ResponsePolicy, config: ResolverConfig) -> Self {
        Self::new_shared(std::sync::Arc::new(policy), config)
    }

    /// Creates a resolver sharing an interned `policy`.
    ///
    /// Lazy materialization builds one resolver per first packet; taking
    /// the policy from the population's
    /// [`ProfileTable`](crate::intern::ProfileTable) makes that
    /// construction allocation-free on the policy side.
    pub fn new_shared(policy: std::sync::Arc<ResponsePolicy>, config: ResolverConfig) -> Self {
        let cache = DnsCache::new(config.cache_capacity);
        Self {
            policy,
            config,
            cache,
            zone_servers: HashMap::new(),
            negative: HashMap::new(),
            pending: HashMap::new(),
            forward_pending: HashMap::new(),
            next_txn: 1,
            txn_rng: 0x9E37_79B9,
            stats: ResolverStats::default(),
            telemetry: ResolverTelemetry::default(),
            scratch: Vec::with_capacity(512),
        }
    }

    /// Encodes `msg` through the scratch buffer into a sendable payload.
    fn encode_scratch(&mut self, msg: &Message) -> Option<Bytes> {
        msg.encode_into(&mut self.scratch).ok()?;
        Some(Bytes::copy_from_slice(&self.scratch))
    }

    /// Attaches pre-resolved telemetry handles (default: disabled).
    pub fn with_telemetry(mut self, telemetry: ResolverTelemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The behaviour profile.
    pub fn policy(&self) -> &ResponsePolicy {
        &self.policy
    }

    /// The behaviour profile, shared.
    pub fn policy_shared(&self) -> &std::sync::Arc<ResponsePolicy> {
        &self.policy
    }

    /// Runtime counters.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// The record cache (tests inspect hit counts).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    fn alloc_txn(&mut self) -> u16 {
        loop {
            let id = if self.config.randomize_txn {
                // xorshift32: deterministic per resolver, unpredictable
                // to an off-path attacker.
                self.txn_rng ^= self.txn_rng << 13;
                self.txn_rng ^= self.txn_rng >> 17;
                self.txn_rng ^= self.txn_rng << 5;
                (self.txn_rng as u16).max(1)
            } else {
                let id = self.next_txn;
                self.next_txn = self.next_txn.wrapping_add(1).max(1);
                id
            };
            if !self.pending.contains_key(&id) && !self.forward_pending.contains_key(&id) {
                return id;
            }
        }
    }

    /// The ephemeral source port used for upstream transaction `txn`.
    fn ephemeral_port(txn: u16) -> u16 {
        32_768 + (txn & 0x3FFF)
    }

    /// Handles a client query according to the policy.
    fn on_client_query(&mut self, query: &Message, dgram: &Datagram, ctx: &mut Context<'_>) {
        self.stats.client_queries += 1;
        // `version.bind CH TXT`: the software-fingerprint channel
        // (Takano et al.). Answered from configuration, refused without.
        if let Some(question) = query.first_question() {
            if question.qclass() == orscope_dns_wire::RecordClass::Ch
                && question
                    .qname()
                    .to_string()
                    .eq_ignore_ascii_case("version.bind")
            {
                let response = match &self.policy.version_banner {
                    Some(banner) => Message::builder()
                        .response_to(query)
                        .answer(Record::new(
                            question.qname().clone(),
                            orscope_dns_wire::RecordClass::Ch,
                            0,
                            RData::Txt(vec![banner.as_bytes().to_vec()]),
                        ))
                        .build(),
                    None => Message::builder()
                        .response_to(query)
                        .rcode(Rcode::Refused)
                        .build(),
                };
                if let Some(payload) = self.encode_scratch(&response) {
                    self.stats.responses_sent += 1;
                    ctx.send(dgram.reply(payload));
                }
                return;
            }
        }
        let action = self.policy.action.clone();
        match action {
            ResponseAction::Silent => {}
            ResponseAction::Immediate(imm) => {
                if let Some(wire) = build_immediate(query, &imm, &mut self.scratch) {
                    let reply = match imm.src_port {
                        Some(port) => dgram.reply_from_port(port, wire),
                        None => dgram.reply(wire),
                    };
                    self.stats.responses_sent += 1;
                    ctx.send(reply);
                }
            }
            ResponseAction::Forward(fp) => {
                self.forward_query(query, dgram, &fp, ctx);
            }
            ResponseAction::Recurse(rp) => {
                let Some(question) = query.first_question().cloned() else {
                    // No question to resolve: answer FormErr like BIND.
                    let resp = Message::builder()
                        .response_to(query)
                        .rcode(Rcode::FormErr)
                        .build();
                    if let Some(payload) = self.encode_scratch(&resp) {
                        self.stats.responses_sent += 1;
                        ctx.send(dgram.reply(payload));
                    }
                    return;
                };
                // RD=0: the client asked for a non-recursive lookup. A
                // correct recursive server answers from cache only —
                // which is exactly what cache-snooping probes exploit.
                if !query.header().recursion_desired() {
                    let cached = self
                        .cache
                        .get(question.qname(), question.qtype(), ctx.now());
                    let outcome = match cached {
                        Some(records) => {
                            self.stats.cache_hits += 1;
                            Ok(records)
                        }
                        None => Err(Rcode::NoError), // empty: not cached
                    };
                    self.answer_client(
                        (dgram.src, dgram.src_port),
                        query.header().id(),
                        query.response_size_limit(),
                        &question,
                        outcome,
                        &rp,
                        ctx,
                    );
                    return;
                }
                // Negative cache (RFC 2308): a fresh NXDomain/NoData is
                // answered without re-asking the hierarchy.
                let neg_key = (question.qname().clone(), question.qtype().to_u16());
                match self.negative.get(&neg_key) {
                    Some(&(rcode, expiry)) if expiry > ctx.now() => {
                        self.stats.negative_hits += 1;
                        self.answer_client(
                            (dgram.src, dgram.src_port),
                            query.header().id(),
                            query.response_size_limit(),
                            &question,
                            Err(rcode),
                            &rp,
                            ctx,
                        );
                        return;
                    }
                    Some(_) => {
                        self.negative.remove(&neg_key);
                    }
                    None => {}
                }
                // Cache check: unique probe names never hit, but repeat
                // clients of an open resolver would.
                if let Some(records) = self
                    .cache
                    .get(question.qname(), question.qtype(), ctx.now())
                {
                    self.stats.cache_hits += 1;
                    self.answer_client(
                        (dgram.src, dgram.src_port),
                        query.header().id(),
                        query.response_size_limit(),
                        &question,
                        Ok(records),
                        &rp,
                        ctx,
                    );
                    return;
                }
                let server = self.closest_zone_server(question.qname(), ctx.now());
                let txn = self.alloc_txn();
                self.pending.insert(
                    txn,
                    Pending {
                        client: (dgram.src, dgram.src_port),
                        client_id: query.header().id(),
                        client_limit: query.response_size_limit(),
                        original_question: question.clone(),
                        question: question.clone(),
                        cname_chain: Vec::new(),
                        sent_question: None,
                        server,
                        depth: 0,
                        retries_left: self.config.retries,
                    },
                );
                let sent = self.send_upstream(txn, &question, server, ctx);
                if let Some(p) = self.pending.get_mut(&txn) {
                    p.sent_question = Some(sent);
                }
                ctx.set_timer(self.config.timeout, txn as u64);
            }
        }
    }

    /// The deepest cached zone server for `qname`, else the root.
    fn closest_zone_server(&mut self, qname: &Name, now: SimTime) -> Ipv4Addr {
        let mut candidate = Some(qname.clone());
        while let Some(name) = candidate {
            if let Some(&(addr, expiry)) = self.zone_servers.get(&name) {
                if expiry > now {
                    return addr;
                }
                self.zone_servers.remove(&name);
            }
            candidate = name.parent();
        }
        self.config.root
    }

    fn send_upstream(
        &mut self,
        txn: u16,
        question: &Question,
        server: Ipv4Addr,
        ctx: &mut Context<'_>,
    ) -> Question {
        // DNS 0x20: scramble the qname case per transaction; the echoed
        // question must match byte-for-byte.
        let question = if self.config.dns0x20 {
            let entropy = (txn as u64) << 32 | self.txn_rng as u64;
            Question::new(
                question.qname().randomize_case(entropy),
                question.qtype(),
                question.qclass(),
            )
        } else {
            question.clone()
        };
        let mut query = Message::query(txn, question.clone());
        // Recursive resolvers speak EDNS upstream (RFC 6891) so large
        // authoritative answers are not truncated at 512 bytes.
        query.set_edns_udp_size(4096);
        if let Some(payload) = self.encode_scratch(&query) {
            self.stats.upstream_queries += 1;
            // Ephemeral source port derived from the transaction id.
            ctx.send(Datagram::new(
                (ctx.local_addr(), Self::ephemeral_port(txn)),
                (server, 53),
                payload,
            ));
        }
        question
    }

    /// Relays a client query to the forwarder's upstream resolver.
    fn forward_query(
        &mut self,
        query: &Message,
        dgram: &Datagram,
        fp: &ForwardPolicy,
        ctx: &mut Context<'_>,
    ) {
        let Some(question) = query.first_question().cloned() else {
            return; // nothing to relay
        };
        let txn = self.alloc_txn();
        self.forward_pending
            .insert(txn, ((dgram.src, dgram.src_port), query.header().id()));
        let mut relay = Message::query(txn, question);
        relay.header_mut().set_recursion_desired(true);
        if let Some(payload) = self.encode_scratch(&relay) {
            self.stats.forwarded += 1;
            self.stats.upstream_queries += 1;
            ctx.send(Datagram::new(
                (ctx.local_addr(), Self::ephemeral_port(txn)),
                (fp.upstream, 53),
                payload,
            ));
            ctx.set_timer(self.config.timeout, txn as u64);
        }
    }

    /// Relays an upstream answer back to the forwarder's client.
    fn relay_response(
        &mut self,
        response: &Message,
        client: (Ipv4Addr, u16),
        client_id: u16,
        ctx: &mut Context<'_>,
    ) {
        let ResponseAction::Forward(fp) = &self.policy.action else {
            return;
        };
        let mut out = response.clone();
        out.header_mut().set_id(client_id);
        if let Some(ra) = fp.ra_override {
            out.header_mut().set_recursion_available(ra);
        }
        if let Some(payload) = self.encode_scratch(&out) {
            self.stats.responses_sent += 1;
            ctx.send(Datagram::new((ctx.local_addr(), 53), client, payload));
        }
    }

    /// The negative-cache TTL for a failed resolution: the SOA minimum
    /// from the authority section when present (RFC 2308), else 5 min.
    fn negative_ttl(response: &Message) -> Duration {
        response
            .authorities()
            .iter()
            .find_map(|rec| match rec.rdata() {
                RData::Soa(soa) => Some(Duration::from_secs(soa.minimum.min(rec.ttl()) as u64)),
                _ => None,
            })
            .unwrap_or(Duration::from_secs(300))
    }

    /// Handles a response from an upstream server.
    fn on_upstream_response(
        &mut self,
        response: &Message,
        dgram: &Datagram,
        ctx: &mut Context<'_>,
    ) {
        let txn = response.header().id();
        if let Some((client, client_id)) = self.forward_pending.remove(&txn) {
            self.relay_response(response, client, client_id, ctx);
            return;
        }
        let Some(pending) = self.pending.get(&txn).cloned() else {
            return; // duplicate or late response
        };
        // Off-path hygiene: the response must come from the server we
        // asked AND land on the ephemeral port this transaction used.
        // (An injector spoofing the server address still has to guess
        // the txn id, which selects the port.)
        if dgram.src != pending.server || dgram.dst_port != Self::ephemeral_port(txn) {
            return;
        }
        // DNS 0x20 echo validation: the response must repeat our exact
        // mixed-case spelling.
        if self.config.dns0x20 {
            let echoed = response.first_question();
            let sent = pending.sent_question.as_ref();
            match (echoed, sent) {
                (Some(e), Some(s)) if e.qname().eq_bytes(s.qname()) => {}
                _ => return, // case mismatch: forged or broken
            }
        }
        let ResponseAction::Recurse(rp) = self.policy.action.clone() else {
            return;
        };
        if !response.answers().is_empty() {
            // Records matching the question we are iterating.
            let records: Vec<Record> = response
                .answers()
                .iter()
                .filter(|r| r.name() == pending.question.qname())
                .cloned()
                .collect();
            // CNAME chasing: an alias answer to a non-CNAME question
            // restarts iteration at the canonical target (RFC 1034
            // section 3.6.2), carrying the chain into the final answer.
            let wants_alias_follow = !matches!(
                pending.question.qtype(),
                orscope_dns_wire::RecordType::Cname | orscope_dns_wire::RecordType::Any
            );
            let has_terminal = records
                .iter()
                .any(|r| r.rtype() == pending.question.qtype());
            if wants_alias_follow && !has_terminal {
                if let Some(cname_rec) = records
                    .iter()
                    .find(|r| matches!(r.rdata(), RData::Cname(_)))
                {
                    let RData::Cname(target) = cname_rec.rdata() else {
                        unreachable!("matched CNAME above");
                    };
                    let mut p = self.pending.remove(&txn).expect("pending exists");
                    if p.cname_chain.len() >= 8 {
                        self.telemetry.recursion_depth.record(p.depth as u64);
                        self.stats.failures += 1;
                        self.answer_client(
                            p.client,
                            p.client_id,
                            p.client_limit,
                            &p.original_question,
                            Err(Rcode::ServFail),
                            &rp,
                            ctx,
                        );
                        return;
                    }
                    p.cname_chain.push(cname_rec.clone());
                    p.question = Question::new(
                        target.clone(),
                        p.original_question.qtype(),
                        p.original_question.qclass(),
                    );
                    p.depth = 0;
                    p.retries_left = self.config.retries;
                    p.server = self.closest_zone_server(p.question.qname(), ctx.now());
                    let new_txn = self.alloc_txn();
                    p.sent_question = Some(self.send_upstream(new_txn, &p.question, p.server, ctx));
                    ctx.set_timer(self.config.timeout, new_txn as u64);
                    self.pending.insert(new_txn, p);
                    return;
                }
            }
            self.pending.remove(&txn);
            self.telemetry.recursion_depth.record(pending.depth as u64);
            self.cache.insert(ctx.now(), records.clone());
            // Re-ask the answering server (resolver-farm duplication);
            // responses to these find no pending entry and are dropped.
            for _ in 1..rp.auth_duplicates {
                let dup_txn = self.alloc_txn();
                let _ = self.send_upstream(dup_txn, &pending.question, pending.server, ctx);
            }
            let mut full = pending.cname_chain.clone();
            full.extend(records);
            self.answer_client(
                pending.client,
                pending.client_id,
                pending.client_limit,
                &pending.original_question,
                Ok(full),
                &rp,
                ctx,
            );
            return;
        }
        match response.header().rcode() {
            Rcode::NoError => {
                // Referral: find the NS in authority and its glue.
                let referral = response.authorities().iter().find_map(|auth| {
                    let RData::Ns(ns_name) = auth.rdata() else {
                        return None;
                    };
                    let glue = response.additionals().iter().find_map(|add| {
                        (add.name() == ns_name)
                            .then(|| add.rdata().as_a())
                            .flatten()
                    })?;
                    Some((auth.name().clone(), auth.ttl(), glue))
                });
                match referral {
                    Some((zone, ttl, glue)) if pending.depth < self.config.max_referrals => {
                        self.zone_servers
                            .insert(zone, (glue, ctx.now() + Duration::from_secs(ttl as u64)));
                        let mut p = self.pending.remove(&txn).expect("pending exists");
                        p.server = glue;
                        p.depth += 1;
                        p.retries_left = self.config.retries;
                        let new_txn = self.alloc_txn();
                        p.sent_question = Some(self.send_upstream(new_txn, &p.question, glue, ctx));
                        ctx.set_timer(self.config.timeout, new_txn as u64);
                        self.pending.insert(new_txn, p);
                    }
                    _ => {
                        // NoData or referral overflow.
                        self.pending.remove(&txn);
                        self.telemetry.recursion_depth.record(pending.depth as u64);
                        let rcode = if referral.is_some() {
                            self.stats.failures += 1;
                            Rcode::ServFail
                        } else {
                            // NoData: negatively cacheable (RFC 2308).
                            self.negative.insert(
                                (
                                    pending.question.qname().clone(),
                                    pending.question.qtype().to_u16(),
                                ),
                                (Rcode::NoError, ctx.now() + Self::negative_ttl(response)),
                            );
                            Rcode::NoError // NoData: empty NoError answer
                        };
                        self.answer_client(
                            pending.client,
                            pending.client_id,
                            pending.client_limit,
                            &pending.original_question,
                            Err(rcode),
                            &rp,
                            ctx,
                        );
                    }
                }
            }
            Rcode::NXDomain => {
                self.pending.remove(&txn);
                self.telemetry.recursion_depth.record(pending.depth as u64);
                self.negative.insert(
                    (
                        pending.question.qname().clone(),
                        pending.question.qtype().to_u16(),
                    ),
                    (Rcode::NXDomain, ctx.now() + Self::negative_ttl(response)),
                );
                self.answer_client(
                    pending.client,
                    pending.client_id,
                    pending.client_limit,
                    &pending.original_question,
                    Err(Rcode::NXDomain),
                    &rp,
                    ctx,
                );
            }
            _ => {
                self.pending.remove(&txn);
                self.telemetry.recursion_depth.record(pending.depth as u64);
                self.stats.failures += 1;
                self.answer_client(
                    pending.client,
                    pending.client_id,
                    pending.client_limit,
                    &pending.original_question,
                    Err(Rcode::ServFail),
                    &rp,
                    ctx,
                );
            }
        }
    }

    /// Sends the final response to the client, applying the recursion
    /// policy's header overrides.
    #[allow(clippy::too_many_arguments)]
    fn answer_client(
        &mut self,
        client: (Ipv4Addr, u16),
        client_id: u16,
        client_limit: usize,
        question: &Question,
        outcome: Result<Vec<Record>, Rcode>,
        rp: &RecursePolicy,
        ctx: &mut Context<'_>,
    ) {
        let mut builder = Message::builder()
            .id(client_id)
            .question(question.clone())
            .recursion_desired(true)
            .recursion_available(rp.ra)
            .authoritative(rp.aa);
        match outcome {
            Ok(records) => {
                for rec in records {
                    builder = builder.answer(rec);
                }
            }
            Err(rcode) => {
                builder = builder.rcode(rcode);
            }
        }
        if let Some(rcode) = rp.rcode_override {
            builder = builder.rcode(rcode);
        }
        let mut response = builder.build();
        response.header_mut().set_response(true);
        if response
            .encode_truncated_into(client_limit, &mut self.scratch)
            .is_ok()
        {
            self.stats.responses_sent += 1;
            ctx.send(Datagram::new(
                (ctx.local_addr(), 53),
                client,
                Bytes::copy_from_slice(&self.scratch),
            ));
        }
    }
}

impl Endpoint for ProfiledResolver {
    fn handle_datagram(&mut self, dgram: &Datagram, ctx: &mut Context<'_>) {
        // Stats-delta observer: snapshot the counters, dispatch, publish
        // the difference. This instruments every increment site in the
        // engine without threading handles through each of them.
        let before = self.stats;
        let Ok(message) = Message::decode(&dgram.payload) else {
            return;
        };
        if message.header().is_response() {
            self.on_upstream_response(&message, dgram, ctx);
        } else if dgram.dst_port == 53 {
            self.on_client_query(&message, dgram, ctx);
        }
        self.telemetry.observe(&before, &self.stats);
    }

    fn handle_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let before = self.stats;
        self.on_timer(token, ctx);
        self.telemetry.observe(&before, &self.stats);
    }

    fn is_quiescent(&self) -> bool {
        // No in-flight recursion or relay: rebuilding this resolver from
        // its (shared) policy and config later is indistinguishable on
        // the wire, because campaign probes carry unique qnames that
        // never hit the dropped caches. The simulator uses this to
        // release lazily materialized hosts after each event.
        self.pending.is_empty() && self.forward_pending.is_empty()
    }
}

impl ProfiledResolver {
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let txn = token as u16;
        if let Some((client, client_id)) = self.forward_pending.remove(&txn) {
            // Upstream never answered the relay: ServFail, like dnsmasq.
            let mut out = Message::builder()
                .id(client_id)
                .rcode(Rcode::ServFail)
                .build();
            out.header_mut().set_response(true);
            if let Some(payload) = self.encode_scratch(&out) {
                self.stats.failures += 1;
                self.stats.responses_sent += 1;
                ctx.send(Datagram::new((ctx.local_addr(), 53), client, payload));
            }
            return;
        }
        let Some(pending) = self.pending.get(&txn).cloned() else {
            return; // resolution already completed
        };
        if pending.retries_left > 0 {
            self.pending.get_mut(&txn).expect("exists").retries_left -= 1;
            let question = pending.question.clone();
            let server = pending.server;
            let sent = self.send_upstream(txn, &question, server, ctx);
            if let Some(p) = self.pending.get_mut(&txn) {
                p.sent_question = Some(sent);
            }
            ctx.set_timer(self.config.timeout, txn as u64);
        } else {
            let ResponseAction::Recurse(rp) = self.policy.action.clone() else {
                self.pending.remove(&txn);
                return;
            };
            self.pending.remove(&txn);
            self.telemetry.recursion_depth.record(pending.depth as u64);
            self.stats.failures += 1;
            self.answer_client(
                pending.client,
                pending.client_id,
                pending.client_limit,
                &pending.original_question,
                Err(Rcode::ServFail),
                &rp,
                ctx,
            );
        }
    }
}

/// Builds the wire bytes of an immediate (non-recursed) response through
/// the caller's reusable `scratch` buffer.
///
/// Returns `None` only if encoding fails (should not happen for the
/// policy-constructible shapes).
fn build_immediate(
    query: &Message,
    imm: &ImmediateResponse,
    scratch: &mut Vec<u8>,
) -> Option<Bytes> {
    let qname = query
        .first_question()
        .map(|q| q.qname().clone())
        .unwrap_or_else(Name::root);
    let mut builder = Message::builder()
        .response_to(query)
        .recursion_available(imm.ra)
        .authoritative(imm.aa)
        .rcode(imm.rcode);
    let answer_is_a = matches!(imm.answer, Some(AnswerData::FixedIp(_)));
    match &imm.answer {
        Some(AnswerData::FixedIp(addr)) => {
            builder = builder.answer(Record::in_class(qname.clone(), 299, RData::A(*addr)));
        }
        Some(AnswerData::Url(target)) => {
            let target_name: Name = target.parse().ok()?;
            builder = builder.answer(Record::in_class(
                qname.clone(),
                299,
                RData::Cname(target_name),
            ));
        }
        Some(AnswerData::Text(text)) => {
            builder = builder.answer(Record::in_class(
                qname.clone(),
                299,
                RData::Txt(vec![text.as_bytes().to_vec()]),
            ));
        }
        None => {}
    }
    let mut response = builder.build();
    if imm.empty_question {
        response.clear_questions();
    }
    response.encode_into(scratch).ok()?;
    if imm.malformed_rdata && answer_is_a {
        // The A answer is the final record; its RDLENGTH occupies the two
        // bytes before the four rdata bytes. Inflating it makes the
        // answer undecodable while the header and question still parse —
        // exactly the 2013 "N/A" capture artifact.
        let len = scratch.len();
        scratch[len - 6] = 0xFF;
        scratch[len - 5] = 0xFF;
    }
    Some(Bytes::copy_from_slice(scratch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orscope_authns::{
        AuthoritativeServer, CaptureHandle, ClusterZone, ProbeLabel, RootServer, TldServer, Zone,
    };
    use orscope_dns_wire::WireError;
    use orscope_netsim::{FixedLatency, SimNet};
    use orscope_threatintel::Category;
    use parking_lot::Mutex;
    use std::sync::Arc;

    const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const AUTH: Ipv4Addr = Ipv4Addr::new(45, 77, 1, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(74, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(131, 94, 0, 9);

    fn zone_name() -> Name {
        "ucfsealresearch.net".parse().unwrap()
    }

    /// Builds a network with root/TLD/auth plus one profiled resolver.
    fn hierarchy(policy: ResponsePolicy) -> (SimNet, CaptureHandle) {
        let mut net = SimNet::builder()
            .seed(11)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        let mut root = RootServer::new();
        root.delegate(
            "net".parse().unwrap(),
            "a.gtld-servers.net".parse().unwrap(),
            TLD,
        );
        net.register(ROOT, root);
        let mut tld = TldServer::new();
        tld.delegate(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
            AUTH,
        );
        net.register(TLD, tld);
        let capture = CaptureHandle::new();
        let mut cz = ClusterZone::new(Zone::new(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
        ));
        cz.load_cluster(0, 100_000);
        net.register(AUTH, AuthoritativeServer::new(cz, capture.clone()));
        net.register(
            RESOLVER,
            ProfiledResolver::new(policy, ResolverConfig::new(ROOT)),
        );
        (net, capture)
    }

    /// A client endpoint collecting raw response datagrams.
    struct Collector(Arc<Mutex<Vec<Datagram>>>);
    impl Endpoint for Collector {
        fn handle_datagram(&mut self, dgram: &Datagram, _ctx: &mut Context<'_>) {
            self.0.lock().push(dgram.clone());
        }
    }

    fn probe(net: &mut SimNet, qname: Name) -> Vec<Datagram> {
        let got = Arc::new(Mutex::new(Vec::new()));
        net.register(CLIENT, Collector(got.clone()));
        let query = Message::query(0x4242, Question::a(qname));
        net.inject(Datagram::new(
            (CLIENT, 47_000),
            (RESOLVER, 53),
            query.encode().unwrap(),
        ));
        net.run_until_idle();
        let out = got.lock().clone();
        out
    }

    #[test]
    fn honest_resolver_recurses_to_correct_answer() {
        let (mut net, capture) = hierarchy(ResponsePolicy::honest());
        let label = ProbeLabel::new(0, 77);
        let responses = probe(&mut net, label.qname(&zone_name()));
        assert_eq!(responses.len(), 1);
        let msg = Message::decode(&responses[0].payload).unwrap();
        assert_eq!(msg.header().id(), 0x4242);
        assert!(msg.header().recursion_available());
        assert!(!msg.header().authoritative());
        assert_eq!(msg.header().rcode(), Rcode::NoError);
        assert_eq!(
            msg.answers()[0].rdata().as_a(),
            Some(orscope_authns::ground_truth(label))
        );
        // The auth server saw exactly one Q2 and sent one R1.
        assert_eq!(capture.count(orscope_authns::Direction::Inbound), 1);
        assert_eq!(capture.count(orscope_authns::Direction::Outbound), 1);
    }

    #[test]
    fn ra_zero_liar_still_answers_correctly() {
        let policy = ResponsePolicy {
            action: ResponseAction::Recurse(RecursePolicy {
                ra: false,
                ..RecursePolicy::default()
            }),
            malicious_category: None,
            version_banner: None,
        };
        let (mut net, _) = hierarchy(policy);
        let label = ProbeLabel::new(0, 5);
        let responses = probe(&mut net, label.qname(&zone_name()));
        let msg = Message::decode(&responses[0].payload).unwrap();
        assert!(!msg.header().recursion_available(), "RA lied to 0");
        assert_eq!(
            msg.answers()[0].rdata().as_a(),
            Some(orscope_authns::ground_truth(label))
        );
    }

    #[test]
    fn auth_duplicates_multiply_q2() {
        let policy = ResponsePolicy {
            action: ResponseAction::Recurse(RecursePolicy {
                auth_duplicates: 4,
                ..RecursePolicy::default()
            }),
            malicious_category: None,
            version_banner: None,
        };
        let (mut net, capture) = hierarchy(policy);
        let responses = probe(&mut net, ProbeLabel::new(0, 9).qname(&zone_name()));
        assert_eq!(responses.len(), 1, "client still gets exactly one answer");
        assert_eq!(capture.count(orscope_authns::Direction::Inbound), 4);
    }

    #[test]
    fn nxdomain_propagates() {
        let (mut net, _) = hierarchy(ResponsePolicy::honest());
        // Cluster 9 is not loaded -> authoritative NXDomain.
        let responses = probe(&mut net, ProbeLabel::new(9, 1).qname(&zone_name()));
        let msg = Message::decode(&responses[0].payload).unwrap();
        assert_eq!(msg.header().rcode(), Rcode::NXDomain);
        assert!(msg.answers().is_empty());
        assert!(msg.header().recursion_available());
    }

    #[test]
    fn unresolvable_times_out_to_servfail() {
        // No hierarchy at all: resolver's root queries go nowhere.
        let mut net = SimNet::builder()
            .seed(3)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        let mut config = ResolverConfig::new(ROOT);
        config.timeout = Duration::from_millis(100);
        config.retries = 1;
        net.register(
            RESOLVER,
            ProfiledResolver::new(ResponsePolicy::honest(), config),
        );
        let responses = probe(&mut net, ProbeLabel::new(0, 1).qname(&zone_name()));
        assert_eq!(responses.len(), 1);
        let msg = Message::decode(&responses[0].payload).unwrap();
        assert_eq!(msg.header().rcode(), Rcode::ServFail);
        assert!(msg.answers().is_empty());
    }

    #[test]
    fn refused_profile_answers_immediately() {
        let (mut net, capture) = hierarchy(ResponsePolicy::refusing());
        let responses = probe(&mut net, ProbeLabel::new(0, 2).qname(&zone_name()));
        let msg = Message::decode(&responses[0].payload).unwrap();
        assert_eq!(msg.header().rcode(), Rcode::Refused);
        assert!(msg.answers().is_empty());
        assert!(capture.is_empty(), "no recursion happened");
    }

    #[test]
    fn malicious_profile_redirects_with_lying_flags() {
        let bad = Ipv4Addr::new(208, 91, 197, 91);
        let (mut net, capture) = hierarchy(ResponsePolicy::malicious(
            bad,
            false,
            true,
            Category::Malware,
        ));
        let responses = probe(&mut net, ProbeLabel::new(0, 3).qname(&zone_name()));
        let msg = Message::decode(&responses[0].payload).unwrap();
        assert_eq!(msg.answers()[0].rdata().as_a(), Some(bad));
        assert!(msg.header().authoritative(), "fake AA=1");
        assert!(!msg.header().recursion_available());
        assert_eq!(msg.header().rcode(), Rcode::NoError);
        assert!(capture.is_empty());
    }

    #[test]
    fn url_and_text_answers() {
        type Check = fn(&Record) -> bool;
        let cases: Vec<(AnswerData, Check)> = vec![
            (
                AnswerData::Url("u.dcoin.co".to_owned()),
                |r: &Record| matches!(r.rdata(), RData::Cname(n) if n.to_string() == "u.dcoin.co"),
            ),
            (
                AnswerData::Text("wild".to_owned()),
                |r: &Record| matches!(r.rdata(), RData::Txt(segs) if segs[0] == b"wild"),
            ),
        ];
        for (answer, check) in cases {
            let policy = ResponsePolicy {
                action: ResponseAction::Immediate(ImmediateResponse::wrong_answer(
                    answer, true, false,
                )),
                malicious_category: None,
                version_banner: None,
            };
            let (mut net, _) = hierarchy(policy);
            let responses = probe(&mut net, ProbeLabel::new(0, 4).qname(&zone_name()));
            let msg = Message::decode(&responses[0].payload).unwrap();
            assert!(check(&msg.answers()[0]), "{:?}", msg.answers()[0]);
        }
    }

    #[test]
    fn empty_question_response() {
        let policy = ResponsePolicy {
            action: ResponseAction::Immediate(ImmediateResponse {
                empty_question: true,
                ..ImmediateResponse::empty(true, false, Rcode::ServFail)
            }),
            malicious_category: None,
            version_banner: None,
        };
        let (mut net, _) = hierarchy(policy);
        let responses = probe(&mut net, ProbeLabel::new(0, 6).qname(&zone_name()));
        let msg = Message::decode(&responses[0].payload).unwrap();
        assert!(msg.first_question().is_none());
        assert_eq!(msg.header().rcode(), Rcode::ServFail);
    }

    #[test]
    fn malformed_rdata_is_undecodable_but_header_survives() {
        let policy = ResponsePolicy {
            action: ResponseAction::Immediate(ImmediateResponse {
                malformed_rdata: true,
                ..ImmediateResponse::wrong_answer(
                    AnswerData::FixedIp(Ipv4Addr::new(1, 2, 3, 4)),
                    true,
                    false,
                )
            }),
            malicious_category: None,
            version_banner: None,
        };
        let (mut net, _) = hierarchy(policy);
        let responses = probe(&mut net, ProbeLabel::new(0, 7).qname(&zone_name()));
        let err = Message::decode(&responses[0].payload).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err}");
        // Header (and question) still parse, as libpcap partially did.
        let mut reader = orscope_dns_wire::wire::Reader::new(&responses[0].payload);
        let header = orscope_dns_wire::Header::decode(&mut reader).unwrap();
        assert!(header.is_response());
        assert!(header.recursion_available());
    }

    #[test]
    fn off_port_responder_uses_configured_port() {
        let policy = ResponsePolicy {
            action: ResponseAction::Immediate(ImmediateResponse {
                src_port: Some(1024),
                ..ImmediateResponse::refused()
            }),
            malicious_category: None,
            version_banner: None,
        };
        let (mut net, _) = hierarchy(policy);
        let responses = probe(&mut net, ProbeLabel::new(0, 8).qname(&zone_name()));
        assert_eq!(responses[0].src_port, 1024, "blind-spot port");
    }

    #[test]
    fn silent_profile_never_answers() {
        let policy = ResponsePolicy {
            action: ResponseAction::Silent,
            malicious_category: None,
            version_banner: None,
        };
        let (mut net, _) = hierarchy(policy);
        let responses = probe(&mut net, ProbeLabel::new(0, 10).qname(&zone_name()));
        assert!(responses.is_empty());
    }

    #[test]
    fn repeat_query_hits_cache() {
        let (mut net, capture) = hierarchy(ResponsePolicy::honest());
        let qname = ProbeLabel::new(0, 11).qname(&zone_name());
        let first = probe(&mut net, qname.clone());
        assert_eq!(first.len(), 1);
        let second = probe(&mut net, qname);
        assert_eq!(second.len(), 1);
        // Only the first resolution reached the authoritative server.
        assert_eq!(capture.count(orscope_authns::Direction::Inbound), 1);
        let a = Message::decode(&first[0].payload).unwrap();
        let b = Message::decode(&second[0].payload).unwrap();
        assert_eq!(a.answers()[0].rdata().as_a(), b.answers()[0].rdata().as_a());
    }

    #[test]
    fn referral_cache_skips_root_on_second_resolution() {
        let (mut net, _) = hierarchy(ResponsePolicy::honest());
        let _ = probe(&mut net, ProbeLabel::new(0, 12).qname(&zone_name()));
        // Count root traffic for a *different* qname afterwards.
        let root_before = net.stats().delivered;
        let _ = probe(&mut net, ProbeLabel::new(0, 13).qname(&zone_name()));
        let delivered_second = net.stats().delivered - root_before;
        // Second resolution: client->resolver, resolver->auth, auth->resolver,
        // resolver->client = 4 deliveries (no root, no TLD).
        assert_eq!(delivered_second, 4);
    }
}

#[cfg(test)]
mod forwarder_tests {
    use super::*;
    use orscope_authns::{
        AuthoritativeServer, CaptureHandle, ClusterZone, ProbeLabel, RootServer, TldServer, Zone,
    };
    use orscope_netsim::{FixedLatency, SimNet};
    use parking_lot::Mutex;
    use std::sync::Arc;

    const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const AUTH: Ipv4Addr = Ipv4Addr::new(45, 77, 1, 1);
    const UPSTREAM: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
    const CPE: Ipv4Addr = Ipv4Addr::new(62, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(131, 94, 0, 9);

    fn zone_name() -> Name {
        "ucfsealresearch.net".parse().unwrap()
    }

    struct Collector(Arc<Mutex<Vec<Message>>>);
    impl Endpoint for Collector {
        fn handle_datagram(&mut self, dgram: &Datagram, _ctx: &mut Context<'_>) {
            self.0.lock().push(Message::decode(&dgram.payload).unwrap());
        }
    }

    /// Full chain: client -> forwarder (CPE) -> upstream recursive ->
    /// root/TLD/auth -> back.
    fn forward_setup(policy: ResponsePolicy) -> (SimNet, Arc<Mutex<Vec<Message>>>) {
        let mut net = SimNet::builder()
            .seed(21)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        let mut root = RootServer::new();
        root.delegate(
            "net".parse().unwrap(),
            "a.gtld-servers.net".parse().unwrap(),
            TLD,
        );
        net.register(ROOT, root);
        let mut tld = TldServer::new();
        tld.delegate(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
            AUTH,
        );
        net.register(TLD, tld);
        let mut cz = ClusterZone::new(Zone::new(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
        ));
        cz.load_cluster(0, 1000);
        net.register(AUTH, AuthoritativeServer::new(cz, CaptureHandle::new()));
        net.register(
            UPSTREAM,
            ProfiledResolver::new(ResponsePolicy::honest(), ResolverConfig::new(ROOT)),
        );
        net.register(
            CPE,
            ProfiledResolver::new(policy, ResolverConfig::new(ROOT)),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        net.register(CLIENT, Collector(got.clone()));
        (net, got)
    }

    fn probe(net: &mut SimNet, label: ProbeLabel) {
        let query = Message::query(0x7777, Question::a(label.qname(&zone_name())));
        net.inject(Datagram::new(
            (CLIENT, 47_000),
            (CPE, 53),
            query.encode().unwrap(),
        ));
        net.run_until_idle();
    }

    #[test]
    fn forwarder_relays_correct_answer() {
        let (mut net, got) = forward_setup(ResponsePolicy::forwarder(UPSTREAM));
        let label = ProbeLabel::new(0, 7);
        probe(&mut net, label);
        let responses = got.lock();
        assert_eq!(responses.len(), 1);
        let msg = &responses[0];
        assert_eq!(msg.header().id(), 0x7777, "client id restored");
        assert!(
            msg.header().recursion_available(),
            "upstream RA passed through"
        );
        assert_eq!(
            msg.answers()[0].rdata().as_a(),
            Some(orscope_authns::ground_truth(label))
        );
    }

    #[test]
    fn forwarder_ra_override_rewrites_flag() {
        let policy = ResponsePolicy {
            action: ResponseAction::Forward(ForwardPolicy {
                upstream: UPSTREAM,
                ra_override: Some(false),
            }),
            malicious_category: None,
            version_banner: None,
        };
        let (mut net, got) = forward_setup(policy);
        probe(&mut net, ProbeLabel::new(0, 8));
        let responses = got.lock();
        let msg = &responses[0];
        assert!(!msg.header().recursion_available(), "RA rewritten to 0");
        assert!(
            !msg.answers().is_empty(),
            "answer intact: the RA0-with-answer cell"
        );
    }

    #[test]
    fn forwarder_with_dead_upstream_servfails() {
        // No upstream registered at all.
        let mut net = SimNet::builder()
            .seed(22)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        net.register(
            CPE,
            ProfiledResolver::new(
                ResponsePolicy::forwarder(UPSTREAM),
                ResolverConfig {
                    timeout: Duration::from_millis(100),
                    ..ResolverConfig::new(ROOT)
                },
            ),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        net.register(CLIENT, Collector(got.clone()));
        probe(&mut net, ProbeLabel::new(0, 9));
        let responses = got.lock();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].header().rcode(), Rcode::ServFail);
    }

    #[test]
    fn negative_cache_absorbs_repeat_nxdomain() {
        // Honest resolver; the probe name is in an unloaded cluster.
        let (mut net, got) = forward_setup(ResponsePolicy::honest());
        // Point the client at the upstream resolver directly.
        let label = ProbeLabel::new(7, 1); // cluster 7 not loaded -> NXDomain
        let send = |net: &mut SimNet| {
            let query = Message::query(0x1111, Question::a(label.qname(&zone_name())));
            net.inject(Datagram::new(
                (CLIENT, 47_001),
                (UPSTREAM, 53),
                query.encode().unwrap(),
            ));
            net.run_until_idle();
        };
        send(&mut net);
        let auth_traffic_after_first = net.stats().delivered;
        send(&mut net);
        let second_cost = net.stats().delivered - auth_traffic_after_first;
        // Second query: client->resolver + resolver->client only.
        assert_eq!(second_cost, 2, "negative cache served the repeat");
        let responses = got.lock();
        assert_eq!(responses.len(), 2);
        assert!(responses
            .iter()
            .all(|m| m.header().rcode() == Rcode::NXDomain));
    }

    #[test]
    fn negative_cache_expires() {
        let (mut net, got) = forward_setup(ResponsePolicy::honest());
        let label = ProbeLabel::new(7, 2);
        let send = |net: &mut SimNet| {
            let query = Message::query(0x2222, Question::a(label.qname(&zone_name())));
            net.inject(Datagram::new(
                (CLIENT, 47_002),
                (UPSTREAM, 53),
                query.encode().unwrap(),
            ));
            net.run_until_idle();
        };
        send(&mut net);
        // The zone SOA minimum is 300s; advance past it.
        net.run_until(net.now() + Duration::from_secs(301));
        let before = net.stats().delivered;
        send(&mut net);
        let cost = net.stats().delivered - before;
        assert!(cost > 2, "expired entry forces a fresh walk, cost {cost}");
        assert_eq!(got.lock().len(), 2);
    }
}

#[cfg(test)]
mod cname_tests {
    use super::*;
    use orscope_authns::{
        AuthoritativeServer, CaptureHandle, ClusterZone, ProbeLabel, RootServer, TldServer, Zone,
    };
    use orscope_dns_wire::RecordType;
    use orscope_netsim::{FixedLatency, SimNet};
    use parking_lot::Mutex;
    use std::sync::Arc;

    const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const AUTH: Ipv4Addr = Ipv4Addr::new(45, 77, 1, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(74, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(131, 94, 0, 9);

    fn zone_name() -> Name {
        "ucfsealresearch.net".parse().unwrap()
    }

    struct Collector(Arc<Mutex<Vec<Message>>>);
    impl Endpoint for Collector {
        fn handle_datagram(&mut self, dgram: &Datagram, _ctx: &mut Context<'_>) {
            self.0.lock().push(Message::decode(&dgram.payload).unwrap());
        }
    }

    fn chase_setup(extra_zone: impl FnOnce(&mut Zone)) -> (SimNet, Arc<Mutex<Vec<Message>>>) {
        let mut net = SimNet::builder()
            .seed(31)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        let mut root = RootServer::new();
        root.delegate(
            "net".parse().unwrap(),
            "a.gtld-servers.net".parse().unwrap(),
            TLD,
        );
        net.register(ROOT, root);
        let mut tld = TldServer::new();
        tld.delegate(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
            AUTH,
        );
        net.register(TLD, tld);
        let mut zone = Zone::new(zone_name(), "ns1.ucfsealresearch.net".parse().unwrap());
        extra_zone(&mut zone);
        let mut cz = ClusterZone::new(zone);
        cz.load_cluster(0, 1000);
        net.register(AUTH, AuthoritativeServer::new(cz, CaptureHandle::new()));
        net.register(
            RESOLVER,
            ProfiledResolver::new(ResponsePolicy::honest(), ResolverConfig::new(ROOT)),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        net.register(CLIENT, Collector(got.clone()));
        (net, got)
    }

    fn ask(net: &mut SimNet, qname: Name) {
        let query = Message::query(0x9999, Question::a(qname));
        net.inject(Datagram::new(
            (CLIENT, 48_000),
            (RESOLVER, 53),
            query.encode().unwrap(),
        ));
        net.run_until_idle();
    }

    #[test]
    fn follows_cname_to_the_canonical_a() {
        let target = ProbeLabel::new(0, 5);
        let (mut net, got) = chase_setup(|zone| {
            zone.add_record(Record::in_class(
                "alias.ucfsealresearch.net".parse().unwrap(),
                300,
                RData::Cname(target.qname(&"ucfsealresearch.net".parse().unwrap())),
            ));
        });
        ask(&mut net, "alias.ucfsealresearch.net".parse().unwrap());
        let responses = got.lock();
        assert_eq!(responses.len(), 1);
        let msg = &responses[0];
        // The answer carries the chain: CNAME first, then the A record.
        assert_eq!(msg.answers().len(), 2);
        assert_eq!(msg.answers()[0].rtype(), RecordType::Cname);
        assert_eq!(
            msg.answers()[1].rdata().as_a(),
            Some(orscope_authns::ground_truth(target))
        );
        // The echoed question is the client's original alias.
        assert_eq!(
            msg.first_question().unwrap().qname().to_string(),
            "alias.ucfsealresearch.net"
        );
        assert_eq!(msg.header().rcode(), Rcode::NoError);
    }

    #[test]
    fn cname_loop_ends_in_servfail() {
        let (mut net, got) = chase_setup(|zone| {
            zone.add_record(Record::in_class(
                "a.ucfsealresearch.net".parse().unwrap(),
                300,
                RData::Cname("b.ucfsealresearch.net".parse().unwrap()),
            ));
            zone.add_record(Record::in_class(
                "b.ucfsealresearch.net".parse().unwrap(),
                300,
                RData::Cname("a.ucfsealresearch.net".parse().unwrap()),
            ));
        });
        ask(&mut net, "a.ucfsealresearch.net".parse().unwrap());
        let responses = got.lock();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].header().rcode(), Rcode::ServFail);
    }

    #[test]
    fn dangling_cname_propagates_nxdomain() {
        let (mut net, got) = chase_setup(|zone| {
            zone.add_record(Record::in_class(
                "dangling.ucfsealresearch.net".parse().unwrap(),
                300,
                RData::Cname("or009.0000001.ucfsealresearch.net".parse().unwrap()),
            ));
        });
        // Cluster 9 is not loaded, so the target does not exist.
        ask(&mut net, "dangling.ucfsealresearch.net".parse().unwrap());
        let responses = got.lock();
        assert_eq!(responses[0].header().rcode(), Rcode::NXDomain);
    }

    #[test]
    fn direct_cname_query_is_not_chased() {
        let target = ProbeLabel::new(0, 6);
        let (mut net, got) = chase_setup(|zone| {
            zone.add_record(Record::in_class(
                "alias2.ucfsealresearch.net".parse().unwrap(),
                300,
                RData::Cname(target.qname(&"ucfsealresearch.net".parse().unwrap())),
            ));
        });
        let query = Message::query(
            0x9998,
            Question::new(
                "alias2.ucfsealresearch.net".parse().unwrap(),
                RecordType::Cname,
                orscope_dns_wire::RecordClass::In,
            ),
        );
        net.inject(Datagram::new(
            (CLIENT, 48_001),
            (RESOLVER, 53),
            query.encode().unwrap(),
        ));
        net.run_until_idle();
        let responses = got.lock();
        assert_eq!(
            responses[0].answers().len(),
            1,
            "CNAME itself is the answer"
        );
        assert_eq!(responses[0].answers()[0].rtype(), RecordType::Cname);
    }
}

#[cfg(test)]
mod version_and_snoop_tests {
    use super::*;
    use orscope_authns::{
        AuthoritativeServer, CaptureHandle, ClusterZone, ProbeLabel, RootServer, TldServer, Zone,
    };
    use orscope_dns_wire::{RecordClass, RecordType};
    use orscope_netsim::{FixedLatency, SimNet};
    use parking_lot::Mutex;
    use std::sync::Arc;

    const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const AUTH: Ipv4Addr = Ipv4Addr::new(45, 77, 1, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(74, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(131, 94, 0, 9);

    fn zone_name() -> Name {
        "ucfsealresearch.net".parse().unwrap()
    }

    struct Collector(Arc<Mutex<Vec<Message>>>);
    impl Endpoint for Collector {
        fn handle_datagram(&mut self, dgram: &Datagram, _ctx: &mut Context<'_>) {
            self.0.lock().push(Message::decode(&dgram.payload).unwrap());
        }
    }

    fn setup(policy: ResponsePolicy) -> (SimNet, Arc<Mutex<Vec<Message>>>) {
        let mut net = SimNet::builder()
            .seed(77)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        let mut root = RootServer::new();
        root.delegate(
            "net".parse().unwrap(),
            "a.gtld-servers.net".parse().unwrap(),
            TLD,
        );
        net.register(ROOT, root);
        let mut tld = TldServer::new();
        tld.delegate(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
            AUTH,
        );
        net.register(TLD, tld);
        let mut cz = ClusterZone::new(Zone::new(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
        ));
        cz.load_cluster(0, 1000);
        net.register(AUTH, AuthoritativeServer::new(cz, CaptureHandle::new()));
        net.register(
            RESOLVER,
            ProfiledResolver::new(policy, ResolverConfig::new(ROOT)),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        net.register(CLIENT, Collector(got.clone()));
        (net, got)
    }

    fn send(net: &mut SimNet, mut query: Message) {
        query.header_mut().set_id(0xABCD);
        net.inject(Datagram::new(
            (CLIENT, 49_000),
            (RESOLVER, 53),
            query.encode().unwrap(),
        ));
        net.run_until_idle();
    }

    #[test]
    fn version_bind_discloses_configured_banner() {
        let policy = ResponsePolicy::honest().with_version_banner("BIND 9.9.4");
        let (mut net, got) = setup(policy);
        let question = Question::new(
            "version.bind".parse().unwrap(),
            RecordType::Txt,
            RecordClass::Ch,
        );
        send(&mut net, Message::query(1, question));
        let responses = got.lock();
        assert_eq!(responses.len(), 1);
        match responses[0].answers()[0].rdata() {
            RData::Txt(segments) => assert_eq!(segments[0], b"BIND 9.9.4"),
            other => panic!("{other:?}"),
        }
        assert_eq!(responses[0].answers()[0].class(), RecordClass::Ch);
    }

    #[test]
    fn version_bind_refused_without_banner() {
        let (mut net, got) = setup(ResponsePolicy::honest());
        let question = Question::new(
            "version.bind".parse().unwrap(),
            RecordType::Txt,
            RecordClass::Ch,
        );
        send(&mut net, Message::query(2, question));
        assert_eq!(got.lock()[0].header().rcode(), Rcode::Refused);
    }

    #[test]
    fn cache_snooping_reveals_cached_names_only() {
        let (mut net, got) = setup(ResponsePolicy::honest());
        let cached = ProbeLabel::new(0, 1).qname(&zone_name());
        let uncached = ProbeLabel::new(0, 2).qname(&zone_name());
        // Warm the cache with an ordinary recursive query.
        send(&mut net, Message::query(3, Question::a(cached.clone())));
        // Snoop both names with RD=0.
        for name in [cached.clone(), uncached.clone()] {
            let mut q = Message::query(4, Question::a(name));
            q.header_mut().set_recursion_desired(false);
            send(&mut net, q);
        }
        let responses = got.lock();
        assert_eq!(responses.len(), 3);
        // The cached name is disclosed...
        assert_eq!(responses[1].answers().len(), 1);
        assert_eq!(
            responses[1].answers()[0].rdata().as_a(),
            Some(orscope_authns::ground_truth(ProbeLabel::new(0, 1)))
        );
        // ...the uncached one is not, and no recursion was triggered.
        assert!(responses[2].answers().is_empty());
        assert_eq!(responses[2].header().rcode(), Rcode::NoError);
        // Cached TTL has counted down (snoop sees remaining lifetime).
        assert!(responses[1].answers()[0].ttl() <= 60);
    }

    #[test]
    fn snooped_ttl_decays_with_time() {
        let (mut net, got) = setup(ResponsePolicy::honest());
        let name = ProbeLabel::new(0, 5).qname(&zone_name());
        send(&mut net, Message::query(5, Question::a(name.clone())));
        net.run_until(net.now() + Duration::from_secs(40));
        let mut q = Message::query(6, Question::a(name));
        q.header_mut().set_recursion_desired(false);
        send(&mut net, q);
        let responses = got.lock();
        let ttl = responses[1].answers()[0].ttl();
        assert!(ttl <= 20, "ttl {ttl} should have decayed from 60");
    }
}

#[cfg(test)]
mod dns0x20_tests {
    use super::*;
    use orscope_authns::{
        AuthoritativeServer, CaptureHandle, ClusterZone, ProbeLabel, RootServer, TldServer, Zone,
    };
    use orscope_netsim::{FixedLatency, SimNet};
    use parking_lot::Mutex;
    use std::sync::Arc;

    const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const TLD: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
    const AUTH: Ipv4Addr = Ipv4Addr::new(45, 77, 1, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(74, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(131, 94, 0, 9);

    fn zone_name() -> Name {
        "ucfsealresearch.net".parse().unwrap()
    }

    struct Collector(Arc<Mutex<Vec<Message>>>);
    impl Endpoint for Collector {
        fn handle_datagram(&mut self, dgram: &Datagram, _ctx: &mut Context<'_>) {
            self.0.lock().push(Message::decode(&dgram.payload).unwrap());
        }
    }

    #[test]
    fn resolution_succeeds_with_0x20_enabled() {
        let mut net = SimNet::builder()
            .seed(61)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        let mut root = RootServer::new();
        root.delegate(
            "net".parse().unwrap(),
            "a.gtld-servers.net".parse().unwrap(),
            TLD,
        );
        net.register(ROOT, root);
        let mut tld = TldServer::new();
        tld.delegate(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
            AUTH,
        );
        net.register(TLD, tld);
        let mut cz = ClusterZone::new(Zone::new(
            zone_name(),
            "ns1.ucfsealresearch.net".parse().unwrap(),
        ));
        cz.load_cluster(0, 100);
        net.register(AUTH, AuthoritativeServer::new(cz, CaptureHandle::new()));
        let config = ResolverConfig {
            dns0x20: true,
            ..ResolverConfig::new(ROOT)
        };
        net.register(
            RESOLVER,
            ProfiledResolver::new(ResponsePolicy::honest(), config),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        net.register(CLIENT, Collector(got.clone()));
        let label = ProbeLabel::new(0, 9);
        let query = Message::query(5, Question::a(label.qname(&zone_name())));
        net.inject(Datagram::new(
            (CLIENT, 44_000),
            (RESOLVER, 53),
            query.encode().unwrap(),
        ));
        net.run_until_idle();
        let responses = got.lock();
        assert_eq!(
            responses.len(),
            1,
            "the echo validation accepted the genuine answer"
        );
        assert_eq!(
            responses[0].answers()[0].rdata().as_a(),
            Some(orscope_authns::ground_truth(label))
        );
        // The client sees its own original spelling echoed back.
        let original = label.qname(&zone_name());
        assert!(responses[0]
            .first_question()
            .unwrap()
            .qname()
            .eq_bytes(&original));
    }

    #[test]
    fn forged_response_with_wrong_case_is_dropped() {
        // Direct unit-level check: build a resolver, start a resolution,
        // then hand it a response whose question uses the canonical
        // lowercase spelling instead of the scrambled one.
        let mut net = SimNet::builder()
            .seed(62)
            .latency(FixedLatency(Duration::from_millis(5)))
            .build();
        let config = ResolverConfig {
            dns0x20: true,
            timeout: Duration::from_millis(200),
            retries: 0,
            ..ResolverConfig::new(ROOT)
        };
        net.register(
            RESOLVER,
            ProfiledResolver::new(ResponsePolicy::honest(), config),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        net.register(CLIENT, Collector(got.clone()));
        let label = ProbeLabel::new(0, 3);
        let qname = label.qname(&zone_name());
        let query = Message::query(6, Question::a(qname.clone()));
        net.inject(Datagram::new(
            (CLIENT, 44_001),
            (RESOLVER, 53),
            query.encode().unwrap(),
        ));
        // Forged answer "from the root" with canonical-case question and
        // a guessed txn id of 1 (the sequential allocator would use it —
        // but we use randomize_txn default true; to hit the id reliably
        // turn the spray across the whole low range).
        for txn in 0..512u16 {
            let mut forged = Message::builder()
                .id(txn)
                .question(Question::a(qname.clone()))
                .answer(Record::in_class(
                    qname.clone(),
                    60,
                    RData::A(Ipv4Addr::new(6, 6, 6, 6)),
                ))
                .build();
            forged.header_mut().set_response(true);
            net.inject(Datagram::new(
                (ROOT, 53),
                (RESOLVER, 32_768 + (txn & 0x3FFF)),
                forged.encode().unwrap(),
            ));
        }
        net.run_until_idle();
        let responses = got.lock();
        // The resolution fails (no real hierarchy), but critically the
        // forged answer never reached the client.
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].header().rcode(), Rcode::ServFail);
        assert!(responses[0].answers().is_empty());
    }
}
