//! Largest-remainder scaling of cell counts.
//!
//! Scaled-down campaigns must divide every population cell by the scale
//! factor while (a) keeping the grand total exactly `round(total/scale)`
//! and (b) never inflating a cell's share. The largest-remainder (Hare)
//! method does both and is the standard apportionment tool.

/// Scales `counts` down by `scale`, preserving the rounded grand total.
///
/// Returns per-cell scaled counts such that
/// `sum(result) == round(sum(counts) / scale)`.
///
/// # Panics
///
/// Panics if `scale == 0`.
///
/// # Example
///
/// ```
/// use orscope_resolver::scaling::scale_counts;
///
/// let cells = [600u64, 250, 150];
/// let scaled = scale_counts(&cells, 100.0);
/// assert_eq!(scaled, vec![6, 3, 1]); // due by share: 6.0, 2.5, 1.5
/// assert_eq!(scaled.iter().sum::<u64>(), 10);
/// ```
pub fn scale_counts(counts: &[u64], scale: f64) -> Vec<u64> {
    assert!(scale > 0.0, "scale must be positive");
    let total: u64 = counts.iter().sum();
    let target = (total as f64 / scale).round() as u64;
    apportion(counts, target)
}

/// Apportions exactly `target` units across `counts` proportionally by
/// the largest-remainder method.
///
/// Used when several linked breakdowns (e.g. the malicious-resolver flag
/// cells and their country distribution) must scale to the *same* total.
pub fn apportion(counts: &[u64], target: u64) -> Vec<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || target == 0 {
        return vec![0; counts.len()];
    }
    // Exact shares and floors.
    let mut floors: Vec<u64> = Vec::with_capacity(counts.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(counts.len());
    let mut assigned = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        let share = c as f64 * target as f64 / total as f64;
        let floor = share.floor() as u64;
        floors.push(floor);
        assigned += floor;
        remainders.push((i, share - floor as f64));
    }
    // Distribute the leftover units to the largest remainders; break ties
    // toward earlier cells for determinism.
    let mut leftover = target.saturating_sub(assigned);
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for (i, _) in remainders {
        if leftover == 0 {
            break;
        }
        floors[i] += 1;
        leftover -= 1;
    }
    floors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_total() {
        let cells = [3_434_415u64, 3_994, 65_172, 207_694, 2_748_568, 45_921];
        for scale in [1.0, 10.0, 100.0, 1000.0, 5000.0] {
            let scaled = scale_counts(&cells, scale);
            let total: u64 = cells.iter().sum();
            assert_eq!(
                scaled.iter().sum::<u64>(),
                (total as f64 / scale).round() as u64,
                "scale {scale}"
            );
        }
    }

    #[test]
    fn scale_one_is_identity() {
        let cells = [5u64, 0, 17, 3];
        assert_eq!(scale_counts(&cells, 1.0), cells.to_vec());
    }

    #[test]
    fn zero_cells_stay_zero() {
        let scaled = scale_counts(&[0, 100, 0], 10.0);
        assert_eq!(scaled[0], 0);
        assert_eq!(scaled[2], 0);
        assert_eq!(scaled[1], 10);
    }

    #[test]
    fn tiny_cells_can_round_away() {
        // 2 out of 1,000,000 at scale 1000: share 0.002 -> 0.
        let scaled = scale_counts(&[999_998, 2], 1000.0);
        assert_eq!(scaled.iter().sum::<u64>(), 1000);
        assert!(scaled[1] <= 1);
    }

    #[test]
    fn proportions_roughly_preserved() {
        let cells = [700u64, 200, 100];
        let scaled = scale_counts(&cells, 10.0);
        assert_eq!(scaled, vec![70, 20, 10]);
    }

    #[test]
    fn apportion_exact_target() {
        let out = apportion(&[10, 10, 10], 10);
        assert_eq!(out.iter().sum::<u64>(), 10);
        assert_eq!(out, vec![4, 3, 3]);
        assert_eq!(apportion(&[1, 1], 0), vec![0, 0]);
        assert_eq!(apportion(&[0, 0], 5), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = scale_counts(&[1], 0.0);
    }

    #[test]
    fn empty_input() {
        assert_eq!(scale_counts(&[], 10.0), Vec::<u64>::new());
    }
}
