//! The paper's published numbers, resolved into a generative population
//! specification.
//!
//! Everything in this module is *data recovered from the paper's tables*
//! (Tables II-X plus the in-text country distributions of §IV-C2 and the
//! empty-question breakdown of §IV-B4), reorganized as the joint cell
//! decomposition a population generator needs. Where the paper prints
//! only marginals (it never gives the full RA x AA x rcode x answer
//! joint), cells were allocated deterministically under documented
//! assumptions; all printed marginals are preserved and asserted by the
//! tests at the bottom of this module.
//!
//! Resolved paper-internal inconsistencies (also listed in DESIGN.md):
//!
//! 1. Table I's printed total (575,931,649) is one /8 short of its own
//!    rows; the 2018 Q1 count confirms the rows (see `orscope_ipspace`).
//! 2. Table V 2018 prints AA0 W_corr = 2,727,477 and AA0 W/O =
//!    3,512,053, but Tables III/IV force 2,727,467 and 3,512,063 (ten
//!    packets moved between the columns); we use the consistent values.
//! 3. Table VI 2018 W/O sums 14 short of Table III's W/O; the residual is
//!    assigned to Refused (the dominant bucket).
//! 4. Table VI 2013 W NoError (11,780,575) disagrees with Table III's W
//!    minus the stated 14,005 nonzero-rcode answers; we use the derived
//!    11,778,877 (2013 W/O similarly gets +12 on Refused).
//! 5. Table VII 2013 "string" prints 10 packets over 57 uniques; we use
//!    10 uniques.
//! 6. §IV-B4's RA split (184 + 303 = 487) misses 7 of the 494 packets;
//!    the 7 are assigned to RA=0.
//! 7. The 2013 top-10 list gives explicit counts for only six entries;
//!    the remaining four are reconstructed to preserve the printed total
//!    (26,514), the stated ordering hints, and each entry's rank.

use std::net::Ipv4Addr;

use orscope_dns_wire::Rcode;
use orscope_threatintel::Category;

/// Which scan a specification describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Year {
    /// The October-November 2013 scan (7d 5h, C-based prober).
    Y2013,
    /// The April 2018 scan (11h, modified ZMap at 100k pps).
    Y2018,
}

impl Year {
    /// Both scans, chronological.
    pub const ALL: [Year; 2] = [Year::Y2013, Year::Y2018];

    /// The calendar year as a number.
    pub fn as_u16(self) -> u16 {
        match self {
            Year::Y2013 => 2013,
            Year::Y2018 => 2018,
        }
    }
}

impl std::fmt::Display for Year {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_u16())
    }
}

/// Answer classification of an R2 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerClass {
    /// No `dns_answer` section (the W/O column).
    None,
    /// Answer matches the zone's ground truth.
    Correct,
    /// Answer present but wrong (IP / URL / string forms).
    Incorrect,
    /// Answer present but undecodable (2013's 8,764 N/A packets).
    Malformed,
}

/// One homogeneous population cell: every resolver in it responds with
/// the same flags, rcode and answer class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagCell {
    /// Recursion Available bit of the response.
    pub ra: bool,
    /// Authoritative Answer bit of the response.
    pub aa: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Answer class.
    pub answer: AnswerClass,
    /// Number of resolvers (== R2 packets) in the cell.
    pub count: u64,
}

/// Which value pool an incorrect-answer slice draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncorrectPool {
    /// Addresses with threat-intel reports (Tables VIII-X).
    Malicious,
    /// Wrong but unreported addresses (hosting parkers, private IPs...).
    BenignIp,
    /// CNAME/URL answers.
    Url,
    /// String answers (`wild`, `OK`, ...).
    Str,
    /// Undecodable rdata (2013 N/A).
    Malformed,
}

/// A slice of the incorrect population: `count` resolvers with the given
/// flags, drawing answer values from `pool` in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncorrectSlice {
    /// Recursion Available bit.
    pub ra: bool,
    /// Authoritative Answer bit.
    pub aa: bool,
    /// Value pool.
    pub pool: IncorrectPool,
    /// Number of resolvers.
    pub count: u64,
}

/// An explicitly named top wrong-answer address (Table VIII / §IV-C1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopIpEntry {
    /// The answer address.
    pub ip: Ipv4Addr,
    /// R2 packets carrying it.
    pub count: u64,
    /// Threat category if the address is reported (Cymon column "Y").
    pub category: Option<Category>,
    /// Organization name from Whois (Table VIII "Org Name").
    pub org: &'static str,
}

/// One Table IX row: a category's unique-address and packet counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaliciousCategorySpec {
    /// The threat category.
    pub category: Category,
    /// Unique reported addresses in the category.
    pub unique_ips: u64,
    /// R2 packets carrying those addresses.
    pub r2: u64,
}

/// The incorrect-answer side of a year: pools and their flag placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncorrectSpec {
    /// Flag placement slices; pool draws happen in list order.
    pub slices: Vec<IncorrectSlice>,
    /// Explicit top addresses (malicious ones are drawn from the
    /// malicious pool, benign ones from the benign pool, in rank order).
    pub top_ips: Vec<TopIpEntry>,
    /// Table IX rows.
    pub malicious: Vec<MaliciousCategorySpec>,
    /// Table X joint flag counts for malicious packets `(ra, aa, count)`.
    pub malicious_flags: Vec<(bool, bool, u64)>,
    /// Long-tail benign wrong IPs: unique addresses and total packets.
    pub tail_ip_unique: u64,
    /// Packets across the benign tail.
    pub tail_ip_r2: u64,
    /// URL-form answers: unique values / packets (Table VII).
    pub url_unique: u64,
    /// Packets across URL-form answers.
    pub url_r2: u64,
    /// String-form answers: unique values / packets (Table VII).
    pub string_unique: u64,
    /// Packets across string-form answers.
    pub string_r2: u64,
    /// Undecodable answers (Table VII N/A; 2013 only).
    pub malformed_r2: u64,
}

/// A §IV-B4 empty-question responder cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmptyQuestionCell {
    /// RA bit.
    pub ra: bool,
    /// AA bit.
    pub aa: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Fixed answer payload (`None` = empty answer section).
    pub answer: Option<crate::profile::AnswerData>,
    /// Number of resolvers.
    pub count: u64,
}

/// Everything needed to regenerate one year's population and compare the
/// measured tables against the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct YearSpec {
    /// Which scan.
    pub year: Year,
    /// Q1: probes sent (Table II).
    pub q1: u64,
    /// Q2 == R1: packets at the authoritative server (Table II).
    pub q2_r1: u64,
    /// R2: responses captured at the prober (Table II).
    pub r2: u64,
    /// Scan duration in seconds (Table II).
    pub duration_secs: u64,
    /// Probe rate in packets per second.
    pub probe_rate_pps: u64,
    /// Homogeneous cells for the `None`/`Correct` answer classes.
    pub flag_cells: Vec<FlagCell>,
    /// The incorrect-answer specification.
    pub incorrect: IncorrectSpec,
    /// §IV-B4 empty-question responders (2018 only).
    pub empty_question: Vec<EmptyQuestionCell>,
    /// Baseline auth-server queries per resolution for correct resolvers.
    pub auth_dup_base: u16,
    /// Fraction of correct resolvers sending one extra auth query
    /// (calibrates Table II's Q2 against R2).
    pub auth_dup_extra_fraction: f64,
    /// Country distribution of malicious R2 sources (§IV-C2).
    pub countries: Vec<(&'static str, u64)>,
}

impl YearSpec {
    /// The specification for `year`.
    pub fn get(year: Year) -> YearSpec {
        match year {
            Year::Y2013 => spec_2013(),
            Year::Y2018 => spec_2018(),
        }
    }

    /// Total resolvers answering with each [`AnswerClass`].
    pub fn answer_class_total(&self, class: AnswerClass) -> u64 {
        let from_cells: u64 = self
            .flag_cells
            .iter()
            .filter(|c| c.answer == class)
            .map(|c| c.count)
            .sum();
        let from_incorrect: u64 = self
            .incorrect
            .slices
            .iter()
            .filter(|s| match class {
                AnswerClass::Incorrect => s.pool != IncorrectPool::Malformed,
                AnswerClass::Malformed => s.pool == IncorrectPool::Malformed,
                _ => false,
            })
            .map(|s| s.count)
            .sum();
        from_cells + from_incorrect
    }

    /// Total matched R2 (excludes the empty-question packets).
    pub fn matched_r2(&self) -> u64 {
        self.flag_cells.iter().map(|c| c.count).sum::<u64>()
            + self.incorrect.slices.iter().map(|s| s.count).sum::<u64>()
    }

    /// Total empty-question R2.
    pub fn empty_question_r2(&self) -> u64 {
        self.empty_question.iter().map(|c| c.count).sum()
    }

    /// Total malicious R2 packets (Table IX bottom row).
    pub fn malicious_r2(&self) -> u64 {
        self.incorrect.malicious.iter().map(|m| m.r2).sum()
    }

    /// Total unique malicious addresses (Table IX bottom row).
    pub fn malicious_unique(&self) -> u64 {
        self.incorrect.malicious.iter().map(|m| m.unique_ips).sum()
    }
}

/// A cell helper.
fn cell(ra: bool, aa: bool, rcode: Rcode, answer: AnswerClass, count: u64) -> FlagCell {
    FlagCell {
        ra,
        aa,
        rcode,
        answer,
        count,
    }
}

fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

/// The 2018 scan specification.
fn spec_2018() -> YearSpec {
    use AnswerClass::{Correct, None as NoAns};
    use IncorrectPool::*;
    let flag_cells = vec![
        // ---- Correct answers (Tables III/IV/V; recursing profiles) ----
        cell(true, false, Rcode::NoError, Correct, 2_724_752),
        cell(true, false, Rcode::FormErr, Correct, 23),
        cell(true, false, Rcode::ServFail, Correct, 2_489),
        cell(true, false, Rcode::NXDomain, Correct, 10),
        cell(true, false, Rcode::Refused, Correct, 193),
        cell(true, true, Rcode::NoError, Correct, 21_101),
        cell(false, true, Rcode::NoError, Correct, 3_994),
        // ---- No answer (W/O; Tables IV/V/VI) ----
        cell(true, false, Rcode::NoError, NoAns, 207_694),
        cell(false, true, Rcode::NoError, NoAns, 130_046),
        cell(false, false, Rcode::NoError, NoAns, 40_063),
        cell(false, false, Rcode::FormErr, NoAns, 233),
        cell(false, false, Rcode::ServFail, NoAns, 200_320),
        cell(false, false, Rcode::NXDomain, NoAns, 48_830),
        cell(false, false, Rcode::NotImp, NoAns, 605),
        cell(false, false, Rcode::Refused, NoAns, 2_934_283), // 2,934,269 + 14 residual
        cell(false, false, Rcode::YXDomain, NoAns, 1),
        cell(false, false, Rcode::YXRRSet, NoAns, 2),
        cell(false, false, Rcode::NotAuth, NoAns, 80_032),
    ];
    let incorrect = IncorrectSpec {
        slices: vec![
            // Malicious first, per Table X's joint flag counts.
            IncorrectSlice {
                ra: false,
                aa: true,
                pool: Malicious,
                count: 19_454,
            },
            IncorrectSlice {
                ra: false,
                aa: false,
                pool: Malicious,
                count: 80,
            },
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: Malicious,
                count: 7_392,
            },
            // Benign wrong IPs fill the remaining flag budget.
            IncorrectSlice {
                ra: false,
                aa: true,
                pool: BenignIp,
                count: 45_638,
            },
            IncorrectSlice {
                ra: true,
                aa: true,
                pool: BenignIp,
                count: 28_960,
            },
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: BenignIp,
                count: 9_266,
            },
            // URL and string forms (placed in the plain RA1/AA0 cell).
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: Url,
                count: 231,
            },
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: Str,
                count: 72,
            },
        ],
        top_ips: vec![
            TopIpEntry {
                ip: ip(216, 194, 64, 193),
                count: 23_692,
                category: None,
                org: "Tera-byte Dot Com",
            },
            TopIpEntry {
                ip: ip(74, 220, 199, 15),
                count: 13_369,
                category: Some(Category::Malware),
                org: "Unified Layer",
            },
            TopIpEntry {
                ip: ip(208, 91, 197, 91),
                count: 8_239,
                category: Some(Category::Malware),
                org: "Confluence Network Inc",
            },
            TopIpEntry {
                ip: ip(141, 8, 225, 68),
                count: 1_197,
                category: Some(Category::Malware),
                org: "Rook Media GmbH",
            },
            TopIpEntry {
                ip: ip(192, 168, 1, 1),
                count: 1_014,
                category: None,
                org: "private network",
            },
            TopIpEntry {
                ip: ip(192, 168, 2, 1),
                count: 741,
                category: None,
                org: "private network",
            },
            TopIpEntry {
                ip: ip(114, 44, 34, 86),
                count: 734,
                category: None,
                org: "Chunghwa Telecom",
            },
            TopIpEntry {
                ip: ip(172, 30, 1, 254),
                count: 607,
                category: None,
                org: "private network",
            },
            TopIpEntry {
                ip: ip(10, 0, 0, 1),
                count: 548,
                category: None,
                org: "private network",
            },
            TopIpEntry {
                ip: ip(118, 166, 1, 6),
                count: 528,
                category: None,
                org: "Chunghwa Telecom",
            },
        ],
        malicious: vec![
            MaliciousCategorySpec {
                category: Category::Malware,
                unique_ips: 170,
                r2: 23_189,
            },
            MaliciousCategorySpec {
                category: Category::Phishing,
                unique_ips: 125,
                r2: 2_878,
            },
            MaliciousCategorySpec {
                category: Category::Spam,
                unique_ips: 15,
                r2: 44,
            },
            MaliciousCategorySpec {
                category: Category::SshBruteforce,
                unique_ips: 10,
                r2: 323,
            },
            MaliciousCategorySpec {
                category: Category::Scan,
                unique_ips: 9,
                r2: 388,
            },
            MaliciousCategorySpec {
                category: Category::Botnet,
                unique_ips: 4,
                r2: 102,
            },
            MaliciousCategorySpec {
                category: Category::EmailBruteforce,
                unique_ips: 2,
                r2: 2,
            },
        ],
        malicious_flags: vec![
            (false, true, 19_454),
            (false, false, 80),
            (true, false, 7_392),
        ],
        tail_ip_unique: 14_680,
        tail_ip_r2: 56_000,
        url_unique: 80,
        url_r2: 231,
        string_unique: 29,
        string_r2: 72,
        malformed_r2: 0,
    };
    let empty_question = empty_question_2018();
    YearSpec {
        year: Year::Y2018,
        q1: 3_702_258_432,
        q2_r1: 13_049_863,
        r2: 6_506_258,
        duration_secs: 11 * 3600, // 04/26 3PM -> 04/27 2AM
        probe_rate_pps: 100_000,
        flag_cells,
        incorrect,
        empty_question,
        auth_dup_base: 4,
        // 13,049,863 / 2,752,562 = 4.7410...
        auth_dup_extra_fraction: 0.741,
        countries: vec![
            ("US", 21_819),
            ("IN", 3_596),
            ("HK", 714),
            ("VG", 291),
            ("AE", 162),
            ("CN", 146),
            ("DE", 31),
            ("PL", 24),
            ("RU", 18),
            ("BG", 16),
            ("NL", 14),
            ("IE", 12),
            ("AU", 11),
            ("KY", 11),
            ("CA", 8),
            ("FR", 7),
            ("GB", 7),
            ("JP", 7),
            ("CH", 6),
            ("PT", 6),
            ("IT", 5),
            ("SG", 3),
            ("TR", 3),
            ("VN", 2),
            ("AR", 1),
            ("AT", 1),
            ("ES", 1),
            ("JO", 1),
            ("LT", 1),
            ("MY", 1),
            ("UA", 1),
        ],
    }
}

/// The §IV-B4 empty-question cells (494 packets, 2018).
fn empty_question_2018() -> Vec<EmptyQuestionCell> {
    use crate::profile::AnswerData;
    let eq = |ra: bool, aa: bool, rcode: Rcode, answer: Option<AnswerData>, count: u64| {
        EmptyQuestionCell {
            ra,
            aa,
            rcode,
            answer,
            count,
        }
    };
    let mut cells = Vec::new();
    // 19 packets with (incorrect) answers, all RA=1 AA=0 rcode NoError:
    // 13 x 192.168.0.0/16, 1 x 10.0.0.0/8, 1 garbled string, 4 unrouted.
    for i in 0..13u8 {
        cells.push(eq(
            true,
            false,
            Rcode::NoError,
            Some(AnswerData::FixedIp(ip(192, 168, i, 1))),
            1,
        ));
    }
    cells.push(eq(
        true,
        false,
        Rcode::NoError,
        Some(AnswerData::FixedIp(ip(10, 11, 12, 13))),
        1,
    ));
    cells.push(eq(
        true,
        false,
        Rcode::NoError,
        Some(AnswerData::Text("0000".to_owned())),
        1,
    ));
    for i in 0..4u8 {
        // Addresses "which could not be found in Whois".
        cells.push(eq(
            true,
            false,
            Rcode::NoError,
            Some(AnswerData::FixedIp(ip(185, 251, 200 + i, 9))),
            1,
        ));
    }
    // 475 without answers: RA1 165, RA0 310 (incl. the +7 of note 6);
    // rcodes: NoError 7, FormErr 1, ServFail 302, NXDomain 2, Refused 163;
    // AA=1 on two RA0 ServFail packets.
    cells.push(eq(true, false, Rcode::NoError, None, 7));
    cells.push(eq(true, false, Rcode::ServFail, None, 158));
    cells.push(eq(false, false, Rcode::ServFail, None, 142));
    cells.push(eq(false, true, Rcode::ServFail, None, 2));
    cells.push(eq(false, false, Rcode::FormErr, None, 1));
    cells.push(eq(false, false, Rcode::NXDomain, None, 2));
    cells.push(eq(false, false, Rcode::Refused, None, 163));
    cells
}

/// The 2013 scan specification.
fn spec_2013() -> YearSpec {
    use AnswerClass::{Correct, None as NoAns};
    use IncorrectPool::*;
    let flag_cells = vec![
        // ---- Correct answers ----
        cell(true, false, Rcode::NoError, Correct, 11_491_476),
        cell(true, false, Rcode::ServFail, Correct, 12_723),
        cell(true, false, Rcode::NXDomain, Correct, 10),
        cell(true, false, Rcode::Refused, Correct, 1_272),
        cell(false, true, Rcode::NoError, Correct, 153_089),
        cell(false, false, Rcode::NoError, Correct, 13_019),
        // ---- No answer ----
        cell(true, false, Rcode::NoError, NoAns, 719_403),
        cell(false, true, Rcode::NoError, NoAns, 149_756),
        cell(false, false, Rcode::NoError, NoAns, 329_613),
        cell(false, false, Rcode::FormErr, NoAns, 453),
        cell(false, false, Rcode::ServFail, NoAns, 354_176),
        cell(false, false, Rcode::NXDomain, NoAns, 145_724),
        cell(false, false, Rcode::NotImp, NoAns, 38),
        cell(false, false, Rcode::Refused, NoAns, 3_168_065), // 3,168,053 + 12 residual
        cell(false, false, Rcode::YXRRSet, NoAns, 2),
        cell(false, false, Rcode::NotAuth, NoAns, 11),
    ];
    let incorrect = IncorrectSpec {
        slices: vec![
            IncorrectSlice {
                ra: false,
                aa: true,
                pool: Malicious,
                count: 12_874,
            },
            IncorrectSlice {
                ra: false,
                aa: true,
                pool: BenignIp,
                count: 62_968,
            },
            IncorrectSlice {
                ra: true,
                aa: true,
                pool: BenignIp,
                count: 2_437,
            },
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: BenignIp,
                count: 33_991,
            },
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: Url,
                count: 249,
            },
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: Str,
                count: 10,
            },
            IncorrectSlice {
                ra: true,
                aa: false,
                pool: Malformed,
                count: 8_764,
            },
        ],
        // Reconstructed per note 7: explicit counts are the paper's;
        // ranks 2, 4, 6 and 10 are reconstructed to sum to 26,514.
        top_ips: vec![
            TopIpEntry {
                ip: ip(74, 220, 199, 15),
                count: 9_651,
                category: Some(Category::Malware),
                org: "Unified Layer",
            },
            TopIpEntry {
                ip: ip(192, 168, 1, 254),
                count: 5_200,
                category: None,
                org: "private network",
            },
            TopIpEntry {
                ip: ip(20, 20, 20, 20),
                count: 5_100,
                category: None,
                org: "Microsoft Corporation",
            },
            TopIpEntry {
                ip: ip(192, 168, 2, 1),
                count: 1_400,
                category: None,
                org: "private network",
            },
            TopIpEntry {
                ip: ip(0, 0, 0, 0),
                count: 1_032,
                category: None,
                org: "private network",
            },
            TopIpEntry {
                ip: ip(202, 106, 0, 20),
                count: 1_010,
                category: None,
                org: "China Unicom",
            },
            TopIpEntry {
                ip: ip(173, 192, 59, 63),
                count: 995,
                category: None,
                org: "SoftLayer Technologies",
            },
            TopIpEntry {
                ip: ip(221, 238, 203, 46),
                count: 811,
                category: None,
                org: "China Telecom",
            },
            TopIpEntry {
                ip: ip(68, 87, 91, 199),
                count: 748,
                category: None,
                org: "Comcast Cable",
            },
            TopIpEntry {
                ip: ip(192, 168, 1, 1),
                count: 567,
                category: None,
                org: "private network",
            },
        ],
        malicious: vec![
            MaliciousCategorySpec {
                category: Category::Malware,
                unique_ips: 65,
                r2: 11_149,
            },
            MaliciousCategorySpec {
                category: Category::Phishing,
                unique_ips: 19,
                r2: 1_092,
            },
            MaliciousCategorySpec {
                category: Category::Spam,
                unique_ips: 4,
                r2: 67,
            },
            MaliciousCategorySpec {
                category: Category::SshBruteforce,
                unique_ips: 2,
                r2: 2,
            },
            MaliciousCategorySpec {
                category: Category::Scan,
                unique_ips: 8,
                r2: 493,
            },
            MaliciousCategorySpec {
                category: Category::Botnet,
                unique_ips: 1,
                r2: 70,
            },
            MaliciousCategorySpec {
                category: Category::EmailBruteforce,
                unique_ips: 1,
                r2: 1,
            },
        ],
        // Table X exists only for 2018; 2013 malicious packets are placed
        // in the RA0/AA1 cell (the 2018 data shows malicious responses
        // cluster there).
        malicious_flags: vec![(false, true, 12_874)],
        tail_ip_unique: 28_334,
        tail_ip_r2: 82_533,
        url_unique: 175,
        url_r2: 249,
        string_unique: 10, // note 5: the printed 57 exceeds the 10 packets
        string_r2: 10,
        malformed_r2: 8_764,
    };
    YearSpec {
        year: Year::Y2013,
        q1: 3_676_724_690,
        q2_r1: 38_079_578,
        r2: 16_660_123,
        duration_secs: 7 * 24 * 3600 + 4 * 3600, // 10/28 2PM -> 11/04 6PM
        probe_rate_pps: 5_903,
        flag_cells,
        incorrect,
        empty_question: Vec::new(),
        auth_dup_base: 3,
        // 38,079,578 / 11,671,589 = 3.2626...
        auth_dup_extra_fraction: 0.2626,
        countries: vec![
            ("US", 12_616),
            ("TR", 91),
            ("VG", 28),
            ("PL", 24),
            ("IR", 18),
            ("BR", 9),
            ("KR", 8),
            ("TW", 8),
            ("AR", 7),
            ("BG", 6),
            ("ES", 5),
            ("PT", 5),
            ("AT", 4),
            ("CA", 4),
            ("DE", 4),
            ("NL", 4),
            ("VN", 4),
            ("CH", 3),
            ("RU", 3),
            ("SA", 3),
            ("AU", 2),
            ("ID", 2),
            ("KE", 2),
            ("SE", 2),
            ("CN", 1),
            ("FR", 1),
            ("GB", 1),
            ("HK", 1),
            ("MA", 1),
            ("NA", 1),
            ("NI", 1),
            ("PR", 1),
            ("SG", 1),
            ("TH", 1),
            ("VA", 1),
            ("ZA", 1),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sum of cells matching a predicate plus incorrect slices matching
    /// another predicate.
    fn marginal(
        spec: &YearSpec,
        cells: impl Fn(&FlagCell) -> bool,
        slices: impl Fn(&IncorrectSlice) -> bool,
    ) -> u64 {
        spec.flag_cells
            .iter()
            .filter(|c| cells(c))
            .map(|c| c.count)
            .sum::<u64>()
            + spec
                .incorrect
                .slices
                .iter()
                .filter(|s| slices(s))
                .map(|s| s.count)
                .sum::<u64>()
    }

    #[test]
    fn table_2_totals() {
        let s13 = YearSpec::get(Year::Y2013);
        assert_eq!(s13.q1, 3_676_724_690);
        assert_eq!(s13.q2_r1, 38_079_578);
        assert_eq!(s13.r2, 16_660_123);
        let s18 = YearSpec::get(Year::Y2018);
        assert_eq!(s18.q1, 3_702_258_432);
        assert_eq!(s18.q2_r1, 13_049_863);
        assert_eq!(s18.r2, 6_506_258);
    }

    #[test]
    fn table_3_marginals_2018() {
        let s = YearSpec::get(Year::Y2018);
        assert_eq!(s.answer_class_total(AnswerClass::None), 3_642_109);
        assert_eq!(s.answer_class_total(AnswerClass::Correct), 2_752_562);
        assert_eq!(s.answer_class_total(AnswerClass::Incorrect), 111_093);
        assert_eq!(s.answer_class_total(AnswerClass::Malformed), 0);
        assert_eq!(s.matched_r2(), 6_505_764);
        assert_eq!(s.empty_question_r2(), 494);
        assert_eq!(s.matched_r2() + s.empty_question_r2(), s.r2);
    }

    #[test]
    fn table_3_marginals_2013() {
        let s = YearSpec::get(Year::Y2013);
        assert_eq!(s.answer_class_total(AnswerClass::None), 4_867_241);
        assert_eq!(s.answer_class_total(AnswerClass::Correct), 11_671_589);
        // Table III's 121,293 "incorrect" includes the 8,764 N/A packets
        // (Table VII's total confirms this).
        assert_eq!(
            s.answer_class_total(AnswerClass::Incorrect)
                + s.answer_class_total(AnswerClass::Malformed),
            121_293
        );
        assert_eq!(s.answer_class_total(AnswerClass::Malformed), 8_764);
        assert_eq!(s.matched_r2(), s.r2);
    }

    #[test]
    fn table_4_ra_marginals() {
        for (year, expect) in [
            // (RA0 W/O, RA0 corr, RA0 incorr, RA1 W/O, RA1 corr, RA1 incorr)
            (
                Year::Y2013,
                (
                    4_147_838u64,
                    166_108u64,
                    75_842u64,
                    719_403u64,
                    11_505_481u64,
                    45_451u64,
                ),
            ),
            (
                Year::Y2018,
                (3_434_415, 3_994, 65_172, 207_694, 2_748_568, 45_921),
            ),
        ] {
            let s = YearSpec::get(year);
            let wo = |ra: bool| {
                marginal(
                    &s,
                    |c| c.ra == ra && c.answer == AnswerClass::None,
                    |_| false,
                )
            };
            let corr = |ra: bool| {
                marginal(
                    &s,
                    |c| c.ra == ra && c.answer == AnswerClass::Correct,
                    |_| false,
                )
            };
            let incorr = |ra: bool| marginal(&s, |_| false, |sl| sl.ra == ra);
            assert_eq!(wo(false), expect.0, "{year} RA0 W/O");
            assert_eq!(corr(false), expect.1, "{year} RA0 corr");
            assert_eq!(incorr(false), expect.2, "{year} RA0 incorr");
            assert_eq!(wo(true), expect.3, "{year} RA1 W/O");
            assert_eq!(corr(true), expect.4, "{year} RA1 corr");
            assert_eq!(incorr(true), expect.5, "{year} RA1 incorr");
        }
    }

    #[test]
    fn table_5_aa_marginals() {
        for (year, expect) in [
            // (AA0 W/O, AA0 corr, AA0 incorr, AA1 W/O, AA1 corr, AA1 incorr)
            (
                Year::Y2013,
                (
                    4_717_485u64,
                    11_518_500u64,
                    43_014u64,
                    149_756u64,
                    153_089u64,
                    78_279u64,
                ),
            ),
            // AA0 W/O and corr use the Table III/IV-consistent values
            // (note 2): Table V prints 3,512,053 / 2,727,477, shifting
            // ten packets between the columns relative to Table III.
            (
                Year::Y2018,
                (3_512_063, 2_727_467, 17_041, 130_046, 25_095, 94_052),
            ),
        ] {
            let s = YearSpec::get(year);
            let wo = |aa: bool| {
                marginal(
                    &s,
                    |c| c.aa == aa && c.answer == AnswerClass::None,
                    |_| false,
                )
            };
            let corr = |aa: bool| {
                marginal(
                    &s,
                    |c| c.aa == aa && c.answer == AnswerClass::Correct,
                    |_| false,
                )
            };
            let incorr = |aa: bool| marginal(&s, |_| false, |sl| sl.aa == aa);
            assert_eq!(wo(false), expect.0, "{year} AA0 W/O");
            assert_eq!(corr(false), expect.1, "{year} AA0 corr");
            assert_eq!(incorr(false), expect.2, "{year} AA0 incorr");
            assert_eq!(wo(true), expect.3, "{year} AA1 W/O");
            assert_eq!(corr(true), expect.4, "{year} AA1 corr");
            assert_eq!(incorr(true), expect.5, "{year} AA1 incorr");
        }
    }

    #[test]
    fn table_6_rcode_marginals_2018() {
        let s = YearSpec::get(Year::Y2018);
        // With answer (incorrect slices are all NoError by construction).
        let w = |rc: Rcode| {
            marginal(
                &s,
                |c| c.rcode == rc && matches!(c.answer, AnswerClass::Correct),
                |_| rc == Rcode::NoError,
            )
        };
        assert_eq!(w(Rcode::NoError), 2_860_940);
        assert_eq!(w(Rcode::FormErr), 23);
        assert_eq!(w(Rcode::ServFail), 2_489);
        assert_eq!(w(Rcode::NXDomain), 10);
        assert_eq!(w(Rcode::Refused), 193);
        // Without answer.
        let wo = |rc: Rcode| {
            marginal(
                &s,
                |c| c.rcode == rc && c.answer == AnswerClass::None,
                |_| false,
            )
        };
        assert_eq!(wo(Rcode::NoError), 377_803);
        assert_eq!(wo(Rcode::FormErr), 233);
        assert_eq!(wo(Rcode::ServFail), 200_320);
        assert_eq!(wo(Rcode::NXDomain), 48_830);
        assert_eq!(wo(Rcode::NotImp), 605);
        assert_eq!(wo(Rcode::Refused), 2_934_283); // paper 2,934,269 + 14 (note 3)
        assert_eq!(wo(Rcode::YXDomain), 1);
        assert_eq!(wo(Rcode::YXRRSet), 2);
        assert_eq!(wo(Rcode::NotAuth), 80_032);
    }

    #[test]
    fn table_6_rcode_marginals_2013() {
        let s = YearSpec::get(Year::Y2013);
        let w = |rc: Rcode| {
            marginal(
                &s,
                |c| c.rcode == rc && matches!(c.answer, AnswerClass::Correct),
                |_| rc == Rcode::NoError,
            )
        };
        // Derived NoError (note 4): Table III W minus the 14,005.
        assert_eq!(w(Rcode::NoError), 11_491_476 + 121_293 + 153_089 + 13_019);
        assert_eq!(w(Rcode::ServFail), 12_723);
        assert_eq!(w(Rcode::NXDomain), 10);
        assert_eq!(w(Rcode::Refused), 1_272);
        let wo = |rc: Rcode| {
            marginal(
                &s,
                |c| c.rcode == rc && c.answer == AnswerClass::None,
                |_| false,
            )
        };
        assert_eq!(wo(Rcode::NoError), 1_198_772);
        assert_eq!(wo(Rcode::FormErr), 453);
        assert_eq!(wo(Rcode::ServFail), 354_176);
        assert_eq!(wo(Rcode::NXDomain), 145_724);
        assert_eq!(wo(Rcode::NotImp), 38);
        assert_eq!(wo(Rcode::Refused), 3_168_065); // paper 3,168,053 + 12
        assert_eq!(wo(Rcode::YXRRSet), 2);
        assert_eq!(wo(Rcode::NotAuth), 11);
    }

    #[test]
    fn table_7_forms() {
        let s18 = YearSpec::get(Year::Y2018).incorrect;
        let top_r2: u64 = s18.top_ips.iter().map(|t| t.count).sum();
        assert_eq!(top_r2, 50_669, "Table VIII total");
        // IP form: top + tail + malicious-not-in-top.
        let top_mal: u64 = s18
            .top_ips
            .iter()
            .filter(|t| t.category.is_some())
            .map(|t| t.count)
            .sum();
        assert_eq!(top_mal, 22_805, "the paper's 'deceptive' top-10 subtotal");
        let mal_tail = 26_926 - top_mal;
        let ip_form = top_r2 + s18.tail_ip_r2 + mal_tail;
        assert_eq!(ip_form, 110_790);
        assert_eq!(s18.url_r2, 231);
        assert_eq!(s18.string_r2, 72);
        assert_eq!(ip_form + s18.url_r2 + s18.string_r2, 111_093);

        let s13 = YearSpec::get(Year::Y2013).incorrect;
        let top_r2: u64 = s13.top_ips.iter().map(|t| t.count).sum();
        assert_eq!(top_r2, 26_514);
        let top_mal: u64 = s13
            .top_ips
            .iter()
            .filter(|t| t.category.is_some())
            .map(|t| t.count)
            .sum();
        assert_eq!(top_mal, 9_651);
        let ip_form = top_r2 + s13.tail_ip_r2 + (12_874 - top_mal);
        assert_eq!(ip_form, 112_270);
        assert_eq!(
            ip_form + s13.url_r2 + s13.string_r2 + s13.malformed_r2,
            121_293
        );
    }

    #[test]
    fn table_9_malicious_totals() {
        let s13 = YearSpec::get(Year::Y2013);
        assert_eq!(s13.malicious_unique(), 100);
        assert_eq!(s13.malicious_r2(), 12_874);
        let s18 = YearSpec::get(Year::Y2018);
        assert_eq!(s18.malicious_unique(), 335);
        assert_eq!(s18.malicious_r2(), 26_926);
    }

    #[test]
    fn table_10_malicious_flags_2018() {
        let s = YearSpec::get(Year::Y2018);
        let flags = &s.incorrect.malicious_flags;
        let ra0: u64 = flags.iter().filter(|f| !f.0).map(|f| f.2).sum();
        let ra1: u64 = flags.iter().filter(|f| f.0).map(|f| f.2).sum();
        let aa0: u64 = flags.iter().filter(|f| !f.1).map(|f| f.2).sum();
        let aa1: u64 = flags.iter().filter(|f| f.1).map(|f| f.2).sum();
        assert_eq!(ra0, 19_534);
        assert_eq!(ra1, 7_392);
        assert_eq!(aa0, 7_472);
        assert_eq!(aa1, 19_454);
        // Malicious flag totals must match the Malicious slices.
        let slice_total: u64 = s
            .incorrect
            .slices
            .iter()
            .filter(|sl| sl.pool == IncorrectPool::Malicious)
            .map(|sl| sl.count)
            .sum();
        assert_eq!(slice_total, 26_926);
    }

    #[test]
    fn countries_sum_to_malicious_r2() {
        for year in Year::ALL {
            let s = YearSpec::get(year);
            let total: u64 = s.countries.iter().map(|c| c.1).sum();
            assert_eq!(total, s.malicious_r2(), "{year}");
        }
        assert_eq!(YearSpec::get(Year::Y2013).countries.len(), 36);
        assert_eq!(YearSpec::get(Year::Y2018).countries.len(), 31);
    }

    #[test]
    fn pool_budgets_match_slices() {
        for year in Year::ALL {
            let inc = YearSpec::get(year).incorrect;
            let slice_sum = |pool: IncorrectPool| -> u64 {
                inc.slices
                    .iter()
                    .filter(|s| s.pool == pool)
                    .map(|s| s.count)
                    .sum()
            };
            let top_benign: u64 = inc
                .top_ips
                .iter()
                .filter(|t| t.category.is_none())
                .map(|t| t.count)
                .sum();
            assert_eq!(
                slice_sum(IncorrectPool::BenignIp),
                top_benign + inc.tail_ip_r2,
                "{year} benign pool"
            );
            let mal_total: u64 = inc.malicious.iter().map(|m| m.r2).sum();
            assert_eq!(
                slice_sum(IncorrectPool::Malicious),
                mal_total,
                "{year} malicious pool"
            );
            assert_eq!(slice_sum(IncorrectPool::Url), inc.url_r2, "{year} url pool");
            assert_eq!(
                slice_sum(IncorrectPool::Str),
                inc.string_r2,
                "{year} str pool"
            );
            assert_eq!(
                slice_sum(IncorrectPool::Malformed),
                inc.malformed_r2,
                "{year} malformed"
            );
        }
    }

    #[test]
    fn error_rates_match_paper_headlines() {
        // Err% of Table III: 1.029% (2013) -> 3.879% (2018).
        let rate = |year: Year| {
            let s = YearSpec::get(year);
            let incorr = s.answer_class_total(AnswerClass::Incorrect)
                + s.answer_class_total(AnswerClass::Malformed);
            let w = incorr + s.answer_class_total(AnswerClass::Correct);
            incorr as f64 / w as f64 * 100.0
        };
        assert!(
            (rate(Year::Y2013) - 1.029).abs() < 0.01,
            "{}",
            rate(Year::Y2013)
        );
        assert!(
            (rate(Year::Y2018) - 3.879).abs() < 0.01,
            "{}",
            rate(Year::Y2018)
        );
    }

    #[test]
    fn q2_calibration_is_close() {
        for year in Year::ALL {
            let s = YearSpec::get(year);
            let corr = s.answer_class_total(AnswerClass::Correct);
            let expected_q2 = corr as f64 * (s.auth_dup_base as f64 + s.auth_dup_extra_fraction);
            let err = (expected_q2 - s.q2_r1 as f64).abs() / s.q2_r1 as f64;
            assert!(err < 0.001, "{year}: {expected_q2} vs {}", s.q2_r1);
        }
    }

    #[test]
    fn empty_question_cells_match_paragraph() {
        let cells = YearSpec::get(Year::Y2018).empty_question;
        let total: u64 = cells.iter().map(|c| c.count).sum();
        assert_eq!(total, 494);
        let with_answer: u64 = cells
            .iter()
            .filter(|c| c.answer.is_some())
            .map(|c| c.count)
            .sum();
        assert_eq!(with_answer, 19);
        let ra1: u64 = cells.iter().filter(|c| c.ra).map(|c| c.count).sum();
        assert_eq!(ra1, 184);
        let aa1: u64 = cells.iter().filter(|c| c.aa).map(|c| c.count).sum();
        assert_eq!(aa1, 2);
        let rcode = |rc: Rcode| -> u64 {
            cells
                .iter()
                .filter(|c| c.rcode == rc)
                .map(|c| c.count)
                .sum()
        };
        assert_eq!(rcode(Rcode::NoError), 26);
        assert_eq!(rcode(Rcode::FormErr), 1);
        assert_eq!(rcode(Rcode::ServFail), 302); // paper 301 + 1 residual
        assert_eq!(rcode(Rcode::NXDomain), 2);
        assert_eq!(rcode(Rcode::Refused), 163);
    }
}
