//! The resolver's TTL-aware record cache.

use std::collections::{HashMap, VecDeque};

use orscope_dns_wire::{Name, Record, RecordType};
use orscope_netsim::SimTime;

/// Cache key: owner name + record type.
type Key = (Name, u16);

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<Record>,
    /// Absolute expiry (insertion time + minimum TTL of the set).
    expires: SimTime,
}

/// A capacity-bounded, TTL-aware DNS record cache with FIFO eviction.
///
/// The probing methodology generates a *unique* qname per target exactly
/// so that this cache can never satisfy a probe query — a property the
/// integration tests verify. The cache still matters: honest resolvers
/// cache referral infrastructure (root/TLD/auth NS addresses), which is
/// what keeps a 3.7-billion-probe scan from melting the upper hierarchy.
///
/// # Example
///
/// ```
/// use orscope_resolver::DnsCache;
/// use orscope_dns_wire::{Name, RData, Record, RecordType};
/// use orscope_netsim::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut cache = DnsCache::new(128);
/// let name: Name = "ns1.example.net".parse()?;
/// let rec = Record::in_class(name.clone(), 60, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
/// cache.insert(SimTime::ZERO, vec![rec]);
/// assert!(cache.get(&name, RecordType::A, SimTime::from_secs(59)).is_some());
/// assert!(cache.get(&name, RecordType::A, SimTime::from_secs(61)).is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DnsCache {
    entries: HashMap<Key, Entry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    /// Creates a cache holding at most `capacity` record sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Inserts a record set observed at `now`; all records must share an
    /// owner/type (the caller groups them). Empty sets are ignored.
    pub fn insert(&mut self, now: SimTime, records: Vec<Record>) {
        let Some(first) = records.first() else {
            return;
        };
        let ttl = records.iter().map(Record::ttl).min().unwrap_or(0);
        let key = (first.name().clone(), first.rtype().to_u16());
        let expires = now + std::time::Duration::from_secs(ttl as u64);
        if self
            .entries
            .insert(key.clone(), Entry { records, expires })
            .is_none()
        {
            self.order.push_back(key);
            while self.entries.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.entries.remove(&oldest);
                }
            }
        }
    }

    /// Returns unexpired records for `name`/`rtype`, with TTLs counted
    /// down to the remaining lifetime.
    pub fn get(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<Record>> {
        let key = (name.clone(), rtype.to_u16());
        match self.entries.get(&key) {
            Some(entry) if entry.expires > now => {
                self.hits += 1;
                let remaining = (entry.expires - now).as_secs() as u32;
                let records = entry
                    .records
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.set_ttl(remaining.min(r.ttl()));
                        r
                    })
                    .collect();
                Some(records)
            }
            Some(_) => {
                // Expired: drop lazily.
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Number of live (possibly expired-but-unswept) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (including expired evictions).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orscope_dns_wire::RData;
    use std::net::Ipv4Addr;

    fn rec(name: &str, ttl: u32, last_octet: u8) -> Record {
        Record::in_class(
            name.parse().unwrap(),
            ttl,
            RData::A(Ipv4Addr::new(10, 0, 0, last_octet)),
        )
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut cache = DnsCache::new(4);
        cache.insert(SimTime::ZERO, vec![rec("a.example", 30, 1)]);
        let name: Name = "a.example".parse().unwrap();
        assert!(cache
            .get(&name, RecordType::A, SimTime::from_secs(29))
            .is_some());
        assert!(cache
            .get(&name, RecordType::A, SimTime::from_secs(30))
            .is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn ttl_counts_down() {
        let mut cache = DnsCache::new(4);
        cache.insert(SimTime::ZERO, vec![rec("a.example", 100, 1)]);
        let name: Name = "a.example".parse().unwrap();
        let got = cache
            .get(&name, RecordType::A, SimTime::from_secs(40))
            .unwrap();
        assert_eq!(got[0].ttl(), 60);
    }

    #[test]
    fn min_ttl_of_set_governs_expiry() {
        let mut cache = DnsCache::new(4);
        cache.insert(
            SimTime::ZERO,
            vec![rec("a.example", 10, 1), rec("a.example", 100, 2)],
        );
        let name: Name = "a.example".parse().unwrap();
        assert!(cache
            .get(&name, RecordType::A, SimTime::from_secs(11))
            .is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut cache = DnsCache::new(2);
        cache.insert(SimTime::ZERO, vec![rec("a.example", 60, 1)]);
        cache.insert(SimTime::ZERO, vec![rec("b.example", 60, 2)]);
        cache.insert(SimTime::ZERO, vec![rec("c.example", 60, 3)]);
        assert_eq!(cache.len(), 2);
        let a: Name = "a.example".parse().unwrap();
        let c: Name = "c.example".parse().unwrap();
        assert!(cache.get(&a, RecordType::A, SimTime::ZERO).is_none());
        assert!(cache.get(&c, RecordType::A, SimTime::ZERO).is_some());
    }

    #[test]
    fn type_is_part_of_the_key() {
        let mut cache = DnsCache::new(4);
        cache.insert(SimTime::ZERO, vec![rec("a.example", 60, 1)]);
        let name: Name = "a.example".parse().unwrap();
        assert!(cache.get(&name, RecordType::Mx, SimTime::ZERO).is_none());
        assert!(cache.get(&name, RecordType::A, SimTime::ZERO).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_order() {
        let mut cache = DnsCache::new(2);
        cache.insert(SimTime::ZERO, vec![rec("a.example", 10, 1)]);
        cache.insert(SimTime::from_secs(5), vec![rec("a.example", 10, 1)]);
        let name: Name = "a.example".parse().unwrap();
        // Refreshed at t=5 with ttl 10 -> expires t=15.
        assert!(cache
            .get(&name, RecordType::A, SimTime::from_secs(14))
            .is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut cache = DnsCache::new(2);
        cache.insert(SimTime::ZERO, vec![]);
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DnsCache::new(0);
    }
}
