//! Turning the paper specification into a concrete, scaled population.
//!
//! [`Population::generate`] produces the full list of probed hosts that
//! will respond during a campaign: each gets an address scattered over
//! the probeable IPv4 space and a [`ResponsePolicy`] drawn from the
//! year's calibrated cells. At `scale == 1.0` the population reproduces
//! the paper's tables exactly; at larger scales every cell is reduced by
//! the largest-remainder method so marginals stay consistent.
//!
//! Hosts are stored struct-of-arrays in a [`HostList`] — packed address,
//! interned profile id, country id — so the full-scale population of
//! ~6.5M responders costs ~10 bytes per host instead of an owned
//! [`ResponsePolicy`] each. Consumers iterate [`HostRef`]s, which borrow
//! the shared [`ProfileTable`]; [`PlannedResolver`] remains the owned
//! exchange type for code (churn, the observatory) that tracks
//! individual hosts.

use std::net::Ipv4Addr;
use std::sync::Arc;

use orscope_dns_wire::Rcode;
use orscope_ipspace::AllowedSpace;
use orscope_ipspace::ScanPermutation;
use orscope_netsim::fxhash::{fx_set_with_capacity, FxHashMap, FxHashSet};
use orscope_threatintel::Category;

use crate::intern::{ProfileId, ProfileTable, COUNTRY_NONE};
use crate::paper::{AnswerClass, IncorrectPool, Year, YearSpec};
use crate::profile::{
    AnswerData, ImmediateResponse, RecursePolicy, ResponseAction, ResponsePolicy,
};
use crate::scaling::{apportion, scale_counts};

/// Configuration for population generation.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Which scan to reproduce.
    pub year: Year,
    /// Down-scaling factor (1.0 = full paper scale, 1000.0 = 1:1000).
    pub scale: f64,
    /// Seed for address scattering and value synthesis.
    pub seed: u64,
    /// Addresses that must never be assigned to a responder (the
    /// prober, root, TLD and authoritative servers).
    pub reserved_hosts: Vec<Ipv4Addr>,
    /// Extra responders that answer from a non-53 source port and are
    /// therefore invisible to the ZMap-style prober (§V blind spot).
    pub off_port_responders: u64,
    /// Fraction of the standard-conforming correct resolvers that are
    /// actually CPE forwarders relaying to shared upstream resolvers
    /// (the proxy population Schomp et al. distinguish). The upstreams
    /// are extra, unprobed hosts returned in [`Population::upstreams`].
    pub forwarder_fraction: f64,
}

impl PopulationConfig {
    /// A config for `year` at `scale` with the default seed.
    pub fn new(year: Year, scale: f64) -> Self {
        Self {
            year,
            scale,
            seed: 0x0525_2019, // DSN'19
            reserved_hosts: Vec::new(),
            off_port_responders: 0,
            forwarder_fraction: 0.0,
        }
    }
}

/// One planned responder, with an owned policy.
///
/// This is the *exchange* representation: churn updates and observatory
/// membership carry it. Bulk storage uses [`HostList`] instead; a
/// [`HostRef`] converts via [`HostRef::to_planned`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedResolver {
    /// The host's address in the probeable space.
    pub addr: Ipv4Addr,
    /// Its behaviour.
    pub policy: ResponsePolicy,
    /// Country tag for malicious responders (drives the geolocation
    /// analysis of §IV-C2); `None` for everything else.
    pub country: Option<&'static str>,
}

/// Struct-of-arrays storage for planned hosts: packed IPv4 address,
/// interned profile id, country id — ~10 bytes per host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostList {
    addrs: Vec<u32>,
    profiles: Vec<ProfileId>,
    countries: Vec<u16>,
}

impl HostList {
    /// An empty list with room for `n` hosts.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            addrs: Vec::with_capacity(n),
            profiles: Vec::with_capacity(n),
            countries: Vec::with_capacity(n),
        }
    }

    /// Appends a host.
    pub fn push(&mut self, addr: Ipv4Addr, profile: ProfileId, country: u16) {
        self.addrs.push(u32::from(addr));
        self.profiles.push(profile);
        self.countries.push(country);
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The address of host `i`.
    pub fn addr(&self, i: usize) -> Ipv4Addr {
        Ipv4Addr::from(self.addrs[i])
    }

    /// The profile id of host `i`.
    pub fn profile_id(&self, i: usize) -> ProfileId {
        self.profiles[i]
    }

    /// The country id of host `i`.
    pub fn country_id(&self, i: usize) -> u16 {
        self.countries[i]
    }

    /// Replaces the profile id of host `i`.
    pub fn set_profile(&mut self, i: usize, profile: ProfileId) {
        self.profiles[i] = profile;
    }

    /// Iterates addresses without touching the profile table (the shard
    /// planner and target builder need nothing else).
    pub fn addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.addrs.iter().map(|&a| Ipv4Addr::from(a))
    }

    /// The host at `i`, resolved against `table`.
    pub fn get<'a>(&self, i: usize, table: &'a ProfileTable) -> HostRef<'a> {
        HostRef {
            addr: self.addr(i),
            policy: table.get(self.profiles[i]),
            country: table.country(self.countries[i]),
        }
    }

    /// Iterates hosts resolved against `table`.
    pub fn iter<'a>(&'a self, table: &'a ProfileTable) -> impl Iterator<Item = HostRef<'a>> + 'a {
        (0..self.len()).map(move |i| self.get(i, table))
    }
}

/// A borrowed view of one planned host: the compact record resolved
/// against its [`ProfileTable`].
#[derive(Debug, Clone, Copy)]
pub struct HostRef<'a> {
    /// The host's address in the probeable space.
    pub addr: Ipv4Addr,
    /// Its behaviour, shared with every other host of the same profile.
    pub policy: &'a Arc<ResponsePolicy>,
    /// Country tag for malicious responders; `None` for everything else.
    pub country: Option<&'static str>,
}

impl HostRef<'_> {
    /// Materializes an owned [`PlannedResolver`].
    pub fn to_planned(&self) -> PlannedResolver {
        PlannedResolver {
            addr: self.addr,
            policy: (**self.policy).clone(),
            country: self.country,
        }
    }
}

/// A unique malicious answer address with its category and packet count,
/// used to seed the threat-intelligence database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaliciousAnswer {
    /// The reported address.
    pub ip: Ipv4Addr,
    /// Its dominant category.
    pub category: Category,
    /// R2 packets that will carry it.
    pub r2: u64,
}

/// The generated population.
#[derive(Debug, Clone)]
pub struct Population {
    /// Which scan this models.
    pub year: Year,
    /// The scale it was generated at.
    pub scale: f64,
    /// Every responding host (compact; iterate via
    /// [`Population::resolvers`]).
    pub resolvers: HostList,
    /// Unique malicious answer addresses (seed data for the threat DB).
    pub malicious_answers: Vec<MaliciousAnswer>,
    /// Org-name seed data for the geolocation DB (Table VIII orgs).
    pub answer_orgs: Vec<(Ipv4Addr, &'static str)>,
    /// Off-port (blind-spot) responders, not counted in R2.
    pub off_port: HostList,
    /// Shared upstream recursive resolvers serving the forwarder
    /// population; registered on the network but never probed.
    pub upstreams: HostList,
    /// The interned profile/country table all three lists resolve
    /// against; shared (not cloned) by shard sub-populations.
    pub table: Arc<ProfileTable>,
}

impl Population {
    /// Generates the population for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.scale <= 0`.
    pub fn generate(config: &PopulationConfig) -> Population {
        assert!(config.scale > 0.0, "scale must be positive");
        let spec = YearSpec::get(config.year);
        // Pre-sized FxHash set: this is O(population) inserts on the
        // campaign-startup path, and at full scale a SipHash map that
        // rehashes its way up to ~7M entries is measurable.
        let expected_hosts = (spec.r2 as f64 / config.scale).round() as usize;
        let mut used: FxHashSet<Ipv4Addr> = fx_set_with_capacity(
            expected_hosts
                + expected_hosts / 4
                + config.off_port_responders as usize
                + config.reserved_hosts.len()
                + 64,
        );
        used.extend(config.reserved_hosts.iter().copied());

        // ---- 1. Scale every atom with one largest-remainder pass ----
        let mut atoms: Vec<u64> = Vec::new();
        atoms.extend(spec.flag_cells.iter().map(|c| c.count));
        atoms.extend(spec.incorrect.slices.iter().map(|s| s.count));
        atoms.extend(spec.empty_question.iter().map(|c| c.count));
        let scaled = scale_counts(&atoms, config.scale);
        let (cell_counts, rest) = scaled.split_at(spec.flag_cells.len());
        let (slice_counts, eq_counts) = rest.split_at(spec.incorrect.slices.len());

        // ---- 2. Build the answer-value pools ----
        let mut synth = ValueSynth::new(config.seed, &spec, &mut used);
        let mal_total: u64 = spec
            .incorrect
            .slices
            .iter()
            .zip(slice_counts)
            .filter(|(s, _)| s.pool == IncorrectPool::Malicious)
            .map(|(_, &n)| n)
            .sum();
        let benign_total: u64 = spec
            .incorrect
            .slices
            .iter()
            .zip(slice_counts)
            .filter(|(s, _)| s.pool == IncorrectPool::BenignIp)
            .map(|(_, &n)| n)
            .sum();
        let url_total: u64 = spec
            .incorrect
            .slices
            .iter()
            .zip(slice_counts)
            .filter(|(s, _)| s.pool == IncorrectPool::Url)
            .map(|(_, &n)| n)
            .sum();
        let str_total: u64 = spec
            .incorrect
            .slices
            .iter()
            .zip(slice_counts)
            .filter(|(s, _)| s.pool == IncorrectPool::Str)
            .map(|(_, &n)| n)
            .sum();
        let (mut mal_values, malicious_answers) = synth.malicious_pool(mal_total, config.scale);
        let mut benign_values = synth.benign_pool(benign_total, config.scale);
        let mut url_values = synth.url_pool(url_total, config.scale);
        let mut str_values = synth.str_pool(str_total, config.scale);

        // ---- 3. Expand cells into interned policies ----
        // Each planned host is (profile id, country id); owned policy
        // values live once in the working table. Ids are compacted to
        // first-use order in step 5.
        let mut table = ProfileTable::new();
        let mut planned: Vec<(ProfileId, u16)> = Vec::with_capacity(expected_hosts);
        // Correct/None cells.
        let n_correct_scaled: u64 = spec
            .flag_cells
            .iter()
            .zip(cell_counts)
            .filter(|(c, _)| c.answer == AnswerClass::Correct)
            .map(|(_, &n)| n)
            .sum();
        let extra_budget = (spec.auth_dup_extra_fraction * n_correct_scaled as f64).round() as u64;
        let mut correct_seen = 0u64;
        let mut extras_given = 0u64;
        for (cell, &n) in spec.flag_cells.iter().zip(cell_counts) {
            for _ in 0..n {
                let policy = match cell.answer {
                    AnswerClass::Correct => {
                        // Spread the +1 duplicates evenly over the
                        // correct population.
                        correct_seen += 1;
                        let due =
                            (spec.auth_dup_extra_fraction * correct_seen as f64).round() as u64;
                        let dup = if extras_given < due && extras_given < extra_budget {
                            extras_given += 1;
                            spec.auth_dup_base + 1
                        } else {
                            spec.auth_dup_base
                        };
                        ResponsePolicy {
                            action: ResponseAction::Recurse(RecursePolicy {
                                ra: cell.ra,
                                aa: cell.aa,
                                rcode_override: (cell.rcode != Rcode::NoError)
                                    .then_some(cell.rcode),
                                auth_duplicates: dup,
                            }),
                            malicious_category: None,
                            version_banner: None,
                        }
                    }
                    _ => ResponsePolicy {
                        action: ResponseAction::Immediate(ImmediateResponse::empty(
                            cell.ra, cell.aa, cell.rcode,
                        )),
                        malicious_category: None,
                        version_banner: None,
                    },
                };
                planned.push((table.intern(policy), COUNTRY_NONE));
            }
        }
        // Incorrect slices, drawing answer values from the pools.
        let mut countries = CountryAssigner::new(&spec, mal_total);
        for (slice, &n) in spec.incorrect.slices.iter().zip(slice_counts) {
            for _ in 0..n {
                let (answer, category, malformed) = match slice.pool {
                    IncorrectPool::Malicious => {
                        let (ip, cat) = mal_values.pop().expect("malicious pool exhausted");
                        (AnswerData::FixedIp(ip), Some(cat), false)
                    }
                    IncorrectPool::BenignIp => (
                        AnswerData::FixedIp(benign_values.pop().expect("benign pool")),
                        None,
                        false,
                    ),
                    IncorrectPool::Url => (
                        AnswerData::Url(url_values.pop().expect("url pool")),
                        None,
                        false,
                    ),
                    IncorrectPool::Str => (
                        AnswerData::Text(str_values.pop().expect("str pool")),
                        None,
                        false,
                    ),
                    IncorrectPool::Malformed => {
                        (AnswerData::FixedIp(Ipv4Addr::new(0, 0, 0, 0)), None, true)
                    }
                };
                let policy = ResponsePolicy {
                    action: ResponseAction::Immediate(ImmediateResponse {
                        answer: Some(answer),
                        ra: slice.ra,
                        aa: slice.aa,
                        rcode: Rcode::NoError,
                        empty_question: false,
                        src_port: None,
                        malformed_rdata: malformed,
                    }),
                    malicious_category: category,
                    version_banner: None,
                };
                let country = category.is_some().then(|| countries.next()).flatten();
                let cid = table.intern_country(country);
                planned.push((table.intern(policy), cid));
            }
        }
        // Empty-question responders.
        for (cell, &n) in spec.empty_question.iter().zip(eq_counts) {
            for _ in 0..n {
                let policy = ResponsePolicy {
                    action: ResponseAction::Immediate(ImmediateResponse {
                        answer: cell.answer.clone(),
                        ra: cell.ra,
                        aa: cell.aa,
                        rcode: cell.rcode,
                        empty_question: true,
                        src_port: None,
                        malformed_rdata: false,
                    }),
                    malicious_category: None,
                    version_banner: None,
                };
                planned.push((table.intern(policy), COUNTRY_NONE));
            }
        }

        let mut forwarder_upstream_index: Vec<(usize, usize)> = Vec::new();
        // ---- 3a. Software banners: the resolver-software mix a
        // version.bind survey would see (shares loosely following the
        // BIND-dominated landscape software surveys report). Every third
        // host hides its version, as real surveys observe.
        const BANNERS: [&str; 6] = [
            "BIND 9.9.4-RedHat-9.9.4-61.el7",
            "BIND 9.10.3-P4-Ubuntu",
            "dnsmasq-2.76",
            "PowerDNS Recursor 4.1.1",
            "Microsoft DNS 6.1.7601",
            "unbound 1.6.7",
        ];
        // (base profile, banner) -> banner-equipped profile, so a
        // full-scale run interns each variant once instead of cloning
        // millions of policies.
        let mut banner_memo: FxHashMap<(ProfileId, usize), ProfileId> = FxHashMap::default();
        for (i, (profile, _)) in planned.iter_mut().enumerate() {
            // Mix the index so hiding and banner choice decorrelate and
            // all banners appear with uneven, realistic shares.
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                ^ config.seed;
            if !h.is_multiple_of(3) {
                // Square the draw to skew toward the head of the list
                // (BIND dominates real surveys).
                let draw = ((h >> 8) % 36) as usize;
                let idx = match draw {
                    0..=13 => 0,  // ~39%
                    14..=22 => 1, // ~25%
                    23..=28 => 2, // ~17%
                    29..=32 => 3, // ~11%
                    33..=34 => 4, // ~6%
                    _ => 5,       // ~3%
                };
                *profile = match banner_memo.get(&(*profile, idx)) {
                    Some(&bannered) => bannered,
                    None => {
                        let policy = ResponsePolicy::clone(table.get(*profile))
                            .with_version_banner(BANNERS[idx]);
                        let bannered = table.intern(policy);
                        banner_memo.insert((*profile, idx), bannered);
                        bannered
                    }
                };
            }
        }

        // ---- 3b. Demote a fraction of plain honest resolvers to CPE
        // forwarders behind shared upstream resolvers ----
        // The forwarder policy embeds its upstream's address, which is
        // assigned only in step 4; demoted hosts carry a sentinel id
        // until the patch loop below interns the real Forward policies.
        const FORWARDER_PENDING: ProfileId = ProfileId::MAX;
        let mut n_upstreams = 0usize;
        let mut upstream_profile: Option<ProfileId> = None;
        if config.forwarder_fraction > 0.0 {
            let plain_honest: Vec<usize> = planned
                .iter()
                .enumerate()
                .filter(|(_, (profile, _))| {
                    matches!(&table.get(*profile).action, ResponseAction::Recurse(rp)
                        if rp.ra && !rp.aa && rp.rcode_override.is_none())
                })
                .map(|(i, _)| i)
                .collect();
            let n_forwarders =
                (plain_honest.len() as f64 * config.forwarder_fraction.clamp(0.0, 1.0)) as usize;
            // One shared upstream per ~500 forwarders, at least one.
            n_upstreams = (n_forwarders.div_ceil(500)).max(usize::from(n_forwarders > 0));
            if n_upstreams > 0 {
                let mut policy = ResponsePolicy::honest();
                if let ResponseAction::Recurse(rp) = &mut policy.action {
                    rp.auth_duplicates = spec.auth_dup_base;
                }
                upstream_profile = Some(table.intern(policy));
            }
            for (k, &idx) in plain_honest.iter().take(n_forwarders).enumerate() {
                planned[idx].0 = FORWARDER_PENDING;
                forwarder_upstream_index.push((idx, k % n_upstreams));
            }
        }

        // ---- 4. Scatter addresses over the probeable space ----
        let space = AllowedSpace::probeable();
        let mut ranks = ScanPermutation::new(space.len(), config.seed ^ 0xADD2).iter();
        let mut next_addr = |used: &mut FxHashSet<Ipv4Addr>| -> Ipv4Addr {
            loop {
                let rank = ranks.next().expect("address space exhausted") as u64;
                // Ranks are u32 only when the space fits; probeable space
                // exceeds u32::MAX? No: 3.7e9 < 2^32, ranks fit.
                let addr = space.nth(rank).expect("rank in range");
                if used.insert(addr) {
                    return addr;
                }
            }
        };
        let mut resolvers = HostList::with_capacity(planned.len());
        for &(profile, country) in &planned {
            let addr = next_addr(&mut used);
            resolvers.push(addr, profile, country);
        }
        drop(planned);
        let off_port_profile = (config.off_port_responders > 0).then(|| {
            table.intern(ResponsePolicy {
                action: ResponseAction::Immediate(ImmediateResponse {
                    src_port: Some(1024),
                    ..ImmediateResponse::refused()
                }),
                malicious_category: None,
                version_banner: None,
            })
        });
        let mut off_port = HostList::with_capacity(config.off_port_responders as usize);
        for _ in 0..config.off_port_responders {
            let addr = next_addr(&mut used);
            off_port.push(
                addr,
                off_port_profile.expect("interned above"),
                COUNTRY_NONE,
            );
        }

        // Upstream hosts get addresses outside the probe population.
        let mut upstreams = HostList::with_capacity(n_upstreams);
        for _ in 0..n_upstreams {
            let addr = next_addr(&mut used);
            upstreams.push(
                addr,
                upstream_profile.expect("interned above"),
                COUNTRY_NONE,
            );
        }
        // Patch the demoted hosts now that upstream addresses exist:
        // one interned Forward policy per upstream.
        let mut forward_profiles: FxHashMap<usize, ProfileId> = FxHashMap::default();
        for (idx, upstream_idx) in forwarder_upstream_index {
            let profile = *forward_profiles.entry(upstream_idx).or_insert_with(|| {
                table.intern(ResponsePolicy::forwarder(upstreams.addr(upstream_idx)))
            });
            resolvers.set_profile(idx, profile);
        }

        // ---- 5. Compact the table to first-use order ----
        // Banner assignment and forwarder demotion orphan intermediate
        // entries (a base profile whose every instance gained a banner,
        // the demoted honest variants), so rebuild the table over the
        // ids actually referenced: the shipped table is then exactly
        // the population's set of distinct policies.
        let mut compact = ProfileTable::new();
        let mut profile_map: Vec<Option<ProfileId>> = vec![None; table.len()];
        remap_hosts(&mut resolvers, &table, &mut compact, &mut profile_map);
        remap_hosts(&mut off_port, &table, &mut compact, &mut profile_map);
        remap_hosts(&mut upstreams, &table, &mut compact, &mut profile_map);

        // Org-name seeds for the geolocation DB.
        let answer_orgs = spec
            .incorrect
            .top_ips
            .iter()
            .map(|t| (t.ip, t.org))
            .collect();

        Population {
            year: config.year,
            scale: config.scale,
            resolvers,
            malicious_answers,
            answer_orgs,
            off_port,
            upstreams,
            table: Arc::new(compact),
        }
    }

    /// Number of planned responders (== expected R2 at this scale).
    pub fn len(&self) -> usize {
        self.resolvers.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.resolvers.is_empty()
    }

    /// Counts resolvers matching a predicate.
    pub fn count_by(&self, pred: impl Fn(HostRef<'_>) -> bool) -> u64 {
        self.resolvers
            .iter(&self.table)
            .filter(|r| pred(*r))
            .count() as u64
    }

    /// The shared profile table all three host lists index into.
    pub fn table(&self) -> &Arc<ProfileTable> {
        &self.table
    }

    /// Iterates the probed resolver population.
    pub fn resolvers(&self) -> impl Iterator<Item = HostRef<'_>> + '_ {
        self.resolvers.iter(&self.table)
    }

    /// Iterates the off-port responders.
    pub fn off_port(&self) -> impl Iterator<Item = HostRef<'_>> + '_ {
        self.off_port.iter(&self.table)
    }

    /// Iterates the forwarder upstream hosts.
    pub fn upstreams(&self) -> impl Iterator<Item = HostRef<'_>> + '_ {
        self.upstreams.iter(&self.table)
    }

    /// The `i`-th planned resolver, resolved against the table.
    pub fn resolver(&self, i: usize) -> HostRef<'_> {
        self.resolvers.get(i, &self.table)
    }

    /// Partitions the population into `shards` disjoint sub-populations
    /// for parallel campaign execution.
    ///
    /// Placement is by [`shard_index`] of each host's affinity address:
    /// its own address, except for forwarders, which follow their
    /// upstream so the forwarder -> upstream relay never crosses a shard
    /// boundary. Within each shard the original generation order is
    /// preserved, so `shard(1)` reproduces the population unchanged.
    ///
    /// The threat/geo seed lists (`malicious_answers`, `answer_orgs`)
    /// describe answer *values*, not hosts; every shard receives a full
    /// copy so each sub-population remains self-contained.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shard(&self, shards: usize) -> Vec<Population> {
        assert!(shards > 0, "shard count must be positive");
        let mut parts: Vec<Population> = (0..shards)
            .map(|_| Population {
                year: self.year,
                scale: self.scale,
                resolvers: HostList::default(),
                malicious_answers: self.malicious_answers.clone(),
                answer_orgs: self.answer_orgs.clone(),
                off_port: HostList::default(),
                upstreams: HostList::default(),
                table: Arc::clone(&self.table),
            })
            .collect();
        for i in 0..self.resolvers.len() {
            let addr = self.resolvers.addr(i);
            let profile = self.resolvers.profile_id(i);
            let affinity = self.table.get(profile).upstream_addr().unwrap_or(addr);
            parts[shard_index(affinity, shards)].resolvers.push(
                addr,
                profile,
                self.resolvers.country_id(i),
            );
        }
        for i in 0..self.off_port.len() {
            let addr = self.off_port.addr(i);
            parts[shard_index(addr, shards)].off_port.push(
                addr,
                self.off_port.profile_id(i),
                self.off_port.country_id(i),
            );
        }
        for i in 0..self.upstreams.len() {
            let addr = self.upstreams.addr(i);
            parts[shard_index(addr, shards)].upstreams.push(
                addr,
                self.upstreams.profile_id(i),
                self.upstreams.country_id(i),
            );
        }
        parts
    }

    /// Appends `part`'s hosts to this population, re-interning their
    /// profiles and countries into this population's table (ids from
    /// different `generate` calls are not comparable). Resolvers for
    /// which `keep(addr)` is false are dropped — trend interpolation
    /// uses this to discard address collisions between samples; off-port
    /// and upstream hosts are appended unconditionally.
    pub fn merge(&mut self, part: &Population, keep: impl Fn(Ipv4Addr) -> bool) {
        let table = Arc::make_mut(&mut self.table);
        let mut memo: Vec<Option<ProfileId>> = vec![None; part.table.len()];
        let mut copy = |dst: &mut HostList, src: &HostList, filtered: bool| {
            for i in 0..src.len() {
                let addr = src.addr(i);
                if filtered && !keep(addr) {
                    continue;
                }
                let old = src.profile_id(i) as usize;
                let profile = match memo[old] {
                    Some(id) => id,
                    None => {
                        let id = table.intern(ResponsePolicy::clone(part.table.get(old as u32)));
                        memo[old] = Some(id);
                        id
                    }
                };
                let country = table.intern_country(part.table.country(src.country_id(i)));
                dst.push(addr, profile, country);
            }
        };
        copy(&mut self.resolvers, &part.resolvers, true);
        copy(&mut self.off_port, &part.off_port, false);
        copy(&mut self.upstreams, &part.upstreams, false);
    }
}

/// The shard that owns `addr` in an `shards`-way partition.
///
/// A multiplicative mix of the address decides ownership, so assignment
/// is uniform, independent of generation or scan order, and identical
/// for every component that needs to agree on placement (population
/// registration, target partitioning, silent fill).
pub fn shard_index(addr: Ipv4Addr, shards: usize) -> usize {
    let mixed = u64::from(u32::from(addr)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 32) % shards as u64) as usize
}

/// Rewrites `hosts` to index into `compact`, interning each profile and
/// country on first use. `profile_map` memoizes old-id -> new-id so the
/// remap touches each distinct profile once, not once per host.
fn remap_hosts(
    hosts: &mut HostList,
    table: &ProfileTable,
    compact: &mut ProfileTable,
    profile_map: &mut [Option<ProfileId>],
) {
    for profile in &mut hosts.profiles {
        let old = *profile as usize;
        *profile = match profile_map[old] {
            Some(new) => new,
            None => {
                let new = compact.intern(ResponsePolicy::clone(table.get(*profile)));
                profile_map[old] = Some(new);
                new
            }
        };
    }
    for country in &mut hosts.countries {
        *country = compact.intern_country(table.country(*country));
    }
}

/// Deterministic synthesis of answer-value pools.
struct ValueSynth<'a> {
    seed: u64,
    spec: &'a YearSpec,
    used: &'a mut FxHashSet<Ipv4Addr>,
    counter: u64,
}

impl<'a> ValueSynth<'a> {
    fn new(seed: u64, spec: &'a YearSpec, used: &'a mut FxHashSet<Ipv4Addr>) -> Self {
        Self {
            seed,
            spec,
            used,
            counter: 0,
        }
    }

    /// A fresh public unicast address outside the ground-truth range and
    /// all previously issued values.
    fn fresh_public_ip(&mut self) -> Ipv4Addr {
        loop {
            self.counter += 1;
            let mut x = self.counter ^ self.seed.rotate_left(23);
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
            let raw = (x as u32) & 0x7FFF_FFFF; // keep below 128/8 for simplicity
            let addr = Ipv4Addr::from(raw | 0x0100_0000); // skip 0/8
            if orscope_ipspace::reserved::is_reserved(u32::from(addr)) {
                continue;
            }
            if orscope_authns::scheme::in_ground_truth_range(addr) {
                continue;
            }
            if self.used.insert(addr) {
                return addr;
            }
        }
    }

    /// Builds the malicious pool: `total` draws (already scaled), as a
    /// stack (callers pop), plus the unique-answer seed list.
    ///
    /// Value order follows Table IX category order; within a category the
    /// explicit top addresses come first, then synthesized tail
    /// addresses.
    fn malicious_pool(
        &mut self,
        total: u64,
        scale: f64,
    ) -> (Vec<(Ipv4Addr, Category)>, Vec<MaliciousAnswer>) {
        let spec = self.spec;
        let per_category = apportion(
            &spec
                .incorrect
                .malicious
                .iter()
                .map(|m| m.r2)
                .collect::<Vec<_>>(),
            total,
        );
        let mut values = Vec::with_capacity(total as usize);
        let mut answers = Vec::new();
        for (cat_spec, &cat_total) in spec.incorrect.malicious.iter().zip(&per_category) {
            if cat_total == 0 {
                continue;
            }
            // Explicit top addresses in this category.
            let tops: Vec<_> = spec
                .incorrect
                .top_ips
                .iter()
                .filter(|t| t.category == Some(cat_spec.category))
                .collect();
            let top_r2: u64 = tops.iter().map(|t| t.count).sum();
            let tail_r2 = cat_spec.r2.saturating_sub(top_r2);
            let tail_unique = cat_spec.unique_ips.saturating_sub(tops.len() as u64);
            // Apportion the scaled category total over [tops..., tail].
            let mut weights: Vec<u64> = tops.iter().map(|t| t.count).collect();
            weights.push(tail_r2);
            let alloc = apportion(&weights, cat_total);
            for (top, &n) in tops.iter().zip(&alloc) {
                if n > 0 {
                    answers.push(MaliciousAnswer {
                        ip: top.ip,
                        category: cat_spec.category,
                        r2: n,
                    });
                    values.extend(std::iter::repeat_n((top.ip, cat_spec.category), n as usize));
                }
            }
            let tail_alloc = alloc[tops.len()];
            if tail_alloc > 0 {
                let uniques = scaled_unique(tail_unique, tail_r2, tail_alloc, scale);
                let per_ip = spread(tail_alloc, uniques);
                for &n in &per_ip {
                    let ip = self.fresh_public_ip();
                    answers.push(MaliciousAnswer {
                        ip,
                        category: cat_spec.category,
                        r2: n,
                    });
                    values.extend(std::iter::repeat_n((ip, cat_spec.category), n as usize));
                }
            }
        }
        debug_assert_eq!(values.len() as u64, total);
        values.reverse(); // stack: first value drawn = first pushed
        (values, answers)
    }

    /// Builds the benign wrong-IP pool: top benign addresses (rank
    /// order), then the long tail.
    fn benign_pool(&mut self, total: u64, scale: f64) -> Vec<Ipv4Addr> {
        let spec = self.spec;
        let tops: Vec<_> = spec
            .incorrect
            .top_ips
            .iter()
            .filter(|t| t.category.is_none())
            .collect();
        let mut weights: Vec<u64> = tops.iter().map(|t| t.count).collect();
        weights.push(spec.incorrect.tail_ip_r2);
        let alloc = apportion(&weights, total);
        let mut values = Vec::with_capacity(total as usize);
        for (top, &n) in tops.iter().zip(&alloc) {
            values.extend(std::iter::repeat_n(top.ip, n as usize));
        }
        let tail_alloc = alloc[tops.len()];
        if tail_alloc > 0 {
            let uniques = scaled_unique(
                spec.incorrect.tail_ip_unique,
                spec.incorrect.tail_ip_r2,
                tail_alloc,
                scale,
            );
            for &n in &spread(tail_alloc, uniques) {
                let ip = self.fresh_public_ip();
                values.extend(std::iter::repeat_n(ip, n as usize));
            }
        }
        debug_assert_eq!(values.len() as u64, total);
        values.reverse();
        values
    }

    /// Builds the URL pool (e.g. `u.dcoin.co`-style redirect hosts).
    fn url_pool(&mut self, total: u64, scale: f64) -> Vec<String> {
        let spec = self.spec;
        let uniques = scaled_unique(
            spec.incorrect.url_unique,
            spec.incorrect.url_r2,
            total,
            scale,
        );
        let mut values = Vec::with_capacity(total as usize);
        for (i, &n) in spread(total, uniques).iter().enumerate() {
            let host = format!("u{i}.dcoin{}.co", i % 7);
            values.extend(std::iter::repeat_n(host, n as usize));
        }
        values.reverse();
        values
    }

    /// Builds the string pool (`wild`, `OK`, `ff`, ...).
    fn str_pool(&mut self, total: u64, scale: f64) -> Vec<String> {
        const SAMPLES: [&str; 6] = ["wild", "ff", "OK", "04b400000000", "null", "localhost"];
        let spec = self.spec;
        let uniques = scaled_unique(
            spec.incorrect.string_unique,
            spec.incorrect.string_r2,
            total,
            scale,
        );
        let mut values = Vec::with_capacity(total as usize);
        for (i, &n) in spread(total, uniques).iter().enumerate() {
            let s = if i < SAMPLES.len() {
                SAMPLES[i].to_owned()
            } else {
                format!("str{i:04x}")
            };
            values.extend(std::iter::repeat_n(s, n as usize));
        }
        values.reverse();
        values
    }
}

/// How many unique values a scaled pool should contain: proportional to
/// the unscaled uniques, at least 1 when any draws remain, and never more
/// than the number of draws.
fn scaled_unique(unique: u64, r2: u64, scaled_total: u64, scale: f64) -> u64 {
    if scaled_total == 0 || unique == 0 || r2 == 0 {
        return 0;
    }
    ((unique as f64 / scale).round() as u64).clamp(1, scaled_total)
}

/// Distributes `total` draws over `uniques` values, first values heavier.
fn spread(total: u64, uniques: u64) -> Vec<u64> {
    if uniques == 0 {
        return Vec::new();
    }
    let base = total / uniques;
    let extra = (total % uniques) as usize;
    (0..uniques as usize)
        .map(|i| base + u64::from(i < extra))
        .collect()
}

/// Assigns countries to malicious resolvers per the §IV-C2 distribution.
struct CountryAssigner {
    /// Remaining `(country, count)` pairs, consumed front to back.
    queue: std::collections::VecDeque<(&'static str, u64)>,
}

impl CountryAssigner {
    fn new(spec: &YearSpec, scaled_malicious_total: u64) -> Self {
        let counts: Vec<u64> = spec.countries.iter().map(|c| c.1).collect();
        let scaled = apportion(&counts, scaled_malicious_total);
        let queue = spec
            .countries
            .iter()
            .zip(scaled)
            .filter(|(_, n)| *n > 0)
            .map(|(&(code, _), n)| (code, n))
            .collect();
        Self { queue }
    }

    fn next(&mut self) -> Option<&'static str> {
        let front = self.queue.front_mut()?;
        let code = front.0;
        front.1 -= 1;
        if front.1 == 0 {
            self.queue.pop_front();
        }
        Some(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::Year;
    use std::collections::HashSet;

    fn population(year: Year, scale: f64) -> Population {
        Population::generate(&PopulationConfig::new(year, scale))
    }

    #[test]
    fn scaled_totals_match_r2() {
        for year in Year::ALL {
            for scale in [500.0, 1000.0] {
                let pop = population(year, scale);
                let spec = YearSpec::get(year);
                let expected = (spec.r2 as f64 / scale).round() as u64;
                assert_eq!(pop.len() as u64, expected, "{year} scale {scale}");
            }
        }
    }

    #[test]
    fn addresses_are_unique_and_probeable() {
        let pop = population(Year::Y2018, 1000.0);
        let mut seen = HashSet::new();
        for addr in pop.resolvers.addrs() {
            assert!(seen.insert(addr), "duplicate {addr}");
            assert!(
                !orscope_ipspace::reserved::is_reserved(u32::from(addr)),
                "{addr} is reserved"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = population(Year::Y2018, 1000.0);
        let b = population(Year::Y2018, 1000.0);
        assert_eq!(a.resolvers, b.resolvers);
        let mut cfg = PopulationConfig::new(Year::Y2018, 1000.0);
        cfg.seed = 99;
        let c = Population::generate(&cfg);
        assert_ne!(a.resolver(0).addr, c.resolver(0).addr);
    }

    #[test]
    fn respects_reserved_hosts() {
        let mut cfg = PopulationConfig::new(Year::Y2018, 2000.0);
        let probe = population(Year::Y2018, 2000.0).resolver(0).addr;
        cfg.reserved_hosts = vec![probe];
        let pop = Population::generate(&cfg);
        assert!(pop.resolvers.addrs().all(|a| a != probe));
    }

    #[test]
    fn malicious_resolvers_have_countries_and_categories() {
        let pop = population(Year::Y2018, 500.0);
        let malicious: Vec<_> = pop
            .resolvers()
            .filter(|r| r.policy.malicious_category.is_some())
            .collect();
        let expected = (26_926.0_f64 / 500.0).round() as usize;
        assert!(
            (malicious.len() as i64 - expected as i64).abs() <= 1,
            "{} vs {expected}",
            malicious.len()
        );
        assert!(malicious.iter().all(|r| r.country.is_some()));
        // US dominates (81% in 2018).
        let us = malicious.iter().filter(|r| r.country == Some("US")).count();
        assert!(us * 10 > malicious.len() * 7, "US {us}/{}", malicious.len());
    }

    #[test]
    fn malicious_answer_seeds_cover_all_malicious_resolvers() {
        let pop = population(Year::Y2018, 500.0);
        let seeded: HashSet<Ipv4Addr> = pop.malicious_answers.iter().map(|m| m.ip).collect();
        for r in pop.resolvers() {
            if r.policy.malicious_category.is_some() {
                let ResponseAction::Immediate(imm) = &r.policy.action else {
                    panic!("malicious must be immediate");
                };
                let Some(AnswerData::FixedIp(ip)) = &imm.answer else {
                    panic!("malicious must answer an IP");
                };
                assert!(seeded.contains(ip), "{ip} not seeded");
            }
        }
        // Seed counts equal the malicious population.
        let seeded_r2: u64 = pop.malicious_answers.iter().map(|m| m.r2).sum();
        assert_eq!(
            seeded_r2,
            pop.count_by(|r| r.policy.malicious_category.is_some())
        );
    }

    #[test]
    fn top_answer_dominates_wrong_answers_2018() {
        // 216.194.64.193 is the most frequent wrong answer.
        let pop = population(Year::Y2018, 500.0);
        let top = Ipv4Addr::new(216, 194, 64, 193);
        let n = pop.count_by(|r| {
            matches!(&r.policy.action, ResponseAction::Immediate(imm)
                if imm.answer == Some(AnswerData::FixedIp(top)))
        });
        let expected = (23_692.0_f64 / 500.0).round() as i64;
        assert!((n as i64 - expected).abs() <= 2, "{n} vs {expected}");
    }

    #[test]
    fn off_port_responders_generated_on_request() {
        let mut cfg = PopulationConfig::new(Year::Y2018, 5000.0);
        cfg.off_port_responders = 25;
        let pop = Population::generate(&cfg);
        assert_eq!(pop.off_port.len(), 25);
        for r in pop.off_port() {
            let ResponseAction::Immediate(imm) = &r.policy.action else {
                panic!();
            };
            assert_eq!(imm.src_port, Some(1024));
        }
    }

    #[test]
    fn full_scale_plan_matches_exact_cells() {
        // Scale 1.0 would materialize 6.5M resolvers; verify the pure
        // arithmetic path instead on a moderate scale and check the
        // recursing share: correct answers / total.
        let pop = population(Year::Y2018, 1000.0);
        let recursing = pop.count_by(|r| r.policy.recurses());
        let expected = (2_752_562.0_f64 / 1000.0).round();
        assert!(
            (recursing as f64 - expected).abs() <= 2.0,
            "{recursing} vs {expected}"
        );
    }

    #[test]
    fn year_2013_has_malformed_responders() {
        let pop = population(Year::Y2013, 1000.0);
        let malformed = pop.count_by(
            |r| matches!(&r.policy.action, ResponseAction::Immediate(imm) if imm.malformed_rdata),
        );
        let expected = (8_764.0_f64 / 1000.0).round() as i64;
        assert!((malformed as i64 - expected).abs() <= 1, "{malformed}");
    }

    #[test]
    fn spread_and_scaled_unique_helpers() {
        assert_eq!(spread(10, 3), vec![4, 3, 3]);
        assert_eq!(spread(2, 5), vec![1, 1, 0, 0, 0]);
        assert_eq!(spread(0, 0), Vec::<u64>::new());
        assert_eq!(scaled_unique(100, 1000, 10, 100.0), 1);
        assert_eq!(scaled_unique(0, 0, 10, 1.0), 0);
        assert_eq!(scaled_unique(1000, 1000, 5, 1.0), 5, "capped at draws");
    }
}

#[cfg(test)]
mod forwarder_population_tests {
    use super::*;
    use crate::paper::Year;

    #[test]
    fn forwarder_fraction_demotes_honest_resolvers() {
        let mut cfg = PopulationConfig::new(Year::Y2018, 1000.0);
        cfg.forwarder_fraction = 0.1;
        let pop = Population::generate(&cfg);
        let forwarders = pop.count_by(|r| r.policy.forwards());
        let honest = pop.count_by(|r| r.policy.recurses());
        assert!(forwarders > 100, "forwarders {forwarders}");
        // Total correct-answer population unchanged: honest + forwarders
        // equals the no-forwarder honest count.
        let plain = Population::generate(&PopulationConfig::new(Year::Y2018, 1000.0));
        assert_eq!(honest + forwarders, plain.count_by(|r| r.policy.recurses()));
        // Upstreams exist and are distinct from probed hosts.
        assert!(!pop.upstreams.is_empty());
        let probed: std::collections::HashSet<_> = pop.resolvers.addrs().collect();
        for up in pop.upstreams() {
            assert!(!probed.contains(&up.addr));
            assert!(up.policy.recurses());
        }
        // Every forwarder points at a real upstream.
        let upstream_addrs: std::collections::HashSet<_> = pop.upstreams.addrs().collect();
        for r in pop.resolvers() {
            if let crate::profile::ResponseAction::Forward(fp) = &r.policy.action {
                assert!(upstream_addrs.contains(&fp.upstream));
            }
        }
    }

    #[test]
    fn zero_fraction_means_no_forwarders() {
        let pop = Population::generate(&PopulationConfig::new(Year::Y2018, 2000.0));
        assert_eq!(pop.count_by(|r| r.policy.forwards()), 0);
        assert!(pop.upstreams.is_empty());
    }
}

#[cfg(test)]
mod extreme_scale_tests {
    use super::*;
    use crate::paper::Year;

    #[test]
    fn extreme_scales_do_not_panic() {
        // Scale so coarse that almost every cell rounds away.
        for scale in [1e6, 1e7, 6_506_258.0] {
            let pop = Population::generate(&PopulationConfig::new(Year::Y2018, scale));
            let expected = (6_506_258.0_f64 / scale).round() as usize;
            assert_eq!(pop.resolvers.len(), expected, "scale {scale}");
        }
    }

    #[test]
    fn single_resolver_population_is_the_dominant_cell() {
        // At 1:6.5M exactly one responder survives; largest-remainder
        // puts it in the largest cell (the Refused responders).
        let pop = Population::generate(&PopulationConfig::new(Year::Y2018, 6_506_258.0));
        assert_eq!(pop.resolvers.len(), 1);
        let policy = pop.resolver(0).policy;
        match &policy.action {
            ResponseAction::Immediate(imm) => {
                assert_eq!(imm.rcode, orscope_dns_wire::Rcode::Refused);
                assert!(imm.answer.is_none());
            }
            other => panic!("unexpected dominant cell {other:?}"),
        }
    }

    #[test]
    fn tiny_population_has_no_malicious_answers() {
        let pop = Population::generate(&PopulationConfig::new(Year::Y2018, 1e6));
        // 26,926 / 1e6 rounds to 0: no malicious cells, no seeds.
        assert_eq!(
            pop.count_by(|r| r.policy.malicious_category.is_some()),
            pop.malicious_answers.iter().map(|m| m.r2).sum::<u64>()
        );
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use crate::paper::Year;
    use std::collections::HashSet;

    fn forwarder_pop() -> Population {
        let mut config = PopulationConfig::new(Year::Y2018, 5_000.0);
        config.forwarder_fraction = 0.3;
        config.off_port_responders = 10;
        Population::generate(&config)
    }

    #[test]
    fn shard_of_one_is_identity() {
        let pop = forwarder_pop();
        let parts = pop.shard(1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].resolvers, pop.resolvers);
        assert_eq!(parts[0].off_port, pop.off_port);
        assert_eq!(parts[0].upstreams, pop.upstreams);
    }

    #[test]
    fn shards_partition_without_loss_or_overlap() {
        let pop = forwarder_pop();
        for n in [2usize, 4, 8] {
            let parts = pop.shard(n);
            assert_eq!(parts.len(), n);
            let total: usize = parts.iter().map(|p| p.resolvers.len()).sum();
            assert_eq!(total, pop.resolvers.len(), "{n} shards");
            let off: usize = parts.iter().map(|p| p.off_port.len()).sum();
            assert_eq!(off, pop.off_port.len());
            let ups: usize = parts.iter().map(|p| p.upstreams.len()).sum();
            assert_eq!(ups, pop.upstreams.len());
            let mut seen = HashSet::new();
            for part in &parts {
                for addr in part
                    .resolvers
                    .addrs()
                    .chain(part.off_port.addrs())
                    .chain(part.upstreams.addrs())
                {
                    assert!(seen.insert(addr), "{addr} assigned twice");
                }
            }
        }
    }

    #[test]
    fn forwarders_are_colocated_with_their_upstream() {
        let pop = forwarder_pop();
        assert!(!pop.upstreams.is_empty(), "fixture needs forwarders");
        for n in [2usize, 4, 8] {
            for part in pop.shard(n) {
                let local: HashSet<Ipv4Addr> = part.upstreams.addrs().collect();
                for r in part.resolvers() {
                    if let Some(up) = r.policy.upstream_addr() {
                        assert!(
                            local.contains(&up),
                            "forwarder {} split from upstream {up} at {n} shards",
                            r.addr
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_assignment_is_order_free() {
        // The owner of an address depends on nothing but the address and
        // the shard count.
        let addr = Ipv4Addr::new(93, 184, 216, 34);
        for n in [1usize, 2, 4, 8, 16] {
            assert!(shard_index(addr, n) < n);
            assert_eq!(shard_index(addr, n), shard_index(addr, n));
        }
    }
}
