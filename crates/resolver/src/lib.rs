#![warn(missing_docs)]
//! Open-resolver behavior: a real recursive resolver, the misbehavior
//! profiles the paper observes in the wild, and the per-year calibrated
//! population generator.
//!
//! The paper's subject is the *behavior* of ~6.5 million hosts that
//! answered a DNS probe in 2018 (16.7 million in 2013): honest open
//! resolvers, resolvers that answer with the wrong flags, resolvers that
//! return wrong or outright malicious addresses, and broken devices that
//! return empty or malformed packets. This crate models each of those as
//! an explicit, testable [`ResponsePolicy`] attached to a simulated host:
//!
//! - [`engine::ProfiledResolver`] is the host endpoint. Policies that
//!   require a *correct* answer really recurse through the simulated
//!   root / TLD / authoritative hierarchy (with caching, retries and
//!   timeouts); policies that misbehave answer from their configuration.
//! - [`paper`] holds the per-year cell counts recovered from the paper's
//!   Tables II-X, including the joint flag/answer/rcode decomposition
//!   and the malicious answer-address pools.
//! - [`population`] turns those cells into a concrete, scaled population
//!   of `(address, policy)` pairs whose aggregate R2 stream reproduces
//!   the paper's tables through the full measurement pipeline.

pub mod cache;
pub mod engine;
pub mod intern;
pub mod paper;
pub mod population;
pub mod profile;
pub mod scaling;
pub mod telemetry;

pub use cache::DnsCache;
pub use engine::{ProfiledResolver, ResolverConfig};
pub use intern::{ProfileId, ProfileTable, COUNTRY_NONE};
pub use population::{HostList, HostRef, PlannedResolver, Population, PopulationConfig};
pub use profile::{
    AnswerData, ForwardPolicy, ImmediateResponse, ProfileClass, RecursePolicy, ResponseAction,
    ResponsePolicy,
};
pub use telemetry::ResolverTelemetry;
