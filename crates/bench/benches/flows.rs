//! The qname-keyed four-flow join of section III-B.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_analysis::FlowSet;
use orscope_bench::campaign_2018;

fn bench(c: &mut Criterion) {
    let result = campaign_2018();
    let mut g = c.benchmark_group("flows");
    g.bench_function("match_q1_q2_r1_r2", |b| {
        b.iter(|| {
            let flows = FlowSet::match_records(
                &result.dataset().records,
                result.auth_packets(),
                &result.config().infra.zone,
            );
            black_box(flows.flows.len())
        })
    });
    let flows = result.flows();
    g.bench_function("latency_quantiles", |b| {
        b.iter(|| black_box(flows.latency_quantile(0.5)))
    });
    g.bench_function("fanout", |b| b.iter(|| black_box(flows.mean_q2_fanout())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
