//! Telemetry overhead: wall-clock for a scale-200 2018 campaign with the
//! metric registry wired in versus fully disabled, written to
//! `BENCH_telemetry.json` at the repo root. The instrumented hot paths
//! cost one relaxed atomic add per recording, so the target is < 3%.
//!
//! Not a criterion harness: the deliverable is the JSON artifact, and a
//! best-of-N `Instant` measurement keeps the runtime proportionate to a
//! handful of full campaigns.

use std::time::Instant;

use orscope_core::{Campaign, CampaignConfig};
use orscope_resolver::paper::Year;

/// Scale 200 is the acceptance point: large enough that the simulator
/// event loop (the instrumented surface) dominates setup and analysis.
const SCALE: f64 = 200.0;
const RUNS: u32 = 3;

fn measure(telemetry: bool) -> (f64, u64) {
    let mut best_ms = f64::INFINITY;
    let mut r2 = 0;
    for _ in 0..RUNS {
        let config = CampaignConfig::new(Year::Y2018, SCALE).with_telemetry(telemetry);
        let campaign = Campaign::new(config);
        let start = Instant::now();
        let result = campaign.run().unwrap();
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        r2 = result.dataset().r2();
    }
    (best_ms, r2)
}

fn main() {
    // Interleave-free ordering: the disabled baseline first, then the
    // instrumented run, each best-of-N to shed scheduler noise.
    let (off_ms, off_r2) = measure(false);
    let (on_ms, on_r2) = measure(true);
    assert_eq!(off_r2, on_r2, "telemetry changed the measured R2 count");
    let overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
    eprintln!("telemetry off: {off_ms:>8.1}ms");
    eprintln!("telemetry on : {on_ms:>8.1}ms ({overhead_pct:+.2}%)");
    let report = serde_json::json!({
        "bench": "telemetry_overhead",
        "year": 2018,
        "scale": SCALE,
        "runs_per_point": RUNS,
        "measure": "best-of-N wall clock, full campaign",
        "disabled_ms": off_ms,
        "enabled_ms": on_ms,
        "overhead_pct": overhead_pct,
        "target_pct": 3.0,
        "r2": on_r2,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write BENCH_telemetry.json");
    eprintln!("wrote {path}");
}
