//! Table IX: threat-intelligence validation of every wrong answer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_analysis::tables::Table9;
use orscope_bench::{campaign_2013, campaign_2018};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table9_threat");
    for (year, result) in [("2013", campaign_2013()), ("2018", campaign_2018())] {
        g.bench_function(format!("categorize_{year}"), |b| {
            b.iter(|| black_box(Table9::measured(result.dataset(), result.threat_db())))
        });
    }
    let threat = campaign_2018().threat_db();
    let ips: Vec<_> = threat.iter_dominant().map(|(ip, _)| ip).collect();
    g.bench_function("dominant_category_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ips.len();
            black_box(threat.dominant_category(ips[i]))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
