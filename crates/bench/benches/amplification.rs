//! The §II-C amplification experiment: response-size blowup of ANY
//! queries served by the authoritative zone.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_authns::{AuthoritativeServer, CaptureHandle, ClusterZone, Zone};
use orscope_dns_wire::{Message, Question, RecordClass, RecordType};

fn server() -> AuthoritativeServer {
    let mut zone = Zone::new(
        "ucfsealresearch.net".parse().unwrap(),
        "ns1.ucfsealresearch.net".parse().unwrap(),
    );
    for i in 0..20 {
        zone.add_txt(
            "ucfsealresearch.net".parse().unwrap(),
            &format!("amplification-payload-{i:02}: {}", "x".repeat(120)),
        );
    }
    let mut cz = ClusterZone::new(zone);
    cz.load_cluster(0, 1000);
    AuthoritativeServer::new(cz, CaptureHandle::new())
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("amplification");
    let mut srv = server();
    for qtype in [RecordType::A, RecordType::Any] {
        let query = Message::query(
            7,
            Question::new(
                "ucfsealresearch.net".parse().unwrap(),
                qtype,
                RecordClass::In,
            ),
        );
        g.bench_function(format!("serve_{qtype}"), |b| {
            b.iter(|| {
                let resp = srv.respond(&query);
                black_box(resp.encode().unwrap().len())
            })
        });
    }
    // Report the amplification factor once for the logs.
    let a = srv
        .respond(&Message::query(
            1,
            Question::a("ucfsealresearch.net".parse().unwrap()),
        ))
        .encode()
        .unwrap()
        .len();
    let any = srv
        .respond(&Message::query(
            2,
            Question::any("ucfsealresearch.net".parse().unwrap()),
        ))
        .encode()
        .unwrap()
        .len();
    eprintln!(
        "amplification: A response {a} B, ANY response {any} B ({:.1}x)",
        any as f64 / a as f64
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
