//! Table VII: incorrect-answer form classification (IP/URL/string/N-A)
//! with unique-value accounting.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_analysis::tables::Table7;
use orscope_bench::{campaign_2013, campaign_2018};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7_forms");
    g.bench_function("forms_2018", |b| {
        b.iter(|| black_box(Table7::measured(campaign_2018().dataset())))
    });
    g.bench_function("forms_2013_with_na", |b| {
        b.iter(|| {
            let t = Table7::measured(campaign_2013().dataset());
            assert!(t.na_r2 > 0, "the 2013 N/A packets must be present");
            black_box(t)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
