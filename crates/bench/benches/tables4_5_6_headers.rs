//! Tables IV, V and VI: the header-flag and rcode breakdowns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_analysis::tables::{Table4, Table5, Table6};
use orscope_bench::{campaign_2013, campaign_2018};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables4_5_6_headers");
    for (year, result) in [("2013", campaign_2013()), ("2018", campaign_2018())] {
        g.bench_function(format!("table4_ra_{year}"), |b| {
            b.iter(|| black_box(Table4::measured(result.dataset())))
        });
        g.bench_function(format!("table5_aa_{year}"), |b| {
            b.iter(|| black_box(Table5::measured(result.dataset())))
        });
        g.bench_function(format!("table6_rcode_{year}"), |b| {
            b.iter(|| black_box(Table6::measured(result.dataset())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
