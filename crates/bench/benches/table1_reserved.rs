//! Table I: the reserved-block registry and probeable-space math that
//! gate every probe the scanner emits.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_ipspace::{reserved, AllowedSpace, Blocklist, ScanPermutation};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_reserved");
    let list = Blocklist::reserved();
    let space = AllowedSpace::probeable();

    g.bench_function("build_reserved_blocklist", |b| {
        b.iter(|| black_box(Blocklist::reserved().covered()))
    });
    g.bench_function("is_reserved_membership", |b| {
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(2_654_435_761);
            black_box(list.contains(addr))
        })
    });
    g.bench_function("allowed_space_nth", |b| {
        let mut rank = 0u64;
        b.iter(|| {
            rank = (rank + 7_777_777) % space.len();
            black_box(space.nth(rank))
        })
    });
    g.bench_function("scan_permutation_step", |b| {
        let perm = ScanPermutation::full_ipv4(7);
        let mut iter = perm.iter();
        b.iter(|| black_box(iter.next()))
    });
    g.bench_function("table1_totals", |b| {
        b.iter(|| {
            assert_eq!(black_box(reserved::total_probeable()), 3_702_258_432);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
