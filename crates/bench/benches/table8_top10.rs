//! Table VIII: top-10 wrong-answer extraction with geo/threat joins.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_analysis::tables::Table8;
use orscope_bench::campaign_2018;

fn bench(c: &mut Criterion) {
    let result = campaign_2018();
    let mut g = c.benchmark_group("table8_top10");
    for k in [10usize, 100] {
        g.bench_function(format!("top_{k}"), |b| {
            b.iter(|| {
                black_box(Table8::measured(
                    result.dataset(),
                    result.geo_db(),
                    result.threat_db(),
                    k,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
