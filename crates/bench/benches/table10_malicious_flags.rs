//! Table X + the country distribution: header forensics and geolocation
//! of the malicious subset.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_analysis::tables::{CountryTable, Table10};
use orscope_bench::campaign_2018;

fn bench(c: &mut Criterion) {
    let result = campaign_2018();
    let mut g = c.benchmark_group("table10_malicious_flags");
    g.bench_function("flag_forensics", |b| {
        b.iter(|| {
            let t = Table10::measured(result.dataset(), result.threat_db());
            assert_eq!(t.nonzero_rcode, 0);
            black_box(t)
        })
    });
    g.bench_function("country_distribution", |b| {
        b.iter(|| {
            black_box(CountryTable::measured(
                result.dataset(),
                result.geo_db(),
                result.threat_db(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
