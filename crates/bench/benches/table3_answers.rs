//! Table III: answer presence/correctness classification over the
//! captured R2 stream.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_analysis::tables::Table3;
use orscope_bench::campaign_2018;

fn bench(c: &mut Criterion) {
    let result = campaign_2018();
    let mut g = c.benchmark_group("table3_answers");
    g.bench_function("compute_table3", |b| {
        b.iter(|| black_box(Table3::measured(result.dataset())))
    });
    g.bench_function("err_pct", |b| {
        let t = Table3::measured(result.dataset());
        b.iter(|| black_box(t.0.err_pct()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
