//! Peak live memory of the capture→tables path, batch vs streaming,
//! written to `BENCH_streaming.json` at the repo root.
//!
//! Both arms consume the identical synthetic capture stream (R2
//! responses with realistic multi-record answers, plus auth-server
//! Q2/R1 packets and foreign traffic) and finish with every table plus
//! the flow join. The batch arm buffers the stream and analyzes through
//! `Dataset::from_captures` + `FlowSet::match_records` — the original
//! pipeline. The streaming arm folds each packet into a
//! `StreamingAnalyzer` the moment it is produced, so payloads die
//! immediately and the peak is the accumulator state alone.
//!
//! A counting global allocator tracks live bytes (alloc minus dealloc)
//! and the high-water mark; the reported figure for each arm is peak
//! live bytes above the arm's starting baseline. Not a criterion
//! harness: the deliverable is the JSON artifact. `--smoke` shrinks the
//! workload for CI liveness checks.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use orscope_analysis::tables::{
    AmplificationTable, AsnTable, CountryTable, EmptyQuestionReport, Table10, Table3, Table4,
    Table5, Table6, Table7, Table8, Table9,
};
use orscope_analysis::{Dataset, FlowSet, RecordSink, StreamingAnalyzer};
use orscope_authns::scheme::{ground_truth, ProbeLabel};
use orscope_authns::{CapturedPacket, Direction};
use orscope_dns_wire::{Message, Name, Question, RData, Rcode, Record};
use orscope_geo::{GeoDb, GeoRecord};
use orscope_netsim::SimTime;
use orscope_prober::{ProbeStats, R2Capture};
use orscope_resolver::paper::Year;
use orscope_threatintel::{Category, ThreatDb};

/// System allocator wrapper tracking live bytes and their high-water
/// mark. Relaxed ordering suffices: the bench is single-threaded.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Resets the high-water mark to the current live level and returns
/// that baseline; the arm's peak is then `PEAK - baseline`.
fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

fn peak_above(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// SplitMix64, so both arms replay the identical stream from a seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn zone() -> Name {
    "ucfsealresearch.net".parse().unwrap()
}

const WRONG_IPS: [Ipv4Addr; 4] = [
    Ipv4Addr::new(208, 91, 197, 91),
    Ipv4Addr::new(198, 51, 100, 7),
    Ipv4Addr::new(203, 0, 113, 99),
    Ipv4Addr::new(192, 0, 2, 45),
];

fn threat_db() -> ThreatDb {
    let mut db = ThreatDb::new();
    db.seed(WRONG_IPS[0], Category::Malware, 3);
    db.seed(WRONG_IPS[1], Category::Phishing, 2);
    db
}

fn geo_db() -> GeoDb {
    let mut db = GeoDb::new();
    for (i, ip) in WRONG_IPS.iter().enumerate() {
        db.insert_exact(*ip, GeoRecord::new("VG", 64_500 + i as u32, "WrongCo"));
    }
    db.insert_range(
        Ipv4Addr::new(10, 0, 0, 0),
        Ipv4Addr::new(10, 255, 255, 255),
        GeoRecord::new("US", 100, "OrgA"),
    );
    db
}

/// One event of the capture stream, in capture-time order.
enum Event {
    R2(R2Capture),
    Auth(CapturedPacket),
}

/// Replays the seeded stream of `responses` R2 captures (plus the
/// recursive flows' auth packets) into `consume`, one event at a time —
/// the shape of the capture-time sink interface. Payload construction
/// is identical across arms; only what the consumer retains differs.
fn replay(seed: u64, responses: u64, mut consume: impl FnMut(Event)) {
    let zone = zone();
    let mut rng = Rng(seed);
    for i in 0..responses {
        let label = ProbeLabel::new((i % 1000) as u32, i / 1000);
        let qname = label.qname(&zone);
        let resolver = Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8);
        let at_ms = 100 + rng.below(600_000);
        let query = Message::query(1, Question::a(qname.clone()));
        let mut builder = Message::builder()
            .response_to(&query)
            .recursion_available(rng.below(100) < 80);
        // A realistic answer section: the honest majority echo the
        // ground truth plus the zone's full NS delegation set with glue
        // (the shape that makes open resolvers amplifiers); a slice
        // redirect to the wrong-IP pool; a few refuse.
        let shape = rng.below(100);
        if shape < 78 {
            builder = builder.answer(Record::in_class(
                qname.clone(),
                60,
                RData::A(ground_truth(label)),
            ));
            for ns in 0..6 {
                builder = builder
                    .authority(Record::in_class(
                        zone.clone(),
                        3600,
                        RData::Ns(format!("ns{ns}.ucfsealresearch.net").parse().unwrap()),
                    ))
                    .additional(Record::in_class(
                        format!("ns{ns}.ucfsealresearch.net").parse().unwrap(),
                        3600,
                        RData::A(Ipv4Addr::new(45, 77, 1, ns as u8 + 1)),
                    ));
            }
        } else if shape < 90 {
            builder = builder.authoritative(true).answer(Record::in_class(
                qname.clone(),
                60,
                RData::A(WRONG_IPS[(i % WRONG_IPS.len() as u64) as usize]),
            ));
        } else {
            builder = builder.rcode(Rcode::Refused);
        }
        let payload = builder.build().encode().unwrap();
        // A third of the flows recurse: two Q2 hops and an R1 hit the
        // authoritative capture point before the R2 lands.
        if i % 3 == 0 {
            let upstream = Ipv4Addr::new(10, 200, (i >> 8) as u8, i as u8);
            let q2 = Message::query(7, Question::a(qname.clone()))
                .encode()
                .unwrap();
            for hop in 0..2u64 {
                consume(Event::Auth(CapturedPacket {
                    at: SimTime::from_nanos((at_ms - 40 + hop) * 1_000_000),
                    direction: Direction::Inbound,
                    peer: upstream,
                    peer_port: 53,
                    payload: Bytes::from(q2.clone()),
                }));
            }
            consume(Event::Auth(CapturedPacket {
                at: SimTime::from_nanos((at_ms - 20) * 1_000_000),
                direction: Direction::Outbound,
                peer: upstream,
                peer_port: 53,
                payload: Bytes::from(q2),
            }));
        }
        consume(Event::R2(R2Capture {
            target: resolver,
            label: Some(label),
            qname,
            at: SimTime::from_nanos(at_ms * 1_000_000),
            sent_at: SimTime::from_nanos(at_ms * 500_000),
            payload: Bytes::from(payload),
        }));
    }
}

/// Renders every table — both arms must do identical finishing work.
#[allow(clippy::too_many_arguments)]
fn render_tables(
    r2: u64,
    t3: Table3,
    t4: Table4,
    t5: Table5,
    t6: Table6,
    t7: Table7,
    t8: Table8,
    t9: Table9,
    t10: Table10,
    cc: CountryTable,
    asn: AsnTable,
    amp: AmplificationTable,
    eq: EmptyQuestionReport,
    flows: &FlowSet,
) -> String {
    format!(
        "r2={r2} {t3} {t4} {t5} {t6} {t7} {t8} {t9} {t10} {cc} {asn} {amp} {eq} \
         flows={} fanout={:.4}",
        flows.recursed_count(),
        flows.mean_q2_fanout(),
    )
}

/// The original pipeline: buffer the whole stream, then classify and
/// derive every table. Returns (peak live bytes, rendered tables).
fn batch_arm(seed: u64, responses: u64, geo: &GeoDb, threat: &ThreatDb) -> (usize, String) {
    let baseline = reset_peak();
    let mut captures = Vec::new();
    let mut auth = Vec::new();
    replay(seed, responses, |event| match event {
        Event::R2(c) => captures.push(c),
        Event::Auth(p) => auth.push(p),
    });
    auth.sort_by_key(|p| p.at);
    let ds = Dataset::from_captures(
        Year::Y2018,
        1_000.0,
        responses,
        auth.len() as u64,
        auth.len() as u64,
        600.0,
        &captures,
        ProbeStats::default(),
    );
    drop(captures);
    let flows = FlowSet::match_records(&ds.records, &auth, &zone());
    let rendered = render_tables(
        ds.r2(),
        Table3::measured(&ds),
        Table4::measured(&ds),
        Table5::measured(&ds),
        Table6::measured(&ds),
        Table7::measured(&ds),
        Table8::measured(&ds, geo, threat, 10),
        Table9::measured(&ds, threat),
        Table10::measured(&ds, threat),
        CountryTable::measured(&ds, geo, threat),
        AsnTable::measured(&ds, geo, threat),
        AmplificationTable::measured(&ds),
        EmptyQuestionReport::measured(&ds),
        &flows,
    );
    (peak_above(baseline), rendered)
}

/// The streaming pipeline: every event folds into the analyzer as it is
/// produced and its payload drops immediately.
fn streaming_arm(seed: u64, responses: u64, geo: &GeoDb, threat: &ThreatDb) -> (usize, String) {
    let baseline = reset_peak();
    let mut analyzer = StreamingAnalyzer::new(zone(), false);
    replay(seed, responses, |event| match event {
        Event::R2(c) => analyzer.on_r2(&c),
        Event::Auth(p) => analyzer.on_auth(&p),
    });
    // Tables first, then drain the join state — the order the campaign
    // uses, so the flow map never lives beside its finished FlowSet.
    let r2 = analyzer.r2_classified();
    let t3 = analyzer.table3();
    let t4 = analyzer.table4();
    let t5 = analyzer.table5();
    let t6 = analyzer.table6();
    let t7 = analyzer.table7();
    let t8 = analyzer.table8(geo, threat, 10);
    let t9 = analyzer.table9(threat);
    let t10 = analyzer.table10(threat);
    let cc = analyzer.countries(geo, threat);
    let asn = analyzer.asns(geo, threat);
    let amp = analyzer.amplification();
    let eq = analyzer.empty_question();
    let flows = analyzer.take_flows();
    let rendered = render_tables(
        r2, t3, t4, t5, t6, t7, t8, t9, t10, cc, asn, amp, eq, &flows,
    );
    (peak_above(baseline), rendered)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: [u64; 2] = if smoke {
        [2_000, 10_000]
    } else {
        [20_000, 200_000]
    };
    let (geo, threat) = (geo_db(), threat_db());

    let mut entries = String::new();
    let mut last_ratio = 0f64;
    for (i, responses) in scales.iter().enumerate() {
        let (batch_peak, batch_tables) = batch_arm(42, *responses, &geo, &threat);
        let (stream_peak, stream_tables) = streaming_arm(42, *responses, &geo, &threat);
        assert_eq!(
            batch_tables, stream_tables,
            "the two arms must compute identical tables"
        );
        let ratio = batch_peak as f64 / stream_peak.max(1) as f64;
        last_ratio = ratio;
        eprintln!(
            "{responses:>7} responses: batch peak {:>12} B  streaming peak {:>12} B  ({ratio:.1}x)",
            batch_peak, stream_peak
        );
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\n      \"responses\": {responses},\n      \
             \"batch_peak_live_bytes\": {batch_peak},\n      \
             \"streaming_peak_live_bytes\": {stream_peak},\n      \
             \"batch_over_streaming\": {ratio:.2}\n    }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"streaming_memory\",\n  \"smoke\": {smoke},\n  \
         \"metric\": \"peak live capture/analysis bytes above baseline\",\n  \
         \"scales\": [\n{entries}\n  ]\n}}\n"
    );
    assert!(
        last_ratio >= 5.0,
        "streaming must hold peak live bytes at least 5x below batch \
         at the largest scale (got {last_ratio:.2}x)"
    );
    if smoke {
        // CI liveness check: exercise everything, commit nothing.
        eprintln!("{json}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    std::fs::write(path, json).expect("write BENCH_streaming.json");
    eprintln!("wrote {path}");
}
