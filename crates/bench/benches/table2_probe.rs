//! Table II: the probe pipeline itself — a full campaign per iteration
//! (population build, scan, capture, classification).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_bench::run_campaign;
use orscope_resolver::paper::Year;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_probe");
    g.sample_size(10);
    for (name, year) in [("scan_2013", Year::Y2013), ("scan_2018", Year::Y2018)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let result = run_campaign(year, 20_000.0);
                let t2 = result.table2_measured();
                assert_eq!(t2.q2_r1 as u64, result.dataset().r1);
                black_box(t2)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
