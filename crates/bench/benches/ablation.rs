//! Ablations of the methodology's design choices:
//!
//! - **Subdomain reuse** (§III-B): how many zone clusters a scan burns
//!   with and without recycling unanswered names.
//! - **The port-53 blind spot** (§V): responders missed when the prober
//!   ignores off-port answers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use orscope_core::{Campaign, CampaignConfig};
use orscope_prober::SubdomainGenerator;
use orscope_resolver::paper::Year;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    // Reuse ablation on the generator itself: a 2M-probe scan with a
    // 0.45% answer rate (the 2013 reality), 5k-name clusters.
    for (name, reuse) in [("with_reuse", true), ("without_reuse", false)] {
        g.bench_function(format!("subdomain_{name}"), |b| {
            b.iter(|| {
                let mut gen = SubdomainGenerator::new(5_000);
                for i in 0..200_000u64 {
                    let label = gen.next_label();
                    if reuse && i % 222 != 0 {
                        gen.recycle(label);
                    }
                }
                let clusters = gen.clusters_used();
                if reuse {
                    assert!(clusters <= 2, "reuse: {clusters} clusters");
                } else {
                    assert!(clusters >= 40, "no reuse: {clusters} clusters");
                }
                black_box(clusters)
            })
        });
    }

    // Blind-spot ablation: campaign with off-port responders.
    g.bench_function("blind_spot_campaign", |b| {
        b.iter(|| {
            let mut cfg = CampaignConfig::new(Year::Y2018, 20_000.0);
            cfg.off_port_responders = 30;
            let result = Campaign::new(cfg).run().unwrap();
            assert_eq!(result.dataset().probe_stats.off_port_dropped, 30);
            black_box(result.dataset().r2())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
