//! Sharded campaign scaling: wall-clock for a fixed-scale 2018 campaign
//! at 1/2/4/8 shards, written to `BENCH_sharding.json` at the repo root
//! so the perf trajectory is tracked alongside the table benches.
//!
//! Not a criterion harness: the deliverable is the JSON artifact, and a
//! best-of-N `Instant` measurement keeps the runtime proportionate to
//! four full campaigns per point.

use std::time::Instant;

use orscope_core::{Campaign, CampaignConfig};
use orscope_resolver::paper::Year;

/// Scale is a sampling divisor: smaller means a bigger campaign. 200
/// is small enough (~1s per 1-shard run) that per-shard event loops
/// dominate thread spawn/merge overhead, and four points at best-of-N
/// still finish in well under a minute.
const SCALE: f64 = 200.0;
const RUNS: u32 = 3;

fn main() {
    let mut results = Vec::new();
    let mut baseline_ms = f64::NAN;
    for shards in [1usize, 2, 4, 8] {
        let mut best_ms = f64::INFINITY;
        let mut r2 = 0;
        for _ in 0..RUNS {
            let config = CampaignConfig::new(Year::Y2018, SCALE).with_shards(shards);
            let campaign = Campaign::new(config);
            let start = Instant::now();
            let result = campaign.run().unwrap();
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            r2 = result.dataset().r2();
        }
        if shards == 1 {
            baseline_ms = best_ms;
        }
        let speedup = baseline_ms / best_ms;
        eprintln!("shards={shards:<2} wall={best_ms:>8.1}ms speedup={speedup:.2}x r2={r2}");
        // Hand-formatted JSON: the artifact is small and flat, and manual
        // formatting keeps the bench free of serializer noise.
        results.push(format!(
            "    {{\n      \"shards\": {shards},\n      \"wall_ms\": {best_ms:.1},\n      \
             \"speedup_vs_1_shard\": {speedup:.2},\n      \"r2\": {r2}\n    }}"
        ));
    }
    // Record the core count: on a single-CPU host the expected speedup
    // is 1.0x (shards still verify r2 invariance, not wall clock).
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"sharded_campaign\",\n  \"year\": 2018,\n  \"scale\": {SCALE},\n  \
         \"runs_per_point\": {RUNS},\n  \"host_cpus\": {cpus},\n  \
         \"measure\": \"best-of-N wall clock, full campaign including merge\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        results.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharding.json");
    std::fs::write(path, json).expect("write BENCH_sharding.json");
    eprintln!("wrote {path}");
}
