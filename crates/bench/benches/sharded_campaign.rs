//! Sharded campaign scaling: wall-clock for a fixed-scale 2018 campaign
//! at 1/2/4/8 shards, written to `BENCH_sharding.json` at the repo root
//! so the perf trajectory is tracked alongside the table benches.
//!
//! Not a criterion harness: the deliverable is the JSON artifact, and a
//! best-of-N `Instant` measurement keeps the runtime proportionate to
//! four full campaigns per point.

use std::time::Instant;

use orscope_core::{Campaign, CampaignConfig};
use orscope_resolver::paper::Year;

/// Coarse enough to finish quickly, fine enough that the per-shard event
/// loops dominate thread spawn/merge overhead.
const SCALE: f64 = 2_000.0;
const RUNS: u32 = 3;

fn main() {
    let mut results = Vec::new();
    let mut baseline_ms = f64::NAN;
    for shards in [1usize, 2, 4, 8] {
        let mut best_ms = f64::INFINITY;
        let mut r2 = 0;
        for _ in 0..RUNS {
            let config = CampaignConfig::new(Year::Y2018, SCALE).with_shards(shards);
            let campaign = Campaign::new(config);
            let start = Instant::now();
            let result = campaign.run();
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            r2 = result.dataset().r2();
        }
        if shards == 1 {
            baseline_ms = best_ms;
        }
        let speedup = baseline_ms / best_ms;
        eprintln!("shards={shards:<2} wall={best_ms:>8.1}ms speedup={speedup:.2}x r2={r2}");
        results.push(serde_json::json!({
            "shards": shards,
            "wall_ms": best_ms,
            "speedup_vs_1_shard": speedup,
            "r2": r2,
        }));
    }
    let report = serde_json::json!({
        "bench": "sharded_campaign",
        "year": 2018,
        "scale": SCALE,
        "runs_per_point": RUNS,
        "measure": "best-of-N wall clock, full campaign including merge",
        "results": results,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharding.json");
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write BENCH_sharding.json");
    eprintln!("wrote {path}");
}
