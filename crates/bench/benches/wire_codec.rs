//! Micro-benchmarks of the DNS wire codec the whole pipeline rides on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use orscope_dns_wire::{Message, Name, Question, RData, Record};
use std::net::Ipv4Addr;

fn sample_response() -> Message {
    let qname: Name = "or003.0123456.ucfsealresearch.net".parse().unwrap();
    let query = Message::query(0x1234, Question::a(qname.clone()));
    Message::builder()
        .response_to(&query)
        .recursion_available(true)
        .answer(Record::in_class(
            qname,
            60,
            RData::A(Ipv4Addr::new(45, 76, 1, 2)),
        ))
        .authority(Record::in_class(
            "ucfsealresearch.net".parse().unwrap(),
            3600,
            RData::Ns("ns1.ucfsealresearch.net".parse().unwrap()),
        ))
        .additional(Record::in_class(
            "ns1.ucfsealresearch.net".parse().unwrap(),
            3600,
            RData::A(Ipv4Addr::new(104, 238, 191, 60)),
        ))
        .build()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let msg = sample_response();
    let wire = msg.encode().unwrap();
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_response", |b| {
        b.iter(|| black_box(msg.encode().unwrap()))
    });
    g.bench_function("decode_response", |b| {
        b.iter(|| black_box(Message::decode(&wire).unwrap()))
    });
    let query = Message::query(
        1,
        Question::a("or000.0000001.ucfsealresearch.net".parse().unwrap()),
    );
    let query_wire = query.encode().unwrap();
    g.bench_function("encode_query", |b| {
        b.iter(|| black_box(query.encode().unwrap()))
    });
    g.bench_function("decode_query", |b| {
        b.iter(|| black_box(Message::decode(&query_wire).unwrap()))
    });
    g.bench_function("name_parse", |b| {
        b.iter(|| black_box("or123.4567890.ucfsealresearch.net".parse::<Name>().unwrap()))
    });
    g.bench_function("decode_garbage_rejection", |b| {
        let mut bad = wire.clone();
        let n = bad.len();
        bad[n - 6] = 0xFF;
        bad[n - 5] = 0xFF;
        b.iter(|| black_box(Message::decode(&bad).is_err()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
