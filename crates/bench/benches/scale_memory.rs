//! Peak live memory and event throughput of whole campaigns across
//! population scales, lazy vs eager host materialization, written to
//! `BENCH_scale.json` at the repo root.
//!
//! Each arm runs the identical 2018 campaign (streaming analysis, the
//! default) and differs only in the [`Materialization`] knob: the eager
//! arm registers every planned responder as a boxed endpoint up front
//! (the pre-interning behaviour), the lazy arm materializes host slots
//! on first packet delivery and releases them at quiescence. A counting
//! global allocator tracks live bytes (alloc minus dealloc) and the
//! high-water mark; the reported figure per arm is peak live bytes
//! above the arm's starting baseline, covering population generation,
//! the scan, and analysis — the full `Campaign::run` footprint.
//!
//! The headline point is `scale = 1.0`: the paper's full 2018
//! population (~6.5M responders), which the eager path cannot hold. It
//! runs lazy-only and must finish on a single core within a 2 GiB peak.
//! Scale 200 records events/sec for comparison against
//! `BENCH_hotpath.json`'s end-to-end wheel figure.
//!
//! Not a criterion harness: the deliverable is the JSON artifact.
//! `--smoke` runs only the scale-200 point for CI liveness checks.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use orscope_core::{Campaign, CampaignConfig, Materialization};
use orscope_resolver::paper::Year;

/// System allocator wrapper tracking live bytes and their high-water
/// mark. Relaxed ordering suffices: the bench is single-threaded.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Resets the high-water mark to the current live level and returns
/// that baseline; the arm's peak is then `PEAK - baseline`.
fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

fn peak_above(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// One measured campaign run.
struct Arm {
    peak_bytes: usize,
    events: u64,
    events_per_sec: f64,
    r2: u64,
    render: String,
}

fn run_arm(materialization: Materialization, scale: f64) -> Arm {
    let config = CampaignConfig::new(Year::Y2018, scale)
        .with_materialization(materialization)
        .with_telemetry(false);
    let campaign = Campaign::new(config);
    let baseline = reset_peak();
    let start = Instant::now();
    let result = campaign.run().expect("bench campaign runs");
    let elapsed = start.elapsed().as_secs_f64();
    let peak_bytes = peak_above(baseline);
    let events = result.net_stats().events;
    Arm {
        peak_bytes,
        events,
        events_per_sec: events as f64 / elapsed,
        r2: result.dataset().r2(),
        render: result.render(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Scale is a divisor: 20k ≈ 325 responders, 200 ≈ 32.5k, 1.0 = the
    // paper's full ~6.5M. Smoke runs only the 200 point.
    let compared_scales: &[f64] = if smoke { &[200.0] } else { &[200.0, 20_000.0] };

    let mut entries = String::new();
    let mut ratio_at_20k = f64::INFINITY;
    for (i, &scale) in compared_scales.iter().enumerate() {
        let eager = run_arm(Materialization::Eager, scale);
        let lazy = run_arm(Materialization::Lazy, scale);
        assert_eq!(
            eager.render, lazy.render,
            "the two arms must render identical reports at scale {scale}"
        );
        let ratio = eager.peak_bytes as f64 / lazy.peak_bytes.max(1) as f64;
        if scale == 20_000.0 {
            ratio_at_20k = ratio;
        }
        eprintln!(
            "scale {scale:>7}: r2={:>8}  eager peak {:>12} B  lazy peak {:>12} B  ({ratio:.1}x)  \
             eager {:>10.0} ev/s  lazy {:>10.0} ev/s",
            lazy.r2, eager.peak_bytes, lazy.peak_bytes, eager.events_per_sec, lazy.events_per_sec
        );
        if i > 0 {
            entries.push_str(",\n");
        }
        // Both arms process the identical event stream (same count, same
        // order), so the events/sec pair is a like-for-like throughput
        // comparison: lazy must not pay for its materialization checks.
        entries.push_str(&format!(
            "    {{\n      \"scale\": {scale},\n      \"r2\": {},\n      \
             \"eager_peak_live_bytes\": {},\n      \
             \"lazy_peak_live_bytes\": {},\n      \
             \"eager_over_lazy\": {ratio:.2},\n      \
             \"events\": {},\n      \
             \"eager_events_per_sec\": {:.0},\n      \
             \"lazy_events_per_sec\": {:.0}\n    }}",
            lazy.r2,
            eager.peak_bytes,
            lazy.peak_bytes,
            lazy.events,
            eager.events_per_sec,
            lazy.events_per_sec
        ));
        assert_eq!(eager.events, lazy.events, "identical event streams");
    }

    if smoke {
        // CI liveness check: exercise everything, commit nothing.
        let json = format!(
            "{{\n  \"bench\": \"scale_memory\",\n  \"smoke\": true,\n  \"scales\": [\n{entries}\n  ]\n}}\n"
        );
        eprintln!("{json}");
        return;
    }

    assert!(
        ratio_at_20k >= 5.0,
        "lazy materialization must hold peak live bytes at least 5x below \
         the eager path at scale 20k (got {ratio_at_20k:.2}x)"
    );

    // The paper-scale point: the full 2018 population, lazy-only (the
    // eager path at this scale is the multi-gigabyte blowup the
    // optimisation removes).
    let full = run_arm(Materialization::Lazy, 1.0);
    eprintln!(
        "scale     1.0: r2={:>8}  lazy peak {:>12} B  {:>10.0} ev/s ({} events)",
        full.r2, full.peak_bytes, full.events_per_sec, full.events
    );
    const GIB: usize = 1 << 30;
    assert!(
        full.peak_bytes <= 2 * GIB,
        "the full-scale campaign must fit in 2 GiB of live heap \
         (got {} bytes)",
        full.peak_bytes
    );
    entries.push_str(&format!(
        ",\n    {{\n      \"scale\": 1.0,\n      \"r2\": {},\n      \
         \"lazy_peak_live_bytes\": {},\n      \
         \"events\": {},\n      \
         \"lazy_events_per_sec\": {:.0}\n    }}",
        full.r2, full.peak_bytes, full.events, full.events_per_sec
    ));

    let json = format!(
        "{{\n  \"bench\": \"scale_memory\",\n  \"smoke\": false,\n  \
         \"metric\": \"peak live bytes above baseline and events/sec over full Campaign::run \
         (2018, streaming analysis)\",\n  \"scales\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json).expect("write BENCH_scale.json");
    eprintln!("wrote {path}");
}
