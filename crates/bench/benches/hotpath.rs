//! Hot-path microbenchmarks for the three subsystems rebuilt in the
//! scheduler/slab/codec overhaul, written to `BENCH_hotpath.json` at the
//! repo root:
//!
//! - **Scheduler**: raw event-queue push+pop throughput under the
//!   timing wheel vs the reference binary heap, at campaign-density
//!   arrival times (events/sec; the wheel's win is the headline
//!   number). A timer-saturated full-`SimNet` drain rides along as the
//!   end-to-end figure, where per-event dispatch (endpoint detachment,
//!   stats, telemetry) dilutes the queue's share of the cost.
//! - **Codec**: `Message::encode_into` through a reused scratch buffer
//!   vs the allocating `Message::encode` (encodes/sec and, via a
//!   counting global allocator, allocations per encoded message — the
//!   reuse path must show zero in steady state).
//!
//! Not a criterion harness: the deliverable is the JSON artifact.
//! `--smoke` shrinks the workload for CI liveness checks.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use orscope_dns_wire::{Message, Question, RData, Record};
use orscope_netsim::scheduler::RawQueue;
use orscope_netsim::{Context, Datagram, Endpoint, SchedulerKind, SimNet, SimTime};

/// System allocator wrapper counting every allocation (reallocs included:
/// each is a fresh backing acquisition on the measured path).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Ignores everything; the simulator's own event machinery is the load.
struct Sink;

impl Endpoint for Sink {
    fn handle_datagram(&mut self, _dgram: &Datagram, _ctx: &mut Context<'_>) {}
}

/// Raw queue throughput: pushes `timers` events scattered over a window
/// matching campaign event density (~100k events per simulated second,
/// i.e. ~100 per wheel tick), then pops them all. Returns events per
/// wall-clock second; both push and pop sit on the campaign hot path.
///
/// This isolates the scheduler: no endpoint dispatch, no stats, no RNG.
/// At 400k resident events the heap's O(log n) sift walks ~19 levels of
/// an out-of-cache array per pop, while the wheel files and drains each
/// event through a handful of slot moves regardless of population.
fn raw_queue_events_per_sec(kind: SchedulerKind, timers: u64) -> f64 {
    let mut queue = RawQueue::new(kind);
    let horizon_nanos = timers * 10_000; // 100k events/sec of virtual time
    let mut x = 0x243F_6A88_85A3_08D3u64;
    let start = Instant::now();
    for _ in 0..timers {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        queue.push(SimTime::from_nanos(x % horizon_nanos));
    }
    let mut popped = 0u64;
    while let Some(event) = queue.pop() {
        std::hint::black_box(event);
        popped += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(popped, timers, "every event pops exactly once");
    timers as f64 / elapsed
}

/// Arms `timers` pseudo-randomly over one simulated hour and drains the
/// queue, returning events per wall-clock second (arming included: both
/// push and pop sit on the campaign hot path).
fn scheduler_events_per_sec(kind: SchedulerKind, timers: u64) -> f64 {
    let mut net = SimNet::builder().seed(1).scheduler(kind).build();
    let host = Ipv4Addr::new(10, 0, 0, 1);
    net.register(host, Sink);
    let mut x = 0x243F_6A88_85A3_08D3u64;
    let start = Instant::now();
    for token in 0..timers {
        // xorshift64: scattered, duplicate-heavy arrival times.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        net.set_timer_for(host, SimTime::from_nanos(x % 3_600_000_000_000), token);
    }
    net.run_until_idle();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(net.stats().events, timers, "every timer fires exactly once");
    timers as f64 / elapsed
}

/// A representative R1: question echoed, A answer, NS authority, glue.
fn sample_response() -> Message {
    let qname = "or000.0000042.ucfsealresearch.net";
    let query = Message::query(0xCAFE, Question::a(qname.parse().unwrap()));
    Message::builder()
        .response_to(&query)
        .authoritative(true)
        .answer(Record::in_class(
            qname.parse().unwrap(),
            60,
            RData::A(Ipv4Addr::new(10, 42, 0, 1)),
        ))
        .authority(Record::in_class(
            "ucfsealresearch.net".parse().unwrap(),
            3600,
            RData::Ns("ns1.ucfsealresearch.net".parse().unwrap()),
        ))
        .additional(Record::in_class(
            "ns1.ucfsealresearch.net".parse().unwrap(),
            3600,
            RData::A(Ipv4Addr::new(45, 77, 1, 1)),
        ))
        .build()
}

/// (encodes/sec, allocations per encode) for the scratch-reuse path.
fn bench_encode_into(msg: &Message, iters: u64) -> (f64, f64) {
    let mut scratch = Vec::with_capacity(512);
    msg.encode_into(&mut scratch).expect("warmup encode");
    let before = allocs();
    let start = Instant::now();
    for _ in 0..iters {
        msg.encode_into(&mut scratch).expect("encode");
        std::hint::black_box(scratch.len());
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocated = allocs() - before;
    (iters as f64 / elapsed, allocated as f64 / iters as f64)
}

/// Same figures for the allocating pre-overhaul entry point.
fn bench_encode_fresh(msg: &Message, iters: u64) -> (f64, f64) {
    let before = allocs();
    let start = Instant::now();
    for _ in 0..iters {
        let wire = msg.encode().expect("encode");
        std::hint::black_box(wire.len());
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocated = allocs() - before;
    (iters as f64 / elapsed, allocated as f64 / iters as f64)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let timers: u64 = if smoke { 20_000 } else { 400_000 };
    let encode_iters: u64 = if smoke { 20_000 } else { 1_000_000 };
    let runs: u32 = if smoke { 1 } else { 3 };

    let mut heap_eps = 0f64;
    let mut wheel_eps = 0f64;
    let mut e2e_heap_eps = 0f64;
    let mut e2e_wheel_eps = 0f64;
    for _ in 0..runs {
        heap_eps = heap_eps.max(raw_queue_events_per_sec(SchedulerKind::Heap, timers));
        wheel_eps = wheel_eps.max(raw_queue_events_per_sec(SchedulerKind::Wheel, timers));
        e2e_heap_eps = e2e_heap_eps.max(scheduler_events_per_sec(SchedulerKind::Heap, timers));
        e2e_wheel_eps = e2e_wheel_eps.max(scheduler_events_per_sec(SchedulerKind::Wheel, timers));
    }
    let speedup = wheel_eps / heap_eps;
    let e2e_speedup = e2e_wheel_eps / e2e_heap_eps;
    eprintln!(
        "scheduler (raw queue): heap={heap_eps:>12.0} ev/s  wheel={wheel_eps:>12.0} ev/s  ({speedup:.2}x)"
    );
    eprintln!(
        "scheduler (end-to-end): heap={e2e_heap_eps:>12.0} ev/s  wheel={e2e_wheel_eps:>12.0} ev/s  ({e2e_speedup:.2}x)"
    );

    let msg = sample_response();
    let mut into_eps = 0f64;
    let mut into_allocs = f64::INFINITY;
    let mut fresh_eps = 0f64;
    let mut fresh_allocs = f64::INFINITY;
    for _ in 0..runs {
        let (eps, apo) = bench_encode_into(&msg, encode_iters);
        into_eps = into_eps.max(eps);
        into_allocs = into_allocs.min(apo);
        let (eps, apo) = bench_encode_fresh(&msg, encode_iters);
        fresh_eps = fresh_eps.max(eps);
        fresh_allocs = fresh_allocs.min(apo);
    }
    eprintln!(
        "encode: into={into_eps:>12.0}/s ({into_allocs:.3} allocs/op)  \
         fresh={fresh_eps:>12.0}/s ({fresh_allocs:.3} allocs/op)"
    );

    // Hand-formatted JSON: the artifact is small and flat, and manual
    // formatting keeps the bench free of serializer noise in the counts.
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"smoke\": {smoke},\n  \"scheduler\": {{\n    \
         \"timers\": {timers},\n    \"runs\": {runs},\n    \
         \"heap_events_per_sec\": {heap_eps:.0},\n    \
         \"wheel_events_per_sec\": {wheel_eps:.0},\n    \
         \"wheel_speedup\": {speedup:.2},\n    \
         \"end_to_end_heap_events_per_sec\": {e2e_heap_eps:.0},\n    \
         \"end_to_end_wheel_events_per_sec\": {e2e_wheel_eps:.0},\n    \
         \"end_to_end_wheel_speedup\": {e2e_speedup:.2}\n  }},\n  \"encode\": {{\n    \
         \"iters\": {encode_iters},\n    \"message\": \"R1: 1 question + 3 records\",\n    \
         \"encode_into_per_sec\": {into_eps:.0},\n    \
         \"encode_into_allocs_per_op\": {into_allocs:.3},\n    \
         \"encode_fresh_per_sec\": {fresh_eps:.0},\n    \
         \"encode_fresh_allocs_per_op\": {fresh_allocs:.3}\n  }}\n}}\n"
    );
    if smoke {
        // CI liveness check: exercise everything, commit nothing.
        eprintln!("{json}");
        assert_eq!(into_allocs, 0.0, "scratch-reuse encode must not allocate");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, json).expect("write BENCH_hotpath.json");
    eprintln!("wrote {path}");
}
