//! Regenerates every table and in-text figure of the paper's evaluation
//! and writes the paper-vs-measured report.
//!
//! ```sh
//! cargo run --release -p orscope-bench --bin make_tables \
//!     [--shards N] [--telemetry OUT.jsonl] [--prometheus OUT.prom] \
//!     [SCALE] [OUT.json] [OUT.md]
//! ```
//!
//! `SCALE` defaults to 500 (both scans finish in a few seconds); the
//! optional JSON path receives the machine-readable comparison and the
//! optional markdown path the EXPERIMENTS-style tables.
//!
//! `--telemetry` writes the merged campaign telemetry as JSON lines
//! (one metric per line, tagged with the scan year). The global-scope
//! metrics in that export are byte-identical for every `--shards`
//! value. `--prometheus` writes the full dump — including shard-scope
//! diagnostics and phase spans — in Prometheus text format.

use orscope_core::{Campaign, CampaignConfig};
use orscope_resolver::paper::Year;

/// Pulls `--name value` out of `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let index = args.iter().position(|a| a == name)?;
    if index + 1 >= args.len() {
        panic!("{name} needs a value");
    }
    args.remove(index);
    Some(args.remove(index))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let shards: usize = take_flag(&mut args, "--shards")
        .map(|s| s.parse().expect("--shards must be an integer"))
        .unwrap_or(1);
    let telemetry_path = take_flag(&mut args, "--telemetry");
    let prometheus_path = take_flag(&mut args, "--prometheus");
    let mut args = args.into_iter();
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("SCALE must be a number"))
        .unwrap_or(500.0);
    let json_path = args.next();
    let markdown_path = args.next();

    // The two scans are independent simulations: run them in parallel.
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = Year::ALL
            .into_iter()
            .map(|year| {
                scope.spawn(move || {
                    let started = std::time::Instant::now();
                    let config = CampaignConfig::new(year, scale).with_shards(shards);
                    let result = Campaign::new(config).run().unwrap();
                    eprintln!(
                        "[{year}] simulated {} probes, {} responses in {:?}",
                        result.dataset().q1,
                        result.dataset().r2(),
                        started.elapsed()
                    );
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign thread"))
            .collect()
    });
    let mut json_years = Vec::new();
    let mut markdown = String::new();
    for result in &results {
        println!("{}", result.render());
        json_years.push(result.to_json());
        markdown.push_str(&format!("\n### {} scan\n", result.spec().year));
        for report in result.table_reports() {
            markdown.push_str(&report.to_markdown());
        }
    }

    if let Some(path) = json_path {
        let blob = serde_json::json!({ "scale": scale, "years": json_years });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&blob).expect("serializable"),
        )
        .expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = markdown_path {
        std::fs::write(&path, markdown).expect("write markdown");
        eprintln!("wrote {path}");
    }
    if let Some(path) = telemetry_path {
        let mut out = String::new();
        for result in &results {
            let snapshot = result.telemetry().expect("telemetry on by default");
            let year = u64::from(result.spec().year.as_u16());
            out.push_str(&snapshot.to_jsonl_tagged(&[("year", year)]));
        }
        std::fs::write(&path, out).expect("write telemetry jsonl");
        eprintln!("wrote {path}");
    }
    if let Some(path) = prometheus_path {
        let mut out = String::new();
        for result in &results {
            let snapshot = result.telemetry().expect("telemetry on by default");
            let year = result.spec().year.as_u16().to_string();
            out.push_str(&snapshot.to_prometheus_labeled(&[("year", &year)]));
        }
        std::fs::write(&path, out).expect("write prometheus dump");
        eprintln!("wrote {path}");
    }
}
