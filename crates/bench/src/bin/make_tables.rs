//! Regenerates every table and in-text figure of the paper's evaluation
//! and writes the paper-vs-measured report.
//!
//! ```sh
//! cargo run --release -p orscope-bench --bin make_tables [SCALE] [OUT.json] [OUT.md]
//! ```
//!
//! `SCALE` defaults to 500 (both scans finish in a few seconds); the
//! optional JSON path receives the machine-readable comparison and the
//! optional markdown path the EXPERIMENTS-style tables.

use orscope_core::{Campaign, CampaignConfig};
use orscope_resolver::paper::Year;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("SCALE must be a number"))
        .unwrap_or(500.0);
    let json_path = args.next();
    let markdown_path = args.next();

    // The two scans are independent simulations: run them in parallel.
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = Year::ALL
            .into_iter()
            .map(|year| {
                scope.spawn(move || {
                    let started = std::time::Instant::now();
                    let result = Campaign::new(CampaignConfig::new(year, scale)).run();
                    eprintln!(
                        "[{year}] simulated {} probes, {} responses in {:?}",
                        result.dataset().q1,
                        result.dataset().r2(),
                        started.elapsed()
                    );
                    result
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("campaign thread")).collect()
    });
    let mut json_years = Vec::new();
    let mut markdown = String::new();
    for result in &results {
        println!("{}", result.render());
        json_years.push(result.to_json());
        markdown.push_str(&format!("\n### {} scan\n", result.spec().year));
        for report in result.table_reports() {
            markdown.push_str(&report.to_markdown());
        }
    }

    if let Some(path) = json_path {
        let blob = serde_json::json!({ "scale": scale, "years": json_years });
        std::fs::write(&path, serde_json::to_string_pretty(&blob).expect("serializable"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = markdown_path {
        std::fs::write(&path, markdown).expect("write markdown");
        eprintln!("wrote {path}");
    }
}
