#![warn(missing_docs)]
//! Shared fixtures for the benchmark harness.
//!
//! Every `benches/table*.rs` target regenerates one of the paper's
//! tables; this crate provides the campaign fixtures they benchmark
//! against, built once per process.

use std::sync::OnceLock;

use orscope_core::{AnalysisMode, Campaign, CampaignConfig, CampaignResult};
use orscope_resolver::paper::Year;

/// Scale used by the per-table benches: fine enough that every table is
/// populated, fast enough to build in well under a second.
pub const BENCH_SCALE: f64 = 2_000.0;

/// A completed 2018 campaign, built once. Runs in batch mode: the
/// per-table benches time the record-fold generators, which need the
/// classified records the streaming default discards at capture time.
pub fn campaign_2018() -> &'static CampaignResult {
    static RESULT: OnceLock<CampaignResult> = OnceLock::new();
    RESULT.get_or_init(|| {
        Campaign::new(
            CampaignConfig::new(Year::Y2018, BENCH_SCALE).with_analysis(AnalysisMode::Batch),
        )
        .run()
        .unwrap()
    })
}

/// A completed 2013 campaign, built once (batch mode, as above).
pub fn campaign_2013() -> &'static CampaignResult {
    static RESULT: OnceLock<CampaignResult> = OnceLock::new();
    RESULT.get_or_init(|| {
        Campaign::new(
            CampaignConfig::new(Year::Y2013, BENCH_SCALE).with_analysis(AnalysisMode::Batch),
        )
        .run()
        .unwrap()
    })
}

/// Runs a fresh (non-cached) campaign; used by the pipeline benches
/// that measure the scan itself.
pub fn run_campaign(year: Year, scale: f64) -> CampaignResult {
    Campaign::new(CampaignConfig::new(year, scale))
        .run()
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(campaign_2018().dataset().r2() > 1_000);
        assert!(campaign_2013().dataset().r2() > campaign_2018().dataset().r2());
    }
}
