//! Churn determinism suite: the observatory's published documents are a
//! pure function of `(seed, config)` — invariant across shard counts
//! and across a kill-and-resume boundary — and the per-epoch transition
//! matrix conserves the population.

use std::path::PathBuf;

use orscope_observe::{EpochSabotage, Observatory, ServeConfig};
use orscope_resolver::paper::Year;

const EPOCHS: u64 = 4;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "orscope-determinism-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(label: &str, shards: usize, epochs: u64) -> ServeConfig {
    let mut config = ServeConfig::new(Year::Y2018, 60_000.0);
    config.seed = 0x0B5E_2018;
    config.shards = shards;
    config.epochs = Some(epochs);
    config.state_dir = scratch(label);
    config
}

/// Runs to the epoch limit and returns the exact `/tables` and
/// `/trends` bytes the HTTP surface would serve.
fn run(config: ServeConfig) -> (Vec<u8>, Vec<u8>) {
    let state_dir = config.state_dir.clone();
    let mut observatory = Observatory::new(config).unwrap();
    let shared = observatory.shared();
    observatory.run().unwrap();
    let documents = (shared.tables_bytes(), shared.trends_bytes());
    std::fs::remove_dir_all(&state_dir).unwrap();
    documents
}

#[test]
fn tables_and_trends_are_shard_invariant() {
    let (tables_1, trends_1) = run(config("shards1", 1, EPOCHS));
    let (tables_2, trends_2) = run(config("shards2", 2, EPOCHS));
    let (tables_4, trends_4) = run(config("shards4", 4, EPOCHS));
    assert!(!trends_1.is_empty());
    assert_eq!(tables_1, tables_2, "tables: 1 vs 2 shards");
    assert_eq!(tables_1, tables_4, "tables: 1 vs 4 shards");
    assert_eq!(trends_1, trends_2, "trends: 1 vs 2 shards");
    assert_eq!(trends_1, trends_4, "trends: 1 vs 4 shards");
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run() {
    let (straight_tables, straight_trends) = run(config("straight", 2, EPOCHS));

    // Same config, stopped halfway: the final-epoch checkpoint flushed
    // at exit carries the epoch state forward. The second config gets
    // its own label: `config` scrubs its scratch path, and the resumed
    // run must not scrub the state it is resuming.
    let dir = scratch("resumed");
    let mut first_half = config("resumed", 2, EPOCHS / 2);
    first_half.state_dir = dir.clone();
    let report = Observatory::new(first_half).unwrap().run().unwrap();
    assert_eq!(report.epochs_completed, EPOCHS / 2);
    assert_eq!(report.resumed_from, None);

    let mut second_half = config("resumed-continue", 2, EPOCHS);
    second_half.state_dir = dir.clone();
    let mut resumed = Observatory::new(second_half).unwrap();
    let shared = resumed.shared();
    let report = resumed.run().unwrap();
    assert_eq!(report.resumed_from, Some(EPOCHS / 2));
    assert_eq!(report.epochs_completed, EPOCHS);

    assert_eq!(
        shared.tables_bytes(),
        straight_tables,
        "resumed /tables bytes differ from the uninterrupted run"
    );
    assert_eq!(
        shared.trends_bytes(),
        straight_trends,
        "resumed /trends bytes differ from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_survives_a_shard_count_change() {
    // Shard invariance means a checkpoint written at 1 shard may resume
    // at 4 shards and still match the straight 4-shard run.
    let (straight_tables, _) = run(config("reshard-straight", 4, EPOCHS));

    let dir = scratch("reshard");
    let mut first = config("reshard", 1, EPOCHS / 2);
    first.state_dir = dir.clone();
    Observatory::new(first).unwrap().run().unwrap();

    let mut second = config("reshard-continue", 4, EPOCHS);
    second.state_dir = dir.clone();
    let mut resumed = Observatory::new(second).unwrap();
    let shared = resumed.shared();
    let report = resumed.run().unwrap();
    assert_eq!(report.resumed_from, Some(EPOCHS / 2), "actually resumed");
    assert_eq!(shared.tables_bytes(), straight_tables);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn transition_matrix_conserves_population_and_shows_churn() {
    let mut observatory = Observatory::new(config("conservation", 1, EPOCHS)).unwrap();
    let shared = observatory.shared();
    observatory.run().unwrap();
    let tables = shared.tables_snapshot();
    assert_eq!(tables.epochs().len() as u64, EPOCHS);
    for row in tables.epochs() {
        assert_eq!(
            row.transitions.total(),
            row.population,
            "epoch {}: every current member lands in exactly one matrix cell",
            row.epoch
        );
        let class_total: u64 = row.class_counts.values().sum();
        assert_eq!(class_total, row.population, "epoch {}", row.epoch);
    }
    // Epoch 0 is pure arrival; later epochs actually churn.
    assert_eq!(tables.epochs()[0].leaves, 0);
    let churned: u64 = tables
        .epochs()
        .iter()
        .skip(1)
        .map(|row| row.joins + row.leaves + row.drifts)
        .sum();
    assert!(churned > 0, "default churn rates must move members");
    std::fs::remove_dir_all(&observatory.config().state_dir).unwrap();
}

#[test]
fn degraded_epochs_are_shard_invariant_and_conserve_population() {
    // Epoch 1 sabotaged past its retry: it degrades. The degraded row
    // must be identical whatever the shard layout was — its bytes carry
    // no failure text, its members land in the `skip` pseudo-row.
    let sabotaged = |label: &str, shards: usize| {
        let mut config = config(label, shards, EPOCHS);
        config.sabotage = Some(EpochSabotage {
            epoch: 1,
            failures: 2, // attempt + retry both fail
        });
        config
    };
    let mut one = Observatory::new(sabotaged("degraded1", 1)).unwrap();
    let shared_one = one.shared();
    let report_one = one.run().unwrap();
    let mut two = Observatory::new(sabotaged("degraded2", 2)).unwrap();
    let shared_two = two.shared();
    let report_two = two.run().unwrap();

    assert_eq!(report_one.epochs_degraded, 1);
    assert_eq!(report_two.epochs_degraded, 1);
    let tables = shared_one.tables_snapshot();
    assert_eq!(
        tables,
        shared_two.tables_snapshot(),
        "degraded runs diverge across shard counts"
    );
    assert_eq!(shared_one.tables_bytes(), shared_two.tables_bytes());
    assert_eq!(shared_one.trends_bytes(), shared_two.trends_bytes());

    // The degraded row conserves population and admits no scan claims.
    let row = &tables.epochs()[1];
    assert!(row.degraded);
    assert_eq!(row.r2, 0, "no scan backs a degraded epoch");
    assert_eq!(row.transitions.total(), row.population, "conserved");
    assert_eq!(row.transitions.moved(), 0, "skips claim no movement");
    assert!(!tables.epochs()[0].degraded);
    assert!(
        !tables.epochs()[2].degraded,
        "run continued past the failure"
    );
    assert_eq!(tables.totals().epochs_degraded, 1);
    std::fs::remove_dir_all(&one.config().state_dir).unwrap();
    std::fs::remove_dir_all(&two.config().state_dir).unwrap();
}

#[test]
fn one_transient_failure_is_invisible_after_the_identical_seed_retry() {
    let (clean_tables, clean_trends) = run(config("retry-clean", 2, EPOCHS));
    let mut flaky = config("retry-flaky", 2, EPOCHS);
    flaky.sabotage = Some(EpochSabotage {
        epoch: 1,
        failures: 1, // first attempt fails, the retry succeeds
    });
    let mut observatory = Observatory::new(flaky).unwrap();
    let shared = observatory.shared();
    let report = observatory.run().unwrap();
    assert_eq!(report.epochs_degraded, 0, "the retry absorbed the failure");
    assert_eq!(
        shared.tables_bytes(),
        clean_tables,
        "a retried epoch must be byte-identical to a clean one"
    );
    assert_eq!(shared.trends_bytes(), clean_trends);
    assert!(!shared.tables_snapshot().epochs()[1].degraded);
    std::fs::remove_dir_all(&observatory.config().state_dir).unwrap();
}

#[test]
fn an_impossible_epoch_deadline_degrades_every_epoch_shard_invariantly() {
    // One virtual second per round: no campaign finishes, every epoch
    // degrades — and the tables still agree across shard counts.
    let strangled = |label: &str, shards: usize| {
        let mut config = config(label, shards, EPOCHS);
        config.epoch_deadline_virtual_secs = Some(1);
        config
    };
    let mut one = Observatory::new(strangled("deadline1", 1)).unwrap();
    let shared_one = one.shared();
    let report = one.run().unwrap();
    assert_eq!(
        report.epochs_degraded, EPOCHS,
        "every round blew the budget"
    );
    let mut two = Observatory::new(strangled("deadline2", 2)).unwrap();
    let shared_two = two.shared();
    two.run().unwrap();
    assert_eq!(shared_one.tables_snapshot(), shared_two.tables_snapshot());
    for row in shared_one.tables_snapshot().epochs() {
        assert!(row.degraded, "epoch {}", row.epoch);
        assert_eq!(
            row.transitions.total(),
            row.population,
            "epoch {}",
            row.epoch
        );
    }
    std::fs::remove_dir_all(&one.config().state_dir).unwrap();
    std::fs::remove_dir_all(&two.config().state_dir).unwrap();
}

#[test]
fn a_generous_deadline_changes_nothing() {
    let (clean_tables, _) = run(config("roomy-clean", 2, EPOCHS));
    let mut roomy = config("roomy", 2, EPOCHS);
    // A year of virtual time per one-day round: never fires. The
    // fingerprint differs (the deadline is part of the run identity),
    // but the produced tables must not.
    roomy.epoch_deadline_virtual_secs = Some(365 * 86_400);
    let mut observatory = Observatory::new(roomy).unwrap();
    let shared = observatory.shared();
    let report = observatory.run().unwrap();
    assert_eq!(report.epochs_degraded, 0);
    assert_eq!(shared.tables_bytes(), clean_tables);
    std::fs::remove_dir_all(&observatory.config().state_dir).unwrap();
}
