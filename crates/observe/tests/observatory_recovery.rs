//! Corruption-recovery suite: whatever happens to the state dir —
//! truncation, bit-flips, emptied files, every generation destroyed —
//! resume either converges to the exact state of a never-interrupted
//! run or refuses loudly. Silent divergence is the one outcome that
//! must be impossible.

use std::fs;
use std::path::{Path, PathBuf};

use orscope_observe::{Observatory, ObservatoryCheckpoint, RollingTables, ServeConfig, ServeError};
use orscope_resolver::paper::Year;

const EPOCHS: u64 = 4;
const HALF: u64 = EPOCHS / 2;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orscope-recovery-{label}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(label: &str, epochs: u64) -> ServeConfig {
    let mut config = ServeConfig::new(Year::Y2018, 60_000.0);
    config.seed = 0x5EC0_7E57;
    config.shards = 2;
    config.epochs = Some(epochs);
    config.checkpoint_every = 1; // one generation per epoch
    config.keep_generations = 8; // keep them all at this run length
    config.state_dir = scratch(label);
    config
}

/// The full-run rolling state an uninterrupted run converges to —
/// compared via deep equality, so the assertion is meaningful even
/// where serialized documents are not available.
fn straight_run(label: &str) -> RollingTables {
    let mut observatory = Observatory::new(config(label, EPOCHS)).unwrap();
    let shared = observatory.shared();
    observatory.run().unwrap();
    let tables = shared.tables_snapshot();
    fs::remove_dir_all(&observatory.config().state_dir).unwrap();
    tables
}

/// Runs the first `upto` epochs, leaving generations 1..=upto on disk,
/// and returns the state dir.
fn partial_run(label: &str, upto: u64) -> PathBuf {
    let partial = config(label, upto);
    let dir = partial.state_dir.clone();
    let report = Observatory::new(partial).unwrap().run().unwrap();
    assert_eq!(report.epochs_completed, upto);
    for generation in 1..=upto {
        assert!(
            dir.join(ObservatoryCheckpoint::generation_name(generation))
                .exists(),
            "generation {generation} missing after the partial run"
        );
    }
    dir
}

/// Resumes in `dir` to the full run length and returns the final state
/// plus the run report's quarantine list.
fn resume(label: &str, dir: &Path) -> (RollingTables, Vec<PathBuf>, Option<u64>) {
    // The label must differ from the partial run's: `config` scrubs its
    // own scratch path, and the resumed run must not scrub `dir`.
    let mut full = config(&format!("{label}-resume"), EPOCHS);
    full.state_dir = dir.to_path_buf();
    let mut observatory = Observatory::new(full).unwrap();
    let shared = observatory.shared();
    let report = observatory.run().unwrap();
    (
        shared.tables_snapshot(),
        report.quarantined,
        report.resumed_from,
    )
}

fn generation_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(ObservatoryCheckpoint::generation_name(generation))
}

#[test]
fn truncation_at_every_quarter_rolls_back_and_converges() {
    let straight = straight_run("trunc-straight");
    for (label, quarter) in [("q1", 1), ("q2", 2), ("q3", 3)] {
        let label = format!("trunc-{label}");
        let dir = partial_run(&label, HALF);
        let newest = generation_path(&dir, HALF);
        let mut bytes = fs::read(&newest).unwrap();
        bytes.truncate(bytes.len() * quarter / 4);
        fs::write(&newest, bytes).unwrap();

        let (tables, quarantined, resumed_from) = resume(&label, &dir);
        assert_eq!(quarantined.len(), 1, "{label}: one rollback");
        assert_eq!(
            resumed_from,
            Some(HALF - 1),
            "{label}: resumed from the next older generation"
        );
        assert_eq!(
            tables, straight,
            "{label}: post-recovery state diverged from the uninterrupted run"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn bit_flips_in_header_and_body_both_quarantine() {
    let straight = straight_run("flip-straight");
    // Offset 3 lands inside the envelope magic; a late offset lands in
    // the payload. Either way the generation must not verify.
    for (label, from_end) in [("header", false), ("body", true)] {
        let label = format!("flip-{label}");
        let dir = partial_run(&label, HALF);
        let newest = generation_path(&dir, HALF);
        let mut bytes = fs::read(&newest).unwrap();
        let offset = if from_end { bytes.len() - 4 } else { 3 };
        bytes[offset] ^= 0x20;
        fs::write(&newest, bytes).unwrap();

        let (tables, quarantined, _) = resume(&label, &dir);
        assert_eq!(quarantined.len(), 1, "{label}");
        assert!(
            quarantined[0].to_string_lossy().contains(".corrupt"),
            "{label}: quarantined file keeps the evidence"
        );
        assert!(quarantined[0].exists(), "{label}: preserved, not deleted");
        assert_eq!(tables, straight, "{label}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn emptied_file_and_digest_mismatch_roll_back_together() {
    // Generation 3 emptied, generation 2 with a forged digest:
    // recovery walks back over both to the oldest intact generation.
    let straight = straight_run("multi-straight");
    let dir = partial_run("multi", 3);
    fs::write(generation_path(&dir, 3), b"").unwrap();
    let older = generation_path(&dir, 2);
    let mut bytes = fs::read(&older).unwrap();
    // Rewrite the digest hex in the sealed header: the envelope stays
    // well-formed, but the digest no longer matches the payload.
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
    let header = String::from_utf8(bytes[..header_end].to_vec()).unwrap();
    let mut parts: Vec<&str> = header.split(' ').collect();
    let forged = if parts[2].starts_with('0') {
        "1deadbeefdeadbee"
    } else {
        "0deadbeefdeadbee"
    };
    parts[2] = forged;
    let forged_header = parts.join(" ");
    bytes.splice(..header_end, forged_header.into_bytes());
    fs::write(&older, bytes).unwrap();

    let (tables, quarantined, resumed_from) = resume("multi", &dir);
    assert_eq!(quarantined.len(), 2, "both bad generations quarantined");
    assert_eq!(
        resumed_from,
        Some(1),
        "rolled all the way back to generation 1"
    );
    assert_eq!(tables, straight);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_generation_corrupt_is_a_hard_error_not_a_silent_restart() {
    let dir = partial_run("all-corrupt", HALF);
    for generation in 1..=HALF {
        fs::write(generation_path(&dir, generation), b"garbage").unwrap();
    }
    let mut full = config("all-corrupt-resume", EPOCHS);
    full.state_dir = dir.clone();
    match Observatory::new(full).unwrap().run() {
        Err(ServeError::CorruptState(reason)) => {
            assert!(
                reason.contains("quarantined"),
                "error should tell the operator where the evidence went: {reason}"
            );
        }
        other => panic!("expected CorruptState, got {other:?}"),
    }
    // The evidence is preserved on disk.
    let corrupt_files = fs::read_dir(&dir)
        .unwrap()
        .filter(|entry| {
            entry
                .as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .contains(".corrupt")
        })
        .count();
    assert_eq!(corrupt_files as u64, HALF);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stray_staging_files_are_not_generations() {
    let straight = straight_run("stray-straight");
    let dir = partial_run("stray", HALF);
    // A .tmp left by a crash mid-write and unrelated litter must be
    // ignored, not parsed, not quarantined.
    fs::write(dir.join("checkpoint-00000009.ckpt.tmp"), b"torn write").unwrap();
    fs::write(dir.join("notes.txt"), b"operator scribbles").unwrap();

    let (tables, quarantined, resumed_from) = resume("stray", &dir);
    assert!(quarantined.is_empty(), "nothing real was corrupt");
    assert_eq!(resumed_from, Some(HALF));
    assert_eq!(tables, straight);
    assert!(dir.join("notes.txt").exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn state_path_under_a_file_fails_fast_with_a_clear_error() {
    let blocker = scratch("blocker-file");
    fs::create_dir_all(blocker.parent().unwrap()).unwrap();
    fs::write(&blocker, b"i am a file").unwrap();
    let mut config = config("under-file", EPOCHS);
    config.state_dir = blocker.join("state");
    match Observatory::new(config).unwrap().run() {
        Err(ServeError::StateDir(reason)) => {
            assert!(!reason.is_empty(), "the error must name the problem");
        }
        other => panic!("expected StateDir, got {other:?}"),
    }
    fs::remove_file(&blocker).unwrap();
}
