//! End-to-end serve test: the HTTP surface answers while epochs run,
//! the documents it serves match the shared state, and shutdown is
//! graceful.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use orscope_observe::{http, Observatory, ServeConfig};
use orscope_resolver::paper::Year;

fn get(addr: SocketAddr, path: &str) -> (String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8(response[..split].to_vec()).unwrap();
    (head, response[split + 4..].to_vec())
}

#[test]
fn serves_live_documents_while_epochs_run_then_shuts_down_cleanly() {
    let mut config = ServeConfig::new(Year::Y2018, 60_000.0);
    config.epochs = Some(3);
    // A small wall-clock pause per epoch so the surface is observably
    // live *during* the run, not only after it.
    config.interval = Duration::from_millis(50);
    config.state_dir =
        std::env::temp_dir().join(format!("orscope-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&config.state_dir);
    let state_dir = config.state_dir.clone();

    let mut observatory = Observatory::new(config).unwrap();
    let shared = observatory.shared();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let surface = http::serve(listener, shared.clone()).unwrap();
    let addr = surface.addr();
    let scheduler = std::thread::spawn(move || observatory.run());

    // Poll /healthz until the final epoch lands (epoch rounds at this
    // scale take well under the deadline). The probe body is the
    // hand-formatted liveness document; a field scraper keeps this test
    // free of any JSON deserializer.
    let field = |body: &str, name: &str| -> String {
        body.lines()
            .find_map(|line| {
                line.trim()
                    .strip_prefix(&format!("\"{name}\": "))
                    .map(str::to_owned)
            })
            .unwrap_or_else(|| panic!("{name} missing from probe body:\n{body}"))
            .trim_end_matches(',')
            .to_owned()
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_midrun_health = false;
    loop {
        assert!(Instant::now() < deadline, "epochs never completed");
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let body = String::from_utf8(body).unwrap();
        let epochs: u64 = field(&body, "epochs_completed").parse().unwrap();
        if epochs > 0 && epochs < 3 && field(&body, "status") == "\"ok\"" {
            // With at least one clean epoch absorbed and nothing
            // degraded, the surface is ready, not merely alive.
            let (ready_head, ready_body) = get(addr, "/readyz");
            assert!(ready_head.starts_with("HTTP/1.1 200"), "{ready_head}");
            let ready_body = String::from_utf8(ready_body).unwrap();
            assert_eq!(field(&ready_body, "ready"), "true");
            assert_eq!(field(&ready_body, "state"), "\"ready\"");
            saw_midrun_health = true;
        }
        if epochs >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        saw_midrun_health,
        "surface must answer between epochs, not only at the end"
    );

    let report = scheduler.join().unwrap().unwrap();
    assert_eq!(report.epochs_completed, 3);

    // Served documents are exactly the shared state.
    let (head, tables) = get(addr, "/tables");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(tables, shared.tables_bytes());
    let (_, trends) = get(addr, "/trends");
    assert_eq!(trends, shared.trends_bytes());
    // The shared snapshot is the document's source of truth; assert on
    // it directly instead of re-parsing the rendered JSON.
    let snapshot = shared.tables_snapshot();
    assert_eq!(snapshot.epochs().len(), 3);
    assert!(snapshot.epochs().windows(2).count() >= 1, "deltas exist");

    let (_, metrics) = get(addr, "/metrics");
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(
        metrics.contains("orscope_observe_epochs_completed"),
        "{metrics}"
    );
    assert!(
        metrics.contains("surface=\"campaign\""),
        "campaign telemetry absorbed into /metrics"
    );

    // Lazy materialization surfaces on the service metrics: each round
    // touches every member once, but the peak number of *live* host
    // slots stays below the full membership — that gap is what lets a
    // serve run scale far past what eager registration could hold.
    let parse_gauge = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|line| line.starts_with(name))
            .and_then(|line| line.rsplit(' ').next())
            .and_then(|value| value.parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from /metrics:\n{metrics}"))
    };
    let materialized = parse_gauge("orscope_observe_materialized_hosts");
    let population = parse_gauge("orscope_observe_population");
    assert!(materialized >= 1.0, "lazy rounds materialize hosts");
    assert!(
        materialized < population,
        "peak live hosts ({materialized}) must stay below membership ({population})"
    );

    // Graceful shutdown: accept loop exits, checkpoint was flushed.
    shared.request_shutdown();
    surface.join();
    assert!(report.checkpoint_path.exists());
    std::fs::remove_dir_all(&state_dir).unwrap();
}
