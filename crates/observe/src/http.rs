//! The live query/export surface: a hand-rolled, hardened HTTP/1.1
//! server.
//!
//! Six read-only GET endpoints over [`ObservatoryShared`]:
//!
//! | path       | body                                                |
//! |------------|-----------------------------------------------------|
//! | `/healthz` | scheduler liveness + epochs completed (JSON)        |
//! | `/readyz`  | readiness: 200 only when serving clean data (JSON)  |
//! | `/tables`  | latest epoch + cumulative transitions (JSON)        |
//! | `/trends`  | per-epoch series + consecutive deltas (JSON)        |
//! | `/metrics` | service + campaign telemetry (Prometheus text)      |
//! | `/tap`     | live capture-record stream (chunked NDJSON)         |
//!
//! `/tap` is the odd one out: instead of a snapshot body it subscribes
//! a bounded lane on the shared [`RecordBus`] and streams matching
//! records for as long as the client stays connected (`?match=` takes a
//! predicate, `?limit=` caps the line count). It still runs inside the
//! same per-connection thread, counted against `max_connections`, and
//! its writes are bounded by `write_timeout` — a stalled tap client is
//! disconnected, never waited on.
//!
//! [`RecordBus`]: orscope_core::RecordBus
//!
//! Deliberately minimal — `std::net::TcpListener`, a nonblocking accept
//! loop polling the shutdown flag, one short-lived thread per
//! connection, `Connection: close` on every response. No keep-alive, no
//! TLS, no routing table: the whole server is small enough to audit in
//! one sitting, and the repo's no-new-dependencies rule holds.
//!
//! Minimal is not naive, though. An unattended serve must survive the
//! open internet's background radiation, so every connection runs under
//! [`HttpConfig`] limits: a total deadline on reading the request head
//! (slow-loris drip-feeding gets `408` and a counter tick, not a pinned
//! thread), a bounded head size (`431`), a bounded declared body
//! (`413` — every endpoint is a GET), and a concurrent-connection cap
//! (`503` + `Retry-After` instead of unbounded thread spawn). Malformed
//! request lines get `400`, non-GET methods `405` with `Allow: GET`.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use orscope_core::{Infra, TapPredicate, TapSubscriber, DEFAULT_TAP_CAPACITY};

use crate::observatory::ObservatoryShared;

/// Hard limits and timeouts for the serve surface. The defaults suit an
/// unattended long-run; tests shrink them to exercise the rejection
/// paths deterministically.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Per-`read(2)` timeout while collecting the request head.
    pub read_timeout: Duration,
    /// Per-`write(2)` timeout while sending the response.
    pub write_timeout: Duration,
    /// Total wall-clock budget for the *whole* request head. A client
    /// dripping one byte per read-timeout never exhausts a thread: the
    /// head deadline fires and the connection gets `408`.
    pub head_deadline: Duration,
    /// Largest request head we accept (`431` beyond it); GETs are a few
    /// hundred bytes, so anything near this is garbage or abuse.
    pub max_head_bytes: usize,
    /// Largest declared `Content-Length` we accept (`413` beyond it).
    /// Every endpoint is a GET, so the default is zero tolerance.
    pub max_body_bytes: u64,
    /// Concurrent connections served; the accept loop answers `503`
    /// with `Retry-After` beyond this instead of spawning unboundedly.
    pub max_connections: usize,
    /// The `Retry-After` hint (seconds) sent with `503`.
    pub retry_after_secs: u64,
    /// How long the accept loop sleeps when idle before re-polling the
    /// socket and the shutdown flag. Smaller = snappier shutdown,
    /// larger = fewer wakeups.
    pub poll_interval: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            head_deadline: Duration::from_secs(5),
            max_head_bytes: 8 * 1024,
            max_body_bytes: 0,
            max_connections: 64,
            retry_after_secs: 1,
            poll_interval: Duration::from_millis(10),
        }
    }
}

/// A running HTTP surface.
pub struct HttpHandle {
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl HttpHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the accept loop to exit (it does so shortly after
    /// [`ObservatoryShared::request_shutdown`]).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Starts serving `shared` on `listener` with default [`HttpConfig`]
/// limits.
///
/// # Errors
///
/// Propagates [`serve_with`] failures.
pub fn serve(listener: TcpListener, shared: Arc<ObservatoryShared>) -> io::Result<HttpHandle> {
    serve_with(listener, shared, HttpConfig::default())
}

/// Starts serving `shared` on `listener` in a background thread with
/// explicit limits. The accept loop runs until shutdown is requested on
/// `shared`.
///
/// # Errors
///
/// Fails if the listener cannot be switched to nonblocking mode (the
/// accept loop doubles as the shutdown poller, so it must not block).
pub fn serve_with(
    listener: TcpListener,
    shared: Arc<ObservatoryShared>,
    config: HttpConfig,
) -> io::Result<HttpHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let thread = thread::spawn(move || accept_loop(&listener, &shared, &config));
    Ok(HttpHandle { addr, thread })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ObservatoryShared>, config: &HttpConfig) {
    let active = Arc::new(AtomicUsize::new(0));
    while !shared.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                if active.load(Ordering::SeqCst) >= config.max_connections {
                    // Over the cap: turn the connection away cheaply on
                    // a transient thread so the accept loop never
                    // blocks on a slow victim.
                    shared.record_http_rejected();
                    let retry_after = config.retry_after_secs;
                    let write_timeout = config.write_timeout;
                    thread::spawn(move || reject_over_capacity(stream, retry_after, write_timeout));
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let active = active.clone();
                let shared = shared.clone();
                let config = config.clone();
                thread::spawn(move || {
                    let _ = handle_connection(stream, &shared, &config);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(config.poll_interval);
            }
            // Transient accept errors (ECONNABORTED and friends): back
            // off briefly and keep serving.
            Err(_) => thread::sleep(config.poll_interval),
        }
    }
}

fn reject_over_capacity(mut stream: TcpStream, retry_after_secs: u64, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let body = b"{\"error\":\"too many connections\"}\n";
    let head = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body));
    lingering_close(&mut stream, write_timeout);
}

/// Closes a connection whose request we did not fully read. Closing
/// with unread bytes queued makes the kernel send `RST`, which can
/// destroy the response before the client reads it — so the status code
/// we went to the trouble of sending (`503`, `431`, ...) would never
/// arrive. Shut down our write side first, then drain (bounded) what
/// the client is still sending, and only then let the socket drop.
fn lingering_close(stream: &mut TcpStream, timeout: Duration) {
    const DRAIN_LIMIT: usize = 64 * 1024;
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(timeout));
    let mut sink = [0u8; 1024];
    let mut drained = 0usize;
    while drained < DRAIN_LIMIT {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// How reading a request head failed.
enum HeadError {
    /// The client dribbled past the head deadline (or a read timed
    /// out): slow loris.
    TimedOut,
    /// The head outgrew the limit.
    TooLarge,
    /// Not decodable as a request head at all.
    Malformed,
    /// The connection died; nothing to answer.
    Gone,
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &ObservatoryShared,
    config: &HttpConfig,
) -> io::Result<()> {
    // Accepted sockets don't inherit the listener's nonblocking mode on
    // every platform; force blocking-with-timeouts explicitly.
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let head = match read_head(&mut stream, config) {
        Ok(head) => head,
        Err(failure) => {
            let (status, body): (&str, &[u8]) = match failure {
                HeadError::TimedOut => {
                    shared.record_http_timeout();
                    (
                        "408 Request Timeout",
                        b"{\"error\":\"request head too slow\"}\n",
                    )
                }
                HeadError::TooLarge => (
                    "431 Request Header Fields Too Large",
                    b"{\"error\":\"request head too large\"}\n",
                ),
                HeadError::Malformed => ("400 Bad Request", b"{\"error\":\"malformed request\"}\n"),
                HeadError::Gone => return Ok(()),
            };
            // The request was never fully read on these paths, so a
            // plain close would RST the response away — linger instead.
            let result = write_response(&mut stream, status, "application/json", "", body);
            lingering_close(&mut stream, config.write_timeout);
            return result;
        }
    };
    shared.record_http_request();
    // `/tap` streams instead of answering with a snapshot body; route
    // it before `respond`. Only a well-formed in-limits GET takes the
    // streaming path — anything else falls through so `respond` can
    // issue the usual 405/413 taxonomy.
    if let Some(query) = tap_query(&head, config) {
        return stream_tap(stream, &query, shared, config);
    }
    let (status, content_type, extra_headers, body) = respond(&head, shared, config);
    let result = write_response(&mut stream, status, content_type, extra_headers, &body);
    // A declared body is never read (every endpoint is a GET), so those
    // connections need the same RST-avoiding linger.
    if declared_body_len(&head).unwrap_or(0) > 0 {
        lingering_close(&mut stream, config.write_timeout);
    }
    result
}

/// Reads until the end of the request head (we ignore bodies: every
/// endpoint is a GET), under both a per-read timeout and a total
/// deadline.
fn read_head(stream: &mut TcpStream, config: &HttpConfig) -> Result<String, HeadError> {
    let started = Instant::now();
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let remaining = config
            .head_deadline
            .checked_sub(started.elapsed())
            .ok_or(HeadError::TimedOut)?;
        stream
            .set_read_timeout(Some(
                remaining
                    .min(config.read_timeout)
                    .max(Duration::from_millis(1)),
            ))
            .map_err(|_| HeadError::Gone)?;
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                // A per-read timeout inside the deadline just means the
                // client is slow; loop and let the deadline decide.
                if started.elapsed() >= config.head_deadline {
                    return Err(HeadError::TimedOut);
                }
                continue;
            }
            Err(_) => return Err(HeadError::Gone),
        };
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > config.max_head_bytes {
            return Err(HeadError::TooLarge);
        }
    }
    if head.is_empty() {
        return Err(HeadError::Gone);
    }
    String::from_utf8(head).map_err(|_| HeadError::Malformed)
}

/// The declared `Content-Length`, if any header carries one.
fn declared_body_len(head: &str) -> Option<u64> {
    head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("content-length")
            .then(|| value.trim().parse().ok())?
    })
}

/// If `head` is a well-formed, in-limits `GET /tap` request, returns
/// its raw query string (possibly empty). Everything else returns
/// `None` and takes the ordinary [`respond`] path.
fn tap_query(head: &str, config: &HttpConfig) -> Option<String> {
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" || !target.starts_with('/') {
        return None;
    }
    if declared_body_len(head).is_some_and(|len| len > config.max_body_bytes) {
        return None;
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    (path == "/tap").then(|| query.to_string())
}

/// Decodes `%XX` escapes and `+`-for-space in a query-string value.
/// Invalid escapes pass through literally — the predicate parser will
/// reject anything that does not make sense.
fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3])
                    .ok()
                    .and_then(|pair| u8::from_str_radix(pair, 16).ok());
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            byte => {
                out.push(byte);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses the `/tap` query parameters: `match=` (predicate, default
/// match-all) and `limit=` (stop after N lines, default unbounded).
fn parse_tap_params(query: &str) -> Result<(TapPredicate, Option<u64>), String> {
    let mut predicate = TapPredicate::match_all();
    let mut limit = None;
    for pair in query.split('&').filter(|pair| !pair.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        let value = percent_decode(value);
        match key {
            "match" => {
                predicate = value
                    .parse()
                    .map_err(|err: orscope_core::PredicateError| err.0)?;
            }
            "limit" => {
                limit =
                    Some(value.parse::<u64>().map_err(|_| {
                        format!("limit must be a non-negative integer, got {value:?}")
                    })?);
            }
            other => {
                return Err(format!(
                    "unknown parameter {other:?} (expected match, limit)"
                ))
            }
        }
    }
    Ok((predicate, limit))
}

/// Minimal JSON string escaping for error bodies that echo user input.
fn json_escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out
}

/// One HTTP/1.1 chunk: hex length, CRLF, payload, CRLF.
fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")
}

/// Idle interval after which the tap stream emits a blank NDJSON line.
/// Keeps the stream visibly alive for the client and — more importantly
/// — makes the server notice a vanished client during quiet stretches
/// instead of holding the lane until the next matching record.
const TAP_HEARTBEAT: Duration = Duration::from_secs(5);

/// Serves one `GET /tap` connection: subscribes a bounded lane on the
/// shared bus and streams matching records as chunked NDJSON until the
/// client leaves, the limit is reached, or shutdown is requested.
///
/// The subscriber lane is bounded ([`DEFAULT_TAP_CAPACITY`]) and the
/// publisher never blocks on it, so however slow this connection is,
/// the campaign event loop is unaffected — the lane just drops and
/// counts. Writes here are bounded by `write_timeout`; a stalled client
/// errors out and the lane is reclaimed on the next publish.
fn stream_tap(
    mut stream: TcpStream,
    query: &str,
    shared: &ObservatoryShared,
    config: &HttpConfig,
) -> io::Result<()> {
    let (predicate, limit) = match parse_tap_params(query) {
        Ok(parsed) => parsed,
        Err(message) => {
            let body = format!("{{\"error\":\"{}\"}}\n", json_escape(&message));
            let result = write_response(
                &mut stream,
                "400 Bad Request",
                "application/json",
                "",
                body.as_bytes(),
            );
            lingering_close(&mut stream, config.write_timeout);
            return result;
        }
    };
    let tap = TapSubscriber::attach(
        shared.bus(),
        predicate,
        DEFAULT_TAP_CAPACITY,
        &Infra::default(),
    );
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
          Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    )?;
    let mut sent = 0u64;
    let mut last_write = Instant::now();
    while !shared.shutdown_requested() && limit.is_none_or(|limit| sent < limit) {
        match tap.poll(config.poll_interval.max(Duration::from_millis(1))) {
            Some(event) => {
                // One chunk per line: `to_ndjson` has no trailing
                // newline, the NDJSON framing adds it here.
                let mut line = event.to_ndjson();
                line.push('\n');
                write_chunk(&mut stream, line.as_bytes())?;
                last_write = Instant::now();
                sent += 1;
            }
            None if last_write.elapsed() >= TAP_HEARTBEAT => {
                write_chunk(&mut stream, b"\n")?;
                last_write = Instant::now();
            }
            None => {}
        }
    }
    // Terminal chunk: the stream ended on our terms (limit or
    // shutdown), so tell the client the body is complete.
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Routes one request to `(status line, content type, extra headers,
/// body)`.
fn respond(
    head: &str,
    shared: &ObservatoryShared,
    config: &HttpConfig,
) -> (&'static str, &'static str, &'static str, Vec<u8>) {
    const JSON: &str = "application/json";
    const PROM: &str = "text/plain; version=0.0.4";
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    // Strip any query string: `/tap` (with its `match=`/`limit=`
    // parameters) is routed upstream, the snapshot endpoints take no
    // parameters, and `/tables?pretty` should not 404.
    let target = parts.next().unwrap_or("");
    let path = target.split('?').next().unwrap_or("");
    if method.is_empty() || !target.starts_with('/') {
        return (
            "400 Bad Request",
            JSON,
            "",
            b"{\"error\":\"malformed request line\"}\n".to_vec(),
        );
    }
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            JSON,
            "Allow: GET\r\n",
            b"{\"error\":\"only GET is supported\"}\n".to_vec(),
        );
    }
    if declared_body_len(head).is_some_and(|len| len > config.max_body_bytes) {
        return (
            "413 Content Too Large",
            JSON,
            "",
            b"{\"error\":\"GET endpoints take no body\"}\n".to_vec(),
        );
    }
    match path {
        "/healthz" => ("200 OK", JSON, "", shared.healthz_bytes()),
        "/readyz" => {
            let status = if shared.is_ready() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, JSON, "", shared.readyz_bytes())
        }
        "/tables" => ("200 OK", JSON, "", shared.tables_bytes()),
        "/trends" => ("200 OK", JSON, "", shared.trends_bytes()),
        "/metrics" => ("200 OK", PROM, "", shared.metrics_bytes()),
        "/" => (
            "200 OK",
            JSON,
            "",
            b"{\"endpoints\":[\"/healthz\",\"/readyz\",\"/tables\",\"/trends\",\"/metrics\",\"/tap\"]}\n"
                .to_vec(),
        ),
        _ => (
            "404 Not Found",
            JSON,
            "",
            b"{\"error\":\"unknown path\"}\n".to_vec(),
        ),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn serves_every_endpoint_then_shuts_down() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let addr = handle.addr();

        let healthz = get(addr, "/healthz");
        assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
        assert!(healthz.contains("epochs_completed"), "{healthz}");

        let tables = get(addr, "/tables?pretty");
        assert!(tables.starts_with("HTTP/1.1 200 OK"), "query string ok");
        assert!(tables.contains("cumulative_transitions"), "{tables}");

        let trends = get(addr, "/trends");
        assert!(trends.contains("\"series\""), "{trends}");

        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("orscope_observe_http_requests"),
            "{metrics}"
        );
        assert!(metrics.contains("surface=\"service\""), "{metrics}");

        let index = get(addr, "/");
        assert!(index.contains("/tables"), "{index}");
        assert!(index.contains("/readyz"), "{index}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let post = request(
            addr,
            "POST /tables HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        assert!(post.contains("Allow: GET"), "{post}");

        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn content_length_matches_body() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let response = get(handle.addr(), "/healthz");
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let length: usize = head
            .lines()
            .find_map(|line| line.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(length, body.len());
        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn readyz_is_unready_until_the_scheduler_says_otherwise() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let addr = handle.addr();

        // Fresh shared state: Starting, not ready — but healthz is a
        // liveness probe and answers 200 regardless.
        let readyz = get(addr, "/readyz");
        assert!(readyz.starts_with("HTTP/1.1 503"), "{readyz}");
        assert!(readyz.contains("\"state\": \"starting\""), "{readyz}");

        shared.set_state(crate::observatory::ServiceState::Ready);
        let readyz = get(addr, "/readyz");
        assert!(readyz.starts_with("HTTP/1.1 200"), "{readyz}");
        assert!(readyz.contains("\"ready\": true"), "{readyz}");

        shared.set_state(crate::observatory::ServiceState::Degraded);
        let readyz = get(addr, "/readyz");
        assert!(readyz.starts_with("HTTP/1.1 503"), "{readyz}");
        assert!(readyz.contains("\"state\": \"degraded\""), "{readyz}");

        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn oversized_head_gets_431() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = HttpConfig {
            max_head_bytes: 256,
            ..HttpConfig::default()
        };
        let handle = serve_with(listener, shared.clone(), config).unwrap();
        let huge = format!(
            "GET /healthz HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(4096)
        );
        let response = request(handle.addr(), &huge);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn declared_body_gets_413() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let response = request(
            handle.addr(),
            "GET /tables HTTP/1.1\r\nHost: test\r\nContent-Length: 4096\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let response = request(handle.addr(), "COMPLETE GARBAGE\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn slow_loris_gets_408_and_a_counter_tick() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = HttpConfig {
            head_deadline: Duration::from_millis(150),
            read_timeout: Duration::from_millis(50),
            ..HttpConfig::default()
        };
        let handle = serve_with(listener, shared.clone(), config).unwrap();

        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Send an incomplete head and then just... wait.
        stream.write_all(b"GET /heal").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        let metrics = String::from_utf8(shared.metrics_bytes()).unwrap();
        assert!(
            metrics.contains(r#"orscope_observe_http_timeouts{surface="service",scope="shard"} 1"#),
            "{metrics}"
        );

        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn tap_streams_matching_records_as_chunked_ndjson() {
        use orscope_core::bus::R2Capture;
        use orscope_netsim::SimTime;

        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let addr = handle.addr();

        // Publish once the tap handler has actually subscribed its
        // lane, so nothing can be lost to startup ordering.
        let publisher = {
            let shared = shared.clone();
            thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(5);
                while shared.bus().stats().subscribers == 0 {
                    assert!(Instant::now() < deadline, "tap never subscribed");
                    thread::sleep(Duration::from_millis(5));
                }
                shared.bus().publish_r2(&R2Capture {
                    target: "198.51.100.7".parse().unwrap(),
                    label: None,
                    qname: "probe.example".parse().unwrap(),
                    at: SimTime::ZERO,
                    sent_at: SimTime::ZERO,
                    payload: b"x".to_vec().into(),
                });
            })
        };

        // `limit=1` ends the stream after the first matching record, so
        // a plain read-to-close sees the whole chunked body.
        let response = get(addr, "/tap?match=qname%3Dprobe.*&limit=1");
        publisher.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("Transfer-Encoding: chunked"),
            "{response}"
        );
        assert!(response.contains("\"kind\":\"r2\""), "{response}");
        assert!(response.contains("\"src\":\"198.51.100.7\""), "{response}");
        assert!(
            response.contains("\"qname\":\"probe.example\""),
            "{response}"
        );
        // The terminal chunk closed the body cleanly.
        assert!(response.ends_with("0\r\n\r\n"), "{response}");

        let metrics = String::from_utf8(shared.metrics_bytes()).unwrap();
        assert!(
            metrics.contains("orscope_tap_subscribers_total{surface=\"service\"} 1"),
            "{metrics}"
        );

        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn tap_rejects_a_bad_predicate_with_400() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let addr = handle.addr();

        let bad_clause = get(addr, "/tap?match=frobnicate%3Dyes");
        assert!(bad_clause.starts_with("HTTP/1.1 400"), "{bad_clause}");

        let bad_limit = get(addr, "/tap?limit=soon");
        assert!(bad_limit.starts_with("HTTP/1.1 400"), "{bad_limit}");

        let bad_param = get(addr, "/tap?matcher=x");
        assert!(bad_param.starts_with("HTTP/1.1 400"), "{bad_param}");

        // A bad predicate must not leave a lane behind.
        assert_eq!(shared.bus().stats().attached_total, 0);

        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn connection_flood_gets_503_with_retry_after() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = HttpConfig {
            max_connections: 0, // every connection is over the cap
            retry_after_secs: 7,
            ..HttpConfig::default()
        };
        let handle = serve_with(listener, shared.clone(), config).unwrap();
        let response = get(handle.addr(), "/tables");
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(response.contains("Retry-After: 7"), "{response}");
        let metrics = String::from_utf8(shared.metrics_bytes()).unwrap();
        assert!(
            metrics.contains(
                r#"orscope_observe_http_rejected_conns{surface="service",scope="shard"} 1"#
            ),
            "{metrics}"
        );
        shared.request_shutdown();
        handle.join();
    }
}
