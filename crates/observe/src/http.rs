//! The live query/export surface: a hand-rolled HTTP/1.1 server.
//!
//! Four read-only GET endpoints over [`ObservatoryShared`]:
//!
//! | path       | body                                                |
//! |------------|-----------------------------------------------------|
//! | `/healthz` | scheduler liveness + epochs completed (JSON)        |
//! | `/tables`  | latest epoch + cumulative transitions (JSON)        |
//! | `/trends`  | per-epoch series + consecutive deltas (JSON)        |
//! | `/metrics` | service + campaign telemetry (Prometheus text)      |
//!
//! Deliberately minimal — `std::net::TcpListener`, a nonblocking accept
//! loop polling the shutdown flag, one short-lived thread per
//! connection, `Connection: close` on every response. No keep-alive, no
//! TLS, no routing table: the whole server is small enough to audit in
//! one sitting, and the repo's no-new-dependencies rule holds.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::observatory::ObservatoryShared;

/// Largest request head we accept; GETs are a few hundred bytes, so
/// anything near this is garbage or abuse.
const MAX_HEAD: usize = 8 * 1024;

/// A running HTTP surface.
pub struct HttpHandle {
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl HttpHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the accept loop to exit (it does so shortly after
    /// [`ObservatoryShared::request_shutdown`]).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Starts serving `shared` on `listener` in a background thread. The
/// accept loop runs until shutdown is requested on `shared`.
///
/// # Errors
///
/// Fails if the listener cannot be switched to nonblocking mode (the
/// accept loop doubles as the shutdown poller, so it must not block).
pub fn serve(listener: TcpListener, shared: Arc<ObservatoryShared>) -> io::Result<HttpHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let thread = thread::spawn(move || accept_loop(&listener, &shared));
    Ok(HttpHandle { addr, thread })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ObservatoryShared>) {
    while !shared.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                });
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            // Transient accept errors (ECONNABORTED and friends): back
            // off briefly and keep serving.
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &ObservatoryShared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(_) => return Ok(()), // slow loris or junk: just drop it
    };
    shared.record_http_request();
    let (status, content_type, body) = respond(&head, shared);
    write_response(&mut stream, status, content_type, &body)
}

/// Reads until the end of the request head (we ignore bodies: every
/// endpoint is a GET).
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    String::from_utf8(head).map_err(|_| io::ErrorKind::InvalidData.into())
}

/// Routes one request to `(status line, content type, body)`.
fn respond(head: &str, shared: &ObservatoryShared) -> (&'static str, &'static str, Vec<u8>) {
    const JSON: &str = "application/json";
    const PROM: &str = "text/plain; version=0.0.4";
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    // Strip any query string: the surface has no parameters (yet), and
    // `/tables?pretty` should not 404.
    let path = parts.next().unwrap_or("").split('?').next().unwrap_or("");
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            JSON,
            b"{\"error\":\"only GET is supported\"}\n".to_vec(),
        );
    }
    match path {
        "/healthz" => ("200 OK", JSON, shared.healthz_bytes()),
        "/tables" => ("200 OK", JSON, shared.tables_bytes()),
        "/trends" => ("200 OK", JSON, shared.trends_bytes()),
        "/metrics" => ("200 OK", PROM, shared.metrics_bytes()),
        "/" => (
            "200 OK",
            JSON,
            b"{\"endpoints\":[\"/healthz\",\"/tables\",\"/trends\",\"/metrics\"]}\n".to_vec(),
        ),
        _ => (
            "404 Not Found",
            JSON,
            b"{\"error\":\"unknown path\"}\n".to_vec(),
        ),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn serves_every_endpoint_then_shuts_down() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let addr = handle.addr();

        let healthz = get(addr, "/healthz");
        assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
        assert!(healthz.contains("epochs_completed"), "{healthz}");

        let tables = get(addr, "/tables?pretty");
        assert!(tables.starts_with("HTTP/1.1 200 OK"), "query string ok");
        assert!(tables.contains("cumulative_transitions"), "{tables}");

        let trends = get(addr, "/trends");
        assert!(trends.contains("\"series\""), "{trends}");

        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("orscope_observe_http_requests"),
            "{metrics}"
        );
        assert!(metrics.contains("surface=\"service\""), "{metrics}");

        let index = get(addr, "/");
        assert!(index.contains("/tables"), "{index}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let post = request(
            addr,
            "POST /tables HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");

        shared.request_shutdown();
        handle.join();
    }

    #[test]
    fn content_length_matches_body() {
        let shared = ObservatoryShared::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = serve(listener, shared.clone()).unwrap();
        let response = get(handle.addr(), "/healthz");
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let length: usize = head
            .lines()
            .find_map(|line| line.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(length, body.len());
        shared.request_shutdown();
        handle.join();
    }
}
