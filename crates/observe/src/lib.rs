#![warn(missing_docs)]
//! The resolver observatory: rolling campaigns over a churning
//! population, with a live HTTP query/export surface.
//!
//! The paper is two snapshots — 2013 and 2018 — and its sharpest
//! finding is what moved *between* them: 60% of the population gone,
//! honest resolution collapsing, NXDOMAIN walls and redirection rising.
//! This crate turns the repo's batch campaign machinery into the
//! instrument that could have watched that happen: a long-running
//! service that re-scans a *churning* population every virtual day and
//! publishes the trend tables incrementally.
//!
//! The pieces, each its own module:
//!
//! - [`resolve`] — population discovery as a membership-update stream
//!   ([`Resolve`]/[`Resolution`]/[`Update`], after linkerd2-proxy's
//!   resolver traits).
//! - [`churn`] — the built-in seeded [`ChurnModel`]: joins, leaves, and
//!   profile drift as a pure function of the seed.
//! - [`observatory`] — the supervised epoch scheduler: apply churn, run
//!   a campaign round on the shared sharded/streaming infrastructure
//!   (retrying once and degrading — never dying — on a failed round),
//!   absorb the result into rolling tables.
//! - [`series`] — the rolling time-series state: per-epoch
//!   classification counts, the profile-transition matrix (including
//!   the `skip` pseudo-row that conserves population through degraded
//!   epochs), trend deltas.
//! - [`state`] — checkpoint generations: integrity-sealed, fsynced
//!   snapshots; resume quarantines corrupt generations, rolls back to
//!   the newest verified one, fast-forwards churn, and continues
//!   byte-identically.
//! - [`http`] — the hand-rolled, hardened HTTP surface: `/healthz`,
//!   `/readyz`, `/tables`, `/trends`, `/metrics` under explicit
//!   [`HttpConfig`] limits.
//!
//! # Quick start
//!
//! ```
//! use std::net::TcpListener;
//! use orscope_observe::{http, Observatory, ServeConfig};
//! use orscope_resolver::paper::Year;
//!
//! let mut config = ServeConfig::new(Year::Y2018, 60_000.0);
//! config.epochs = Some(2); // two virtual days, then stop
//! config.state_dir = std::env::temp_dir().join("orscope-doc-serve");
//! # std::fs::remove_dir_all(&config.state_dir).ok(); // stale state from prior doc runs
//! let mut observatory = Observatory::new(config).unwrap();
//!
//! // Serve the live surface while epochs run.
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let surface = http::serve(listener, observatory.shared()).unwrap();
//!
//! let report = observatory.run().unwrap();
//! assert_eq!(report.epochs_completed, 2);
//!
//! observatory.shared().request_shutdown();
//! surface.join();
//! # std::fs::remove_dir_all(observatory.config().state_dir.clone()).ok();
//! ```

pub mod churn;
pub(crate) mod codec;
pub mod http;
pub mod observatory;
pub mod resolve;
pub mod series;
pub mod state;

pub use churn::{ChurnConfig, ChurnModel, ChurnResolution};
pub use http::{serve, serve_with, HttpConfig, HttpHandle};
pub use observatory::{
    EpochSabotage, Observatory, ObservatoryShared, RunReport, ServeConfig, ServeError, ServiceState,
};
pub use resolve::{Resolution, Resolve, Update};
pub use series::{EpochRow, RollingTables, TransitionMatrix};
pub use state::{Fingerprint, ObservatoryCheckpoint, Recovery};
