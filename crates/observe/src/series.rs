//! Rolling time-series tables the observatory accumulates.
//!
//! Each epoch's campaign round is reduced to one [`EpochRow`] — the
//! classification counts the paper's tables track, plus the churn
//! bookkeeping (joins/leaves/drifts and a profile-transition matrix) —
//! and absorbed into [`RollingTables`], the single structure behind the
//! `/tables` and `/trends` endpoints and the serve checkpoint. Every
//! field is integer counts or ratios of them, serialized through
//! `serde_json` with fixed insertion order, so two observatories that
//! absorbed the same rows render byte-identical documents — the
//! property the shard-count and resume determinism suites assert.

use std::collections::BTreeMap;

use orscope_resolver::ProfileClass;
use serde::{Deserialize, Serialize};
use serde_json::{json, Map, Value};

/// Number of behavior classes a member can be in.
pub const N_CLASSES: usize = ProfileClass::ALL.len();

/// How members moved between behavior classes across one epoch (or
/// cumulatively). Rows are the previous-epoch class plus a `join`
/// pseudo-row for members that were not present last epoch; columns are
/// the current class. Every *current* member lands in exactly one cell,
/// so a per-epoch matrix totals to that epoch's population size — the
/// conservation law the determinism suite checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    counts: Vec<Vec<u64>>,
}

impl Default for TransitionMatrix {
    fn default() -> Self {
        Self {
            counts: vec![vec![0; N_CLASSES]; N_CLASSES + 1],
        }
    }
}

impl TransitionMatrix {
    /// Records one member that is now in `to`, coming from `from`
    /// (`None` = joined this epoch).
    pub fn record(&mut self, from: Option<ProfileClass>, to: ProfileClass) {
        let row = from.map_or(N_CLASSES, |class| class.index());
        self.counts[row][to.index()] += 1;
    }

    /// The count in one cell (`from: None` = the join pseudo-row).
    pub fn get(&self, from: Option<ProfileClass>, to: ProfileClass) -> u64 {
        self.counts[from.map_or(N_CLASSES, |class| class.index())][to.index()]
    }

    /// Sum over all cells — for a per-epoch matrix, the population size.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Members that changed class this epoch (off-diagonal, excluding
    /// joins).
    pub fn moved(&self) -> u64 {
        let mut moved = 0;
        for (row, cols) in self.counts.iter().take(N_CLASSES).enumerate() {
            for (col, &count) in cols.iter().enumerate() {
                if row != col {
                    moved += count;
                }
            }
        }
        moved
    }

    /// Adds `other`'s cells into this matrix.
    pub fn absorb(&mut self, other: &TransitionMatrix) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (cell, &add) in mine.iter_mut().zip(theirs) {
                *cell += add;
            }
        }
    }

    /// A labeled JSON rendering: `{"from_honest": {"honest": n, ...},
    /// ..., "join": {...}}`, rows and columns in [`ProfileClass::ALL`]
    /// order.
    pub fn to_json(&self) -> Value {
        let mut rows = Map::new();
        let row_json = |cols: &[u64]| {
            let mut row = Map::new();
            for (class, &count) in ProfileClass::ALL.iter().zip(cols) {
                row.insert(class.as_str().to_string(), json!(count));
            }
            Value::Object(row)
        };
        for (class, cols) in ProfileClass::ALL.iter().zip(&self.counts) {
            rows.insert(format!("from_{class}"), row_json(cols));
        }
        rows.insert("join".to_string(), row_json(&self.counts[N_CLASSES]));
        Value::Object(rows)
    }
}

/// One epoch's reduction: classification counts from the campaign round
/// plus the churn that produced this epoch's membership.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRow {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Virtual days since the observatory started, at epoch open.
    pub virtual_day: f64,
    /// Members scanned this epoch.
    pub population: u64,
    /// Members that joined at this epoch's open.
    pub joins: u64,
    /// Members that left at this epoch's open.
    pub leaves: u64,
    /// Members whose profile drifted at this epoch's open.
    pub drifts: u64,
    /// R2 responses classified this epoch (Table III total).
    pub r2: u64,
    /// R2 responses without an answer section.
    pub without_answer: u64,
    /// R2 responses with the correct answer.
    pub correct: u64,
    /// R2 responses with an incorrect answer.
    pub incorrect: u64,
    /// Incorrect as a percentage of answered (Table III err%).
    pub err_pct: f64,
    /// NXDOMAIN responses (Table VI row).
    pub nxdomain: u64,
    /// REFUSED responses (Table VI row).
    pub refused: u64,
    /// Answers matching the malicious threat DB (Table IX).
    pub malicious: u64,
    /// Current membership by behavior class.
    pub class_counts: BTreeMap<String, u64>,
    /// Class movement from the previous epoch.
    pub transitions: TransitionMatrix,
}

/// Whole-run accumulators.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Totals {
    /// Campaign rounds absorbed.
    pub epochs_completed: u64,
    /// R2 responses across all epochs.
    pub r2: u64,
    /// Incorrect answers across all epochs.
    pub incorrect: u64,
    /// Malicious answers across all epochs.
    pub malicious: u64,
    /// Join events across all epochs (excluding epoch 0's initial
    /// discovery, which is arrival, not churn).
    pub joins: u64,
    /// Leave events across all epochs.
    pub leaves: u64,
    /// Drift events across all epochs.
    pub drifts: u64,
}

/// The observatory's accumulated state: every absorbed epoch row, the
/// cumulative transition matrix, and run totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RollingTables {
    epochs: Vec<EpochRow>,
    cumulative: TransitionMatrix,
    totals: Totals,
}

impl RollingTables {
    /// Folds one epoch's reduction into the rolling state.
    pub fn absorb_epoch(&mut self, row: EpochRow) {
        self.cumulative.absorb(&row.transitions);
        self.totals.epochs_completed += 1;
        self.totals.r2 += row.r2;
        self.totals.incorrect += row.incorrect;
        self.totals.malicious += row.malicious;
        if row.epoch > 0 {
            self.totals.joins += row.joins;
        }
        self.totals.leaves += row.leaves;
        self.totals.drifts += row.drifts;
        self.epochs.push(row);
    }

    /// The most recently absorbed epoch.
    pub fn latest(&self) -> Option<&EpochRow> {
        self.epochs.last()
    }

    /// All absorbed epochs, in order.
    pub fn epochs(&self) -> &[EpochRow] {
        &self.epochs
    }

    /// Run totals.
    pub fn totals(&self) -> &Totals {
        &self.totals
    }

    /// The `/tables` document: the latest epoch in full, cumulative
    /// transitions, and run totals.
    pub fn tables_json(&self) -> Value {
        let latest = self.epochs.last();
        json!({
            "epochs_completed": self.totals.epochs_completed,
            "latest": latest.map(|row| json!({
                "epoch": row.epoch,
                "virtual_day": row.virtual_day,
                "population": row.population,
                "churn": {
                    "joins": row.joins,
                    "leaves": row.leaves,
                    "drifts": row.drifts,
                },
                "classification": {
                    "r2": row.r2,
                    "without_answer": row.without_answer,
                    "correct": row.correct,
                    "incorrect": row.incorrect,
                    "err_pct": row.err_pct,
                    "nxdomain": row.nxdomain,
                    "refused": row.refused,
                    "malicious": row.malicious,
                },
                "population_by_class": row.class_counts,
                "transitions": row.transitions.to_json(),
            })),
            "cumulative_transitions": self.cumulative.to_json(),
            "totals": {
                "r2": self.totals.r2,
                "incorrect": self.totals.incorrect,
                "malicious": self.totals.malicious,
                "joins": self.totals.joins,
                "leaves": self.totals.leaves,
                "drifts": self.totals.drifts,
            },
        })
    }

    /// The `/trends` document: the per-epoch series plus consecutive-
    /// epoch deltas of the headline numbers.
    pub fn trends_json(&self) -> Value {
        let series: Vec<Value> = self
            .epochs
            .iter()
            .map(|row| {
                json!({
                    "epoch": row.epoch,
                    "virtual_day": row.virtual_day,
                    "population": row.population,
                    "joins": row.joins,
                    "leaves": row.leaves,
                    "drifts": row.drifts,
                    "moved": row.transitions.moved(),
                    "r2": row.r2,
                    "incorrect": row.incorrect,
                    "err_pct": row.err_pct,
                    "malicious": row.malicious,
                    "population_by_class": row.class_counts,
                })
            })
            .collect();
        let deltas: Vec<Value> = self
            .epochs
            .windows(2)
            .map(|pair| {
                let (prev, next) = (&pair[0], &pair[1]);
                json!({
                    "epoch": next.epoch,
                    "population": next.population as i64 - prev.population as i64,
                    "r2": next.r2 as i64 - prev.r2 as i64,
                    "incorrect": next.incorrect as i64 - prev.incorrect as i64,
                    "err_pct": next.err_pct - prev.err_pct,
                    "malicious": next.malicious as i64 - prev.malicious as i64,
                })
            })
            .collect();
        json!({
            "epochs_completed": self.totals.epochs_completed,
            "series": series,
            "deltas": deltas,
        })
    }

    /// `/tables` as the exact bytes served (pretty JSON + newline).
    pub fn tables_bytes(&self) -> Vec<u8> {
        render(&self.tables_json())
    }

    /// `/trends` as the exact bytes served (pretty JSON + newline).
    pub fn trends_bytes(&self) -> Vec<u8> {
        render(&self.trends_json())
    }
}

fn render(value: &Value) -> Vec<u8> {
    let mut bytes = serde_json::to_string_pretty(value)
        .expect("tables are plain data")
        .into_bytes();
    bytes.push(b'\n');
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(epoch: u64, population: u64) -> EpochRow {
        let mut transitions = TransitionMatrix::default();
        for _ in 0..population {
            transitions.record(
                if epoch == 0 {
                    None
                } else {
                    Some(ProfileClass::Honest)
                },
                ProfileClass::Honest,
            );
        }
        EpochRow {
            epoch,
            virtual_day: epoch as f64,
            population,
            joins: if epoch == 0 { population } else { 2 },
            leaves: if epoch == 0 { 0 } else { 1 },
            drifts: 0,
            r2: population,
            without_answer: 1,
            correct: population.saturating_sub(2),
            incorrect: 1,
            err_pct: 1.0,
            nxdomain: 0,
            refused: 0,
            malicious: 1,
            class_counts: BTreeMap::from([("honest".to_string(), population)]),
            transitions,
        }
    }

    #[test]
    fn matrix_conserves_population() {
        let mut matrix = TransitionMatrix::default();
        matrix.record(None, ProfileClass::Honest);
        matrix.record(Some(ProfileClass::Honest), ProfileClass::Refusing);
        matrix.record(Some(ProfileClass::Refusing), ProfileClass::Refusing);
        assert_eq!(matrix.total(), 3);
        assert_eq!(matrix.moved(), 1, "one class change, joins excluded");
        assert_eq!(matrix.get(None, ProfileClass::Honest), 1);
        assert_eq!(
            matrix.get(Some(ProfileClass::Honest), ProfileClass::Refusing),
            1
        );
    }

    #[test]
    fn matrix_json_labels_every_cell() {
        let mut matrix = TransitionMatrix::default();
        matrix.record(Some(ProfileClass::Forwarder), ProfileClass::Silent);
        let value = matrix.to_json();
        assert_eq!(value["from_forwarder"]["silent"], json!(1));
        assert_eq!(value["join"]["honest"], json!(0));
        assert_eq!(
            value.as_object().unwrap().len(),
            N_CLASSES + 1,
            "one row per class plus the join pseudo-row"
        );
    }

    #[test]
    fn absorb_accumulates_totals_and_cumulative_matrix() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        tables.absorb_epoch(row(1, 11));
        assert_eq!(tables.totals().epochs_completed, 2);
        assert_eq!(tables.totals().r2, 21);
        assert_eq!(tables.totals().joins, 2, "epoch 0 arrival not counted");
        assert_eq!(tables.totals().leaves, 1);
        assert_eq!(tables.latest().unwrap().epoch, 1);
        let cumulative = tables.tables_json()["cumulative_transitions"].clone();
        assert_eq!(cumulative["join"]["honest"], json!(10));
        assert_eq!(cumulative["from_honest"]["honest"], json!(11));
    }

    #[test]
    fn rendering_is_deterministic_and_roundtrips() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        tables.absorb_epoch(row(1, 11));
        assert_eq!(tables.tables_bytes(), tables.tables_bytes());
        assert_eq!(tables.trends_bytes(), tables.trends_bytes());
        let encoded = serde_json::to_string(&tables).unwrap();
        let decoded: RollingTables = serde_json::from_str(&encoded).unwrap();
        assert_eq!(decoded, tables);
        assert_eq!(decoded.tables_bytes(), tables.tables_bytes());
    }

    #[test]
    fn trends_include_consecutive_deltas() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        tables.absorb_epoch(row(1, 8));
        let trends = tables.trends_json();
        assert_eq!(trends["series"].as_array().unwrap().len(), 2);
        let deltas = trends["deltas"].as_array().unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0]["population"], json!(-2));
    }
}
