//! Rolling time-series tables the observatory accumulates.
//!
//! Each epoch's campaign round is reduced to one [`EpochRow`] — the
//! classification counts the paper's tables track, plus the churn
//! bookkeeping (joins/leaves/drifts and a profile-transition matrix) —
//! and absorbed into [`RollingTables`], the single structure behind the
//! `/tables` and `/trends` endpoints and the serve checkpoint. Every
//! field is integer counts or ratios of them, serialized through
//! `serde_json` with fixed insertion order, so two observatories that
//! absorbed the same rows render byte-identical documents — the
//! property the shard-count and resume determinism suites assert.

use std::collections::BTreeMap;

use orscope_resolver::ProfileClass;
use serde::{Deserialize, Serialize};
use serde_json::{json, Map, Value};

use crate::codec::{count_map, Wire};

/// Number of behavior classes a member can be in.
pub const N_CLASSES: usize = ProfileClass::ALL.len();

/// Number of matrix rows: one per previous-epoch class, plus the `join`
/// and `skip` pseudo-rows.
pub const N_ROWS: usize = N_CLASSES + 2;

/// How members moved between behavior classes across one epoch (or
/// cumulatively). Rows are the previous-epoch class plus two
/// pseudo-rows: `join` for members that were not present last epoch,
/// and `skip` for members counted during a degraded epoch — one whose
/// campaign round failed under supervision, so no scan backs its
/// transitions. Columns are the current class. Every *current* member
/// lands in exactly one cell, so a per-epoch matrix totals to that
/// epoch's population size — the conservation law the determinism
/// suite checks, degraded epochs included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    counts: Vec<Vec<u64>>,
}

impl Default for TransitionMatrix {
    fn default() -> Self {
        Self {
            counts: vec![vec![0; N_CLASSES]; N_ROWS],
        }
    }
}

impl TransitionMatrix {
    /// Records one member that is now in `to`, coming from `from`
    /// (`None` = joined this epoch).
    pub fn record(&mut self, from: Option<ProfileClass>, to: ProfileClass) {
        let row = from.map_or(N_CLASSES, |class| class.index());
        self.counts[row][to.index()] += 1;
    }

    /// Records one member of a *degraded* epoch in the conserving
    /// `skip` pseudo-row: the member is present (so the population
    /// total stays honest) but no scan vouches for its transition.
    pub fn record_skip(&mut self, current: ProfileClass) {
        self.counts[N_CLASSES + 1][current.index()] += 1;
    }

    /// The count skipped into `to` during degraded epochs.
    pub fn get_skip(&self, to: ProfileClass) -> u64 {
        self.counts[N_CLASSES + 1][to.index()]
    }

    /// Whether the matrix has the expected shape. Deserialized
    /// checkpoints are validated with this before they are trusted: a
    /// matrix from an older layout (or a corrupted one that still
    /// parsed) must roll back, not index out of bounds later.
    pub fn is_well_formed(&self) -> bool {
        self.counts.len() == N_ROWS && self.counts.iter().all(|row| row.len() == N_CLASSES)
    }

    /// The count in one cell (`from: None` = the join pseudo-row).
    pub fn get(&self, from: Option<ProfileClass>, to: ProfileClass) -> u64 {
        self.counts[from.map_or(N_CLASSES, |class| class.index())][to.index()]
    }

    /// Sum over all cells — for a per-epoch matrix, the population size.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Members that changed class this epoch (off-diagonal, excluding
    /// joins).
    pub fn moved(&self) -> u64 {
        let mut moved = 0;
        for (row, cols) in self.counts.iter().take(N_CLASSES).enumerate() {
            for (col, &count) in cols.iter().enumerate() {
                if row != col {
                    moved += count;
                }
            }
        }
        moved
    }

    /// Adds `other`'s cells into this matrix.
    pub fn absorb(&mut self, other: &TransitionMatrix) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (cell, &add) in mine.iter_mut().zip(theirs) {
                *cell += add;
            }
        }
    }

    /// The checkpoint wire form: `{"counts": [[u64; N_CLASSES]; N_ROWS]}`.
    pub(crate) fn to_wire(&self) -> Wire {
        Wire::obj(vec![(
            "counts",
            Wire::Arr(
                self.counts
                    .iter()
                    .map(|row| Wire::Arr(row.iter().map(|&cell| Wire::U64(cell)).collect()))
                    .collect(),
            ),
        )])
    }

    /// Decodes the checkpoint wire form. Shape is not enforced here —
    /// [`RollingTables::validate`] rejects malformed matrices so the
    /// caller can quarantine the whole checkpoint.
    pub(crate) fn from_wire(wire: &Wire) -> Result<Self, String> {
        let counts = wire
            .field("counts")?
            .as_arr()?
            .iter()
            .map(|row| row.as_arr()?.iter().map(Wire::as_u64).collect())
            .collect::<Result<Vec<Vec<u64>>, String>>()?;
        Ok(Self { counts })
    }

    /// A labeled JSON rendering: `{"from_honest": {"honest": n, ...},
    /// ..., "join": {...}, "skip": {...}}`, rows and columns in
    /// [`ProfileClass::ALL`] order.
    pub fn to_json(&self) -> Value {
        let mut rows = Map::new();
        let row_json = |cols: &[u64]| {
            let mut row = Map::new();
            for (class, &count) in ProfileClass::ALL.iter().zip(cols) {
                row.insert(class.as_str().to_string(), json!(count));
            }
            Value::Object(row)
        };
        for (class, cols) in ProfileClass::ALL.iter().zip(&self.counts) {
            rows.insert(format!("from_{class}"), row_json(cols));
        }
        rows.insert("join".to_string(), row_json(&self.counts[N_CLASSES]));
        rows.insert("skip".to_string(), row_json(&self.counts[N_CLASSES + 1]));
        Value::Object(rows)
    }
}

/// One epoch's reduction: classification counts from the campaign round
/// plus the churn that produced this epoch's membership.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRow {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Virtual days since the observatory started, at epoch open.
    pub virtual_day: f64,
    /// Members scanned this epoch.
    pub population: u64,
    /// Members that joined at this epoch's open.
    pub joins: u64,
    /// Members that left at this epoch's open.
    pub leaves: u64,
    /// Members whose profile drifted at this epoch's open.
    pub drifts: u64,
    /// R2 responses classified this epoch (Table III total).
    pub r2: u64,
    /// R2 responses without an answer section.
    pub without_answer: u64,
    /// R2 responses with the correct answer.
    pub correct: u64,
    /// R2 responses with an incorrect answer.
    pub incorrect: u64,
    /// Incorrect as a percentage of answered (Table III err%).
    pub err_pct: f64,
    /// NXDOMAIN responses (Table VI row).
    pub nxdomain: u64,
    /// REFUSED responses (Table VI row).
    pub refused: u64,
    /// Answers matching the malicious threat DB (Table IX).
    pub malicious: u64,
    /// Current membership by behavior class.
    pub class_counts: BTreeMap<String, u64>,
    /// Class movement from the previous epoch.
    pub transitions: TransitionMatrix,
    /// Whether this epoch's campaign round failed under supervision
    /// (panic, permanent shard loss, or a blown virtual deadline). A
    /// degraded row carries zeroed scan counts and its members in the
    /// matrix `skip` pseudo-row; only the free-text failure reason stays
    /// out of the row, because it can mention layout details (shard
    /// indices) that would break shard-invariant table bytes.
    #[serde(default)]
    pub degraded: bool,
}

impl EpochRow {
    pub(crate) fn to_wire(&self) -> Wire {
        Wire::obj(vec![
            ("epoch", Wire::U64(self.epoch)),
            ("virtual_day", Wire::F64(self.virtual_day)),
            ("population", Wire::U64(self.population)),
            ("joins", Wire::U64(self.joins)),
            ("leaves", Wire::U64(self.leaves)),
            ("drifts", Wire::U64(self.drifts)),
            ("r2", Wire::U64(self.r2)),
            ("without_answer", Wire::U64(self.without_answer)),
            ("correct", Wire::U64(self.correct)),
            ("incorrect", Wire::U64(self.incorrect)),
            ("err_pct", Wire::F64(self.err_pct)),
            ("nxdomain", Wire::U64(self.nxdomain)),
            ("refused", Wire::U64(self.refused)),
            ("malicious", Wire::U64(self.malicious)),
            ("class_counts", count_map(&self.class_counts)),
            ("transitions", self.transitions.to_wire()),
            ("degraded", Wire::Bool(self.degraded)),
        ])
    }

    pub(crate) fn from_wire(wire: &Wire) -> Result<Self, String> {
        Ok(Self {
            epoch: wire.field("epoch")?.as_u64()?,
            virtual_day: wire.field("virtual_day")?.as_f64()?,
            population: wire.field("population")?.as_u64()?,
            joins: wire.field("joins")?.as_u64()?,
            leaves: wire.field("leaves")?.as_u64()?,
            drifts: wire.field("drifts")?.as_u64()?,
            r2: wire.field("r2")?.as_u64()?,
            without_answer: wire.field("without_answer")?.as_u64()?,
            correct: wire.field("correct")?.as_u64()?,
            incorrect: wire.field("incorrect")?.as_u64()?,
            err_pct: wire.field("err_pct")?.as_f64()?,
            nxdomain: wire.field("nxdomain")?.as_u64()?,
            refused: wire.field("refused")?.as_u64()?,
            malicious: wire.field("malicious")?.as_u64()?,
            class_counts: wire.field("class_counts")?.as_count_map()?,
            transitions: TransitionMatrix::from_wire(wire.field("transitions")?)?,
            degraded: wire.field("degraded")?.as_bool()?,
        })
    }
}

/// Whole-run accumulators.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Totals {
    /// Campaign rounds absorbed.
    pub epochs_completed: u64,
    /// R2 responses across all epochs.
    pub r2: u64,
    /// Incorrect answers across all epochs.
    pub incorrect: u64,
    /// Malicious answers across all epochs.
    pub malicious: u64,
    /// Join events across all epochs (excluding epoch 0's initial
    /// discovery, which is arrival, not churn).
    pub joins: u64,
    /// Leave events across all epochs.
    pub leaves: u64,
    /// Drift events across all epochs.
    pub drifts: u64,
    /// Epochs whose campaign round degraded instead of completing.
    #[serde(default)]
    pub epochs_degraded: u64,
}

impl Totals {
    pub(crate) fn to_wire(&self) -> Wire {
        Wire::obj(vec![
            ("epochs_completed", Wire::U64(self.epochs_completed)),
            ("r2", Wire::U64(self.r2)),
            ("incorrect", Wire::U64(self.incorrect)),
            ("malicious", Wire::U64(self.malicious)),
            ("joins", Wire::U64(self.joins)),
            ("leaves", Wire::U64(self.leaves)),
            ("drifts", Wire::U64(self.drifts)),
            ("epochs_degraded", Wire::U64(self.epochs_degraded)),
        ])
    }

    pub(crate) fn from_wire(wire: &Wire) -> Result<Self, String> {
        Ok(Self {
            epochs_completed: wire.field("epochs_completed")?.as_u64()?,
            r2: wire.field("r2")?.as_u64()?,
            incorrect: wire.field("incorrect")?.as_u64()?,
            malicious: wire.field("malicious")?.as_u64()?,
            joins: wire.field("joins")?.as_u64()?,
            leaves: wire.field("leaves")?.as_u64()?,
            drifts: wire.field("drifts")?.as_u64()?,
            epochs_degraded: wire.field("epochs_degraded")?.as_u64()?,
        })
    }
}

/// The observatory's accumulated state: every absorbed epoch row, the
/// cumulative transition matrix, and run totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RollingTables {
    epochs: Vec<EpochRow>,
    cumulative: TransitionMatrix,
    totals: Totals,
}

impl RollingTables {
    /// Folds one epoch's reduction into the rolling state.
    pub fn absorb_epoch(&mut self, row: EpochRow) {
        self.cumulative.absorb(&row.transitions);
        self.totals.epochs_completed += 1;
        self.totals.epochs_degraded += u64::from(row.degraded);
        self.totals.r2 += row.r2;
        self.totals.incorrect += row.incorrect;
        self.totals.malicious += row.malicious;
        if row.epoch > 0 {
            self.totals.joins += row.joins;
        }
        self.totals.leaves += row.leaves;
        self.totals.drifts += row.drifts;
        self.epochs.push(row);
    }

    /// The most recently absorbed epoch.
    pub fn latest(&self) -> Option<&EpochRow> {
        self.epochs.last()
    }

    /// All absorbed epochs, in order.
    pub fn epochs(&self) -> &[EpochRow] {
        &self.epochs
    }

    /// Run totals.
    pub fn totals(&self) -> &Totals {
        &self.totals
    }

    /// Structural sanity check for state loaded from disk: matrix
    /// shapes, epoch count, and the per-epoch conservation law. A
    /// checkpoint that parses but fails this must be treated as
    /// corrupt (quarantine + roll back), never absorbed.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !self.cumulative.is_well_formed() {
            return Err("cumulative transition matrix has the wrong shape".to_owned());
        }
        if self.totals.epochs_completed != self.epochs.len() as u64 {
            return Err(format!(
                "totals claim {} epochs but {} rows are present",
                self.totals.epochs_completed,
                self.epochs.len()
            ));
        }
        for row in &self.epochs {
            if !row.transitions.is_well_formed() {
                return Err(format!("epoch {}: malformed transition matrix", row.epoch));
            }
            if row.transitions.total() != row.population {
                return Err(format!(
                    "epoch {}: matrix total {} != population {}",
                    row.epoch,
                    row.transitions.total(),
                    row.population
                ));
            }
        }
        Ok(())
    }

    /// The `/tables` document: the latest epoch in full, cumulative
    /// transitions, and run totals.
    pub fn tables_json(&self) -> Value {
        let latest = self.epochs.last();
        json!({
            "epochs_completed": self.totals.epochs_completed,
            "latest": latest.map(|row| json!({
                "epoch": row.epoch,
                "virtual_day": row.virtual_day,
                "degraded": row.degraded,
                "population": row.population,
                "churn": {
                    "joins": row.joins,
                    "leaves": row.leaves,
                    "drifts": row.drifts,
                },
                "classification": {
                    "r2": row.r2,
                    "without_answer": row.without_answer,
                    "correct": row.correct,
                    "incorrect": row.incorrect,
                    "err_pct": row.err_pct,
                    "nxdomain": row.nxdomain,
                    "refused": row.refused,
                    "malicious": row.malicious,
                },
                "population_by_class": row.class_counts,
                "transitions": row.transitions.to_json(),
            })),
            "cumulative_transitions": self.cumulative.to_json(),
            "totals": {
                "epochs_degraded": self.totals.epochs_degraded,
                "r2": self.totals.r2,
                "incorrect": self.totals.incorrect,
                "malicious": self.totals.malicious,
                "joins": self.totals.joins,
                "leaves": self.totals.leaves,
                "drifts": self.totals.drifts,
            },
        })
    }

    /// The `/trends` document: the per-epoch series plus consecutive-
    /// epoch deltas of the headline numbers.
    pub fn trends_json(&self) -> Value {
        let series: Vec<Value> = self
            .epochs
            .iter()
            .map(|row| {
                json!({
                    "epoch": row.epoch,
                    "virtual_day": row.virtual_day,
                    "degraded": row.degraded,
                    "population": row.population,
                    "joins": row.joins,
                    "leaves": row.leaves,
                    "drifts": row.drifts,
                    "moved": row.transitions.moved(),
                    "r2": row.r2,
                    "incorrect": row.incorrect,
                    "err_pct": row.err_pct,
                    "malicious": row.malicious,
                    "population_by_class": row.class_counts,
                })
            })
            .collect();
        let deltas: Vec<Value> = self
            .epochs
            .windows(2)
            .map(|pair| {
                let (prev, next) = (&pair[0], &pair[1]);
                json!({
                    "epoch": next.epoch,
                    "population": next.population as i64 - prev.population as i64,
                    "r2": next.r2 as i64 - prev.r2 as i64,
                    "incorrect": next.incorrect as i64 - prev.incorrect as i64,
                    "err_pct": next.err_pct - prev.err_pct,
                    "malicious": next.malicious as i64 - prev.malicious as i64,
                })
            })
            .collect();
        json!({
            "epochs_completed": self.totals.epochs_completed,
            "epochs_degraded": self.totals.epochs_degraded,
            "series": series,
            "deltas": deltas,
        })
    }

    /// The checkpoint wire form of the whole rolling state.
    pub(crate) fn to_wire(&self) -> Wire {
        Wire::obj(vec![
            (
                "epochs",
                Wire::Arr(self.epochs.iter().map(EpochRow::to_wire).collect()),
            ),
            ("cumulative", self.cumulative.to_wire()),
            ("totals", self.totals.to_wire()),
        ])
    }

    /// Decodes the checkpoint wire form (callers must still
    /// [`validate`](Self::validate) before trusting it).
    pub(crate) fn from_wire(wire: &Wire) -> Result<Self, String> {
        Ok(Self {
            epochs: wire
                .field("epochs")?
                .as_arr()?
                .iter()
                .map(EpochRow::from_wire)
                .collect::<Result<Vec<EpochRow>, String>>()?,
            cumulative: TransitionMatrix::from_wire(wire.field("cumulative")?)?,
            totals: Totals::from_wire(wire.field("totals")?)?,
        })
    }

    /// `/tables` as the exact bytes served (pretty JSON + newline).
    pub fn tables_bytes(&self) -> Vec<u8> {
        render(&self.tables_json())
    }

    /// `/trends` as the exact bytes served (pretty JSON + newline).
    pub fn trends_bytes(&self) -> Vec<u8> {
        render(&self.trends_json())
    }
}

fn render(value: &Value) -> Vec<u8> {
    let mut bytes = serde_json::to_string_pretty(value)
        .expect("tables are plain data")
        .into_bytes();
    bytes.push(b'\n');
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(epoch: u64, population: u64) -> EpochRow {
        let mut transitions = TransitionMatrix::default();
        for _ in 0..population {
            transitions.record(
                if epoch == 0 {
                    None
                } else {
                    Some(ProfileClass::Honest)
                },
                ProfileClass::Honest,
            );
        }
        EpochRow {
            epoch,
            virtual_day: epoch as f64,
            population,
            joins: if epoch == 0 { population } else { 2 },
            leaves: if epoch == 0 { 0 } else { 1 },
            drifts: 0,
            r2: population,
            without_answer: 1,
            correct: population.saturating_sub(2),
            incorrect: 1,
            err_pct: 1.0,
            nxdomain: 0,
            refused: 0,
            malicious: 1,
            class_counts: BTreeMap::from([("honest".to_string(), population)]),
            transitions,
            degraded: false,
        }
    }

    #[test]
    fn matrix_conserves_population() {
        let mut matrix = TransitionMatrix::default();
        matrix.record(None, ProfileClass::Honest);
        matrix.record(Some(ProfileClass::Honest), ProfileClass::Refusing);
        matrix.record(Some(ProfileClass::Refusing), ProfileClass::Refusing);
        assert_eq!(matrix.total(), 3);
        assert_eq!(matrix.moved(), 1, "one class change, joins excluded");
        assert_eq!(matrix.get(None, ProfileClass::Honest), 1);
        assert_eq!(
            matrix.get(Some(ProfileClass::Honest), ProfileClass::Refusing),
            1
        );
    }

    #[test]
    fn matrix_json_labels_every_cell() {
        let mut matrix = TransitionMatrix::default();
        matrix.record(Some(ProfileClass::Forwarder), ProfileClass::Silent);
        let value = matrix.to_json();
        assert_eq!(value["from_forwarder"]["silent"], json!(1));
        assert_eq!(value["join"]["honest"], json!(0));
        assert_eq!(
            value.as_object().unwrap().len(),
            N_ROWS,
            "one row per class plus the join and skip pseudo-rows"
        );
    }

    #[test]
    fn skip_row_conserves_population_without_claiming_movement() {
        let mut matrix = TransitionMatrix::default();
        matrix.record_skip(ProfileClass::Honest);
        matrix.record_skip(ProfileClass::Honest);
        matrix.record_skip(ProfileClass::Refusing);
        assert_eq!(matrix.total(), 3, "skipped members still count");
        assert_eq!(matrix.moved(), 0, "a skip is not a class change");
        assert_eq!(matrix.get_skip(ProfileClass::Honest), 2);
        assert_eq!(matrix.to_json()["skip"]["refusing"], json!(1));
    }

    #[test]
    fn degraded_rows_count_in_totals_and_documents() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        let mut bad = row(1, 10);
        bad.degraded = true;
        bad.r2 = 0;
        bad.transitions = TransitionMatrix::default();
        for _ in 0..10 {
            bad.transitions.record_skip(ProfileClass::Honest);
        }
        tables.absorb_epoch(bad);
        assert_eq!(tables.totals().epochs_degraded, 1);
        let doc = tables.tables_json();
        assert_eq!(doc["latest"]["degraded"], json!(true));
        assert_eq!(doc["totals"]["epochs_degraded"], json!(1));
        assert_eq!(doc["cumulative_transitions"]["skip"]["honest"], json!(10));
        let trends = tables.trends_json();
        assert_eq!(trends["epochs_degraded"], json!(1));
        assert_eq!(trends["series"][1]["degraded"], json!(true));
        tables.validate().expect("conservation holds");
    }

    #[test]
    fn validate_rejects_malformed_state() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        let mut wrong_shape = tables.clone();
        wrong_shape.cumulative =
            TransitionMatrix::from_wire(&Wire::decode(r#"{"counts":[[0,0]]}"#).unwrap()).unwrap();
        assert!(!wrong_shape.cumulative.is_well_formed());
        assert!(wrong_shape.validate().is_err());
        let mut unconserved = tables.clone();
        unconserved.epochs[0].population += 1;
        assert!(unconserved.validate().is_err());
        let mut miscounted = tables;
        miscounted.totals.epochs_completed = 9;
        assert!(miscounted.validate().is_err());
    }

    #[test]
    fn absorb_accumulates_totals_and_cumulative_matrix() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        tables.absorb_epoch(row(1, 11));
        assert_eq!(tables.totals().epochs_completed, 2);
        assert_eq!(tables.totals().r2, 21);
        assert_eq!(tables.totals().joins, 2, "epoch 0 arrival not counted");
        assert_eq!(tables.totals().leaves, 1);
        assert_eq!(tables.latest().unwrap().epoch, 1);
        let cumulative = tables.tables_json()["cumulative_transitions"].clone();
        assert_eq!(cumulative["join"]["honest"], json!(10));
        assert_eq!(cumulative["from_honest"]["honest"], json!(11));
    }

    #[test]
    fn rendering_is_deterministic_and_roundtrips() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        tables.absorb_epoch(row(1, 11));
        assert_eq!(tables.tables_bytes(), tables.tables_bytes());
        assert_eq!(tables.trends_bytes(), tables.trends_bytes());
        let encoded = serde_json::to_string(&tables).unwrap();
        let decoded: RollingTables = serde_json::from_str(&encoded).unwrap();
        assert_eq!(decoded, tables);
        assert_eq!(decoded.tables_bytes(), tables.tables_bytes());
    }

    #[test]
    fn wire_codec_roundtrips_rolling_state() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        let mut second = row(1, 11);
        second.degraded = true;
        second.err_pct = 100.0 / 3.0;
        tables.absorb_epoch(second);
        let encoded = tables.to_wire().encode();
        let decoded = RollingTables::from_wire(&Wire::decode(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, tables);
        assert_eq!(
            decoded.to_wire().encode(),
            encoded,
            "re-encoding is byte-stable"
        );
        decoded.validate().expect("decoded state is well-formed");
    }

    #[test]
    fn trends_include_consecutive_deltas() {
        let mut tables = RollingTables::default();
        tables.absorb_epoch(row(0, 10));
        tables.absorb_epoch(row(1, 8));
        let trends = tables.trends_json();
        assert_eq!(trends["series"].as_array().unwrap().len(), 2);
        let deltas = trends["deltas"].as_array().unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0]["population"], json!(-2));
    }
}
