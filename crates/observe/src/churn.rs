//! Deterministic, seeded population churn.
//!
//! [`ChurnModel`] is the built-in [`Resolve`] implementation: it
//! generates a *pool* population larger than the target size (the
//! calibrated paper mix, with headroom), activates a seeded random
//! subset as epoch 0's membership, and then, every epoch, retires a
//! slice of the active set, activates spares in their place, and drifts
//! a slice of survivors onto new behavior profiles drawn from the pool
//! mix. Every draw comes from a SplitMix64 stream keyed on `(seed,
//! epoch)`, so the entire membership history is a pure function of the
//! seed: two observatories with the same seed see byte-identical churn
//! regardless of shard count, wall-clock pacing, or restarts (resume
//! replays the early epochs' updates without re-running their scans).
//!
//! Churn is modeled after what the measurement literature actually
//! observed: the open-resolver population is dominated by embedded CPE
//! devices with high address turnover (Nawrocki et al.'s transparent-
//! forwarder study), and its behavioral mix shifted dramatically
//! between the paper's 2013 and 2018 snapshots — drift here is a
//! device being re-provisioned, so a departing endpoint that later
//! re-joins comes back with its factory profile.

use std::collections::VecDeque;
use std::sync::Arc;

use orscope_resolver::population::{HostList, Population, PopulationConfig};
use serde::{Deserialize, Serialize};

use crate::resolve::{Resolution, Resolve, Update};

/// Per-epoch churn intensities, as fractions of the current population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Fraction of the population that joins each epoch (drawn from the
    /// spare pool; clamped when the pool runs dry).
    pub join_rate: f64,
    /// Fraction of the population that leaves each epoch.
    pub leave_rate: f64,
    /// Fraction of the population whose profile drifts each epoch.
    pub drift_rate: f64,
    /// Pool headroom: the generated pool is `(1 + headroom)` times the
    /// target population, the excess forming the spare reservoir joins
    /// draw from.
    pub pool_headroom: f64,
    /// Seed of the churn draw stream (mixed per epoch).
    pub seed: u64,
}

impl Default for ChurnConfig {
    /// Gentle defaults: ~5% monthly-scale turnover compressed into
    /// virtual days, with a drift rate high enough that a short serve
    /// run already shows profile-mix movement.
    fn default() -> Self {
        Self {
            join_rate: 0.04,
            leave_rate: 0.05,
            drift_rate: 0.06,
            pool_headroom: 1.0,
            seed: 0x0B5E_0019,
        }
    }
}

impl ChurnConfig {
    /// Checks the knobs for operator errors.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range knob.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("join_rate", self.join_rate),
            ("leave_rate", self.leave_rate),
            ("drift_rate", self.drift_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} {rate} not in [0, 1]"));
            }
        }
        if !(self.pool_headroom.is_finite() && (0.0..=8.0).contains(&self.pool_headroom)) {
            return Err(format!(
                "pool_headroom {} not in [0, 8]",
                self.pool_headroom
            ));
        }
        Ok(())
    }
}

/// Sebastiano Vigna's SplitMix64: the weakest generator that is still
/// statistically fine for membership draws, chosen because its state is
/// a single `u64` — reseeding per epoch makes every epoch's batch
/// independently reproducible, which is what lets resume fast-forward
/// churn without replaying scans.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..n` (`0` when `n == 0`). Modulo bias is irrelevant
    /// at population sizes ≪ 2^64.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub(crate) fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

/// The built-in churn-driven population discovery.
#[derive(Debug, Clone, Default)]
pub struct ChurnModel {
    config: ChurnConfig,
}

impl ChurnModel {
    /// A model with the given intensities.
    pub fn new(config: ChurnConfig) -> Self {
        Self { config }
    }

    /// The configured intensities.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }
}

impl Resolve for ChurnModel {
    type Resolution = ChurnResolution;

    fn resolve(&self, target: &PopulationConfig) -> ChurnResolution {
        let headroom = 1.0 + self.config.pool_headroom;
        let mut pool_config = target.clone();
        // PopulationConfig.scale is a divisor (1:scale), so dividing it
        // by the headroom factor generates proportionally more hosts.
        pool_config.scale = target.scale / headroom;
        let mut pool = Population::generate(&pool_config);
        // The pool is bookkeeping for the *target* scale; keep the label
        // honest for downstream consumers.
        pool.scale = target.scale;
        let mut indices: Vec<usize> = (0..pool.resolvers.len()).collect();
        SplitMix64::new(self.config.seed ^ 0xC0FF_EE00).shuffle(&mut indices);
        let target_size = ((pool.resolvers.len() as f64 / headroom).round() as usize)
            .clamp(1, pool.resolvers.len().max(1));
        let spares = indices.split_off(target_size.min(indices.len()));
        ChurnResolution {
            config: self.config.clone(),
            pool,
            active: indices,
            spares,
            pending: VecDeque::new(),
            next_epoch: 0,
        }
    }
}

/// The update stream a [`ChurnModel`] produces.
#[derive(Debug, Clone)]
pub struct ChurnResolution {
    config: ChurnConfig,
    /// The full generated pool (active ∪ spares), plus the static seed
    /// lists every epoch population shares.
    pool: Population,
    /// Pool indices currently in the population.
    active: Vec<usize>,
    /// Pool indices currently dormant.
    spares: Vec<usize>,
    /// The undrained remainder of the current epoch's batch.
    pending: VecDeque<Update>,
    /// First epoch whose batch has not been generated yet.
    next_epoch: u64,
}

impl ChurnResolution {
    /// Total hosts in the generated pool.
    pub fn pool_size(&self) -> usize {
        self.pool.resolvers.len()
    }

    /// Hosts currently active (after the last generated epoch).
    pub fn active_size(&self) -> usize {
        self.active.len()
    }

    /// Appends epoch `epoch`'s batch to `pending` and updates the
    /// active/spare split to match.
    fn generate_batch(&mut self, epoch: u64) {
        if epoch == 0 {
            // Initial discovery: the whole starting membership arrives
            // as `Add`s, exactly like a discovery stream warming up.
            for &i in &self.active {
                self.pending
                    .push_back(Update::Add(Box::new(self.pool.resolver(i).to_planned())));
            }
            return;
        }
        let mut rng = SplitMix64::new(
            self.config
                .seed
                .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let base = self.active.len() as f64;
        let leaves = (base * self.config.leave_rate) as usize;
        let joins = (base * self.config.join_rate) as usize;
        let drifts = (base * self.config.drift_rate) as usize;
        for _ in 0..leaves {
            if self.active.len() <= 1 {
                break; // never churn the population out of existence
            }
            let slot = rng.below(self.active.len());
            let index = self.active.swap_remove(slot);
            self.spares.push(index);
            self.pending
                .push_back(Update::Remove(self.pool.resolvers.addr(index)));
        }
        for _ in 0..joins {
            if self.spares.is_empty() {
                break; // pool exhausted: joins clamp, documented above
            }
            let slot = rng.below(self.spares.len());
            let index = self.spares.swap_remove(slot);
            self.active.push(index);
            self.pending.push_back(Update::Add(Box::new(
                self.pool.resolver(index).to_planned(),
            )));
        }
        for _ in 0..drifts {
            if self.active.is_empty() {
                break;
            }
            let member = self.active[rng.below(self.active.len())];
            // The new profile is drawn from the whole pool mix, so drift
            // pressure pushes the live mix toward the calibrated year
            // distribution rather than toward any single class.
            let donor = rng.below(self.pool.resolvers.len());
            self.pending.push_back(Update::Drift {
                addr: self.pool.resolvers.addr(member),
                to: Box::new((**self.pool.resolver(donor).policy).clone()),
            });
        }
    }
}

impl Resolution for ChurnResolution {
    fn poll_update(&mut self, epoch: u64) -> Option<Update> {
        while self.next_epoch <= epoch {
            let generate = self.next_epoch;
            self.generate_batch(generate);
            self.next_epoch += 1;
        }
        self.pending.pop_front()
    }

    fn seed_population(&self) -> Population {
        Population {
            year: self.pool.year,
            scale: self.pool.scale,
            resolvers: HostList::default(),
            malicious_answers: self.pool.malicious_answers.clone(),
            answer_orgs: self.pool.answer_orgs.clone(),
            off_port: self.pool.off_port.clone(),
            upstreams: self.pool.upstreams.clone(),
            table: Arc::clone(&self.pool.table),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orscope_resolver::paper::Year;

    fn drain(res: &mut ChurnResolution, epoch: u64) -> Vec<Update> {
        let mut out = Vec::new();
        while let Some(update) = res.poll_update(epoch) {
            out.push(update);
        }
        out
    }

    fn model() -> ChurnModel {
        ChurnModel::new(ChurnConfig {
            join_rate: 0.10,
            leave_rate: 0.10,
            drift_rate: 0.10,
            pool_headroom: 1.0,
            seed: 42,
        })
    }

    #[test]
    fn epoch_zero_delivers_the_initial_population() {
        let target = PopulationConfig::new(Year::Y2018, 50_000.0);
        let mut res = model().resolve(&target);
        let batch = drain(&mut res, 0);
        assert_eq!(batch.len(), res.active_size());
        assert!(batch.iter().all(|u| matches!(u, Update::Add(_))));
        // Headroom 1.0: about half the pool starts active.
        let active = res.active_size() as f64;
        let pool = res.pool_size() as f64;
        assert!((active / pool - 0.5).abs() < 0.05, "{active}/{pool}");
    }

    #[test]
    fn churn_is_a_pure_function_of_the_seed() {
        let target = PopulationConfig::new(Year::Y2018, 50_000.0);
        let run = || {
            let mut res = model().resolve(&target);
            (0..4).map(|e| drain(&mut res, e)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_churn_differently() {
        let target = PopulationConfig::new(Year::Y2018, 50_000.0);
        let mut a = model().resolve(&target);
        let mut b = ChurnModel::new(ChurnConfig {
            seed: 43,
            ..model().config().clone()
        })
        .resolve(&target);
        let _ = (drain(&mut a, 0), drain(&mut b, 0));
        assert_ne!(drain(&mut a, 1), drain(&mut b, 1));
    }

    #[test]
    fn batches_move_members_between_active_and_spares() {
        let target = PopulationConfig::new(Year::Y2018, 50_000.0);
        let mut res = model().resolve(&target);
        let _ = drain(&mut res, 0);
        let before = res.active_size();
        let batch = drain(&mut res, 1);
        let adds = batch.iter().filter(|u| matches!(u, Update::Add(_))).count();
        let removes = batch
            .iter()
            .filter(|u| matches!(u, Update::Remove(_)))
            .count();
        let drifts = batch
            .iter()
            .filter(|u| matches!(u, Update::Drift { .. }))
            .count();
        assert!(removes > 0 && adds > 0 && drifts > 0, "{batch:?}");
        assert_eq!(res.active_size(), before - removes + adds);
    }

    #[test]
    fn joins_clamp_when_the_pool_runs_dry() {
        let target = PopulationConfig::new(Year::Y2018, 50_000.0);
        let mut res = ChurnModel::new(ChurnConfig {
            join_rate: 1.0,
            leave_rate: 0.0,
            drift_rate: 0.0,
            pool_headroom: 0.2,
            seed: 7,
        })
        .resolve(&target);
        let _ = drain(&mut res, 0);
        for epoch in 1..6 {
            let _ = drain(&mut res, epoch);
            assert!(res.active_size() <= res.pool_size());
        }
        assert_eq!(res.active_size(), res.pool_size(), "pool fully drained");
        assert!(drain(&mut res, 6).is_empty(), "no spares left to join");
    }

    #[test]
    fn seed_population_carries_statics_but_no_members() {
        let target = PopulationConfig::new(Year::Y2018, 50_000.0);
        let res = model().resolve(&target);
        let seeded = res.seed_population();
        assert!(seeded.resolvers.is_empty());
        assert!(!seeded.malicious_answers.is_empty());
        assert_eq!(seeded.scale, 50_000.0, "labeled at target scale");
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let bad_rate = ChurnConfig {
            join_rate: 1.5,
            ..ChurnConfig::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_headroom = ChurnConfig {
            pool_headroom: -1.0,
            ..ChurnConfig::default()
        };
        assert!(bad_headroom.validate().is_err());
        assert!(ChurnConfig::default().validate().is_ok());
    }

    #[test]
    fn splitmix_shuffle_is_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        SplitMix64::new(9).shuffle(&mut a);
        SplitMix64::new(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..100).collect();
        SplitMix64::new(10).shuffle(&mut c);
        assert_ne!(a, c);
    }
}
