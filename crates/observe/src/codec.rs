//! The checkpoint wire codec: a small, hand-written JSON subset.
//!
//! Checkpoint generations are durable artifacts with an explicit,
//! versioned schema — the one part of the observatory whose byte layout
//! must stay stable across refactors, because an operator's state dir
//! outlives any single build. Hand-writing the codec (in the same
//! spirit as the hand-rolled HTTP surface) keeps that schema visible in
//! one place, decoupled from `#[derive]` evolution, and keeps the
//! corruption-recovery path free of any dependency's parsing behavior:
//! every accepted byte is accepted by code in this module.
//!
//! The subset is exactly what checkpoints need: objects with ordered
//! keys (deterministic bytes), arrays, strings, booleans, `null`,
//! unsigned integers, and finite floats. Floats round-trip exactly:
//! they are written with Rust's shortest-representation `Display` and
//! read back with `str::parse::<f64>`, which recovers the identical
//! bit pattern.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One value of the checkpoint wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum Wire {
    /// `null` — used for absent optionals.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counts, seeds, epochs).
    U64(u64),
    /// A finite float (scales, rates, percentages).
    F64(f64),
    /// A string (class names, map keys).
    Str(String),
    /// An ordered array.
    Arr(Vec<Wire>),
    /// An object; key order is preserved, so encoding is deterministic.
    Obj(Vec<(String, Wire)>),
}

impl Wire {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Wire)>) -> Wire {
        Wire::Obj(
            fields
                .into_iter()
                .map(|(key, value)| (key.to_owned(), value))
                .collect(),
        )
    }

    /// Renders this value as compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Wire::Null => out.push_str("null"),
            Wire::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Wire::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Wire::F64(x) => {
                // Non-finite floats have no JSON form; encode as null
                // so the value fails decoding loudly instead of writing
                // a file no parser accepts.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Wire::Str(s) => write_string(out, s),
            Wire::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Wire::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (the whole input must be consumed).
    ///
    /// # Errors
    ///
    /// A description of the first syntax error.
    pub fn decode(text: &str) -> Result<Wire, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    // ---- typed accessors (decoding helpers) ----

    /// The value of field `name`.
    ///
    /// # Errors
    ///
    /// If `self` is not an object or the field is missing.
    pub fn field(&self, name: &str) -> Result<&Wire, String> {
        match self {
            Wire::Obj(fields) => fields
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value)
                .ok_or_else(|| format!("missing field {name:?}")),
            _ => Err(format!("expected object around field {name:?}")),
        }
    }

    /// This value as a `u64`.
    ///
    /// # Errors
    ///
    /// If it is not an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Wire::U64(n) => Ok(*n),
            other => Err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    /// This value as an `f64` (integers widen).
    ///
    /// # Errors
    ///
    /// If it is not numeric.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Wire::U64(n) => Ok(*n as f64),
            Wire::F64(x) => Ok(*x),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as a `bool`.
    ///
    /// # Errors
    ///
    /// If it is not a boolean.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Wire::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    /// This value as an array slice.
    ///
    /// # Errors
    ///
    /// If it is not an array.
    pub fn as_arr(&self) -> Result<&[Wire], String> {
        match self {
            Wire::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// This value as `Some(u64)`, with `null` mapping to `None`.
    ///
    /// # Errors
    ///
    /// If it is neither `null` nor an unsigned integer.
    pub fn as_opt_u64(&self) -> Result<Option<u64>, String> {
        match self {
            Wire::Null => Ok(None),
            other => other.as_u64().map(Some),
        }
    }

    /// This value as a string-to-count map.
    ///
    /// # Errors
    ///
    /// If it is not an object of unsigned integers.
    pub fn as_count_map(&self) -> Result<BTreeMap<String, u64>, String> {
        match self {
            Wire::Obj(fields) => fields
                .iter()
                .map(|(key, value)| Ok((key.clone(), value.as_u64()?)))
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

/// Encodes an optional unsigned integer (`None` -> `null`).
pub fn opt_u64(value: Option<u64>) -> Wire {
    value.map_or(Wire::Null, Wire::U64)
}

/// Encodes a string-to-count map with deterministic (sorted) key order.
pub fn count_map(map: &BTreeMap<String, u64>) -> Wire {
    Wire::Obj(
        map.iter()
            .map(|(key, value)| (key.clone(), Wire::U64(*value)))
            .collect(),
    )
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, expected: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at offset {pos}",
            char::from(expected)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Wire, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Wire::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|()| Wire::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|()| Wire::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|()| Wire::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Wire, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_owned())?;
    if text.is_empty() {
        return Err(format!("expected value at offset {start}"));
    }
    // Unsigned integers first (exact for the full u64 range: seeds use
    // all 64 bits), floats as the fallback.
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Wire::U64(n));
    }
    match text.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(Wire::F64(x)),
        _ => Err(format!("bad number {text:?} at offset {start}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_owned()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Wire, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Wire::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Wire::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Wire, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Wire::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Wire::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (value, expected) in [
            (Wire::Null, "null"),
            (Wire::Bool(true), "true"),
            (Wire::U64(u64::MAX), "18446744073709551615"),
            (Wire::F64(0.25), "0.25"),
            (Wire::Str("a \"b\"\n\\".to_owned()), r#""a \"b\"\n\\""#),
        ] {
            let encoded = value.encode();
            assert_eq!(encoded, expected);
            assert_eq!(Wire::decode(&encoded).unwrap(), value);
        }
    }

    #[test]
    fn integral_floats_widen_back_exactly() {
        // 60000.0 encodes as "60000", decodes as U64, and as_f64
        // recovers the identical float.
        let encoded = Wire::F64(60_000.0).encode();
        assert_eq!(encoded, "60000");
        let decoded = Wire::decode(&encoded).unwrap();
        assert_eq!(decoded.as_f64().unwrap(), 60_000.0);
    }

    #[test]
    fn awkward_floats_roundtrip_bit_exact() {
        for x in [0.1, 2.0 / 3.0, 1e300, 5e-324, 123_456_789.987_654_32] {
            let decoded = Wire::decode(&Wire::F64(x).encode()).unwrap();
            assert_eq!(decoded.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn nested_structures_roundtrip_deterministically() {
        let value = Wire::obj(vec![
            ("counts", Wire::Arr(vec![Wire::U64(1), Wire::U64(2)])),
            ("nested", Wire::obj(vec![("x", Wire::Null)])),
            ("flag", Wire::Bool(false)),
        ]);
        let encoded = value.encode();
        assert_eq!(
            encoded,
            r#"{"counts":[1,2],"nested":{"x":null},"flag":false}"#
        );
        let decoded = Wire::decode(&encoded).unwrap();
        assert_eq!(decoded, value);
        assert_eq!(decoded.encode(), encoded, "stable under re-encoding");
        assert_eq!(decoded.field("flag").unwrap().as_bool().unwrap(), false);
        assert!(decoded.field("absent").is_err());
    }

    #[test]
    fn whitespace_is_tolerated_garbage_is_not() {
        assert_eq!(
            Wire::decode(" {\n\t\"a\" : [ 1 , 2 ] }\n").unwrap(),
            Wire::obj(vec![("a", Wire::Arr(vec![Wire::U64(1), Wire::U64(2)]))])
        );
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\":1}trailing",
            "NaN",
            "1e999",
        ] {
            assert!(Wire::decode(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn count_maps_roundtrip() {
        let map = BTreeMap::from([("honest".to_owned(), 7u64), ("silent".to_owned(), 0)]);
        let decoded = Wire::decode(&count_map(&map).encode()).unwrap();
        assert_eq!(decoded.as_count_map().unwrap(), map);
    }
}
