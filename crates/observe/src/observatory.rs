//! The epoch scheduler: supervised rolling campaigns over a churning
//! population.
//!
//! An [`Observatory`] owns a [`Resolve`] discovery source (by default
//! the seeded [`ChurnModel`]) and a [`ServeConfig`]. Each virtual-day
//! epoch it drains the discovery stream's membership updates, records
//! the profile-transition matrix, runs one full campaign round over the
//! current membership on the shared sharded/streaming infrastructure,
//! reduces the round to an [`EpochRow`], and absorbs it into the
//! [`RollingTables`] behind the HTTP surface.
//!
//! Unattended operation is the design center. Every epoch runs under a
//! supervisor: a round that panics, fails permanently, or blows its
//! virtual-time deadline is retried once with the identical seed, and a
//! second failure produces a *degraded* row — population accounted for
//! in the transition matrix's `skip` pseudo-row, scan counts zeroed —
//! instead of killing the process. State persists as verified
//! checkpoint generations ([`ObservatoryCheckpoint::save_generation`]);
//! on resume, corrupt generations are quarantined and the run rolls
//! back to the newest one that verifies.
//!
//! Determinism is end to end: membership is a pure function of the
//! churn seed, each round's campaign seed is a pure function of
//! `(serve seed, epoch)`, campaign results are shard-invariant, and a
//! deadline blows (or not) identically at every shard count — so the
//! same configuration produces byte-identical `/tables` and `/trends`
//! documents at any shard count, and across any kill/corrupt/resume
//! history.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use orscope_core::bus::RecordBus;
use orscope_core::{Campaign, CampaignConfig, CampaignError, CampaignResult, Infra};
use orscope_dns_wire::Rcode;
use orscope_netsim::EpochClock;
use orscope_resolver::paper::Year;
use orscope_resolver::population::PopulationConfig;
use orscope_resolver::{HostList, PlannedResolver, ProfileClass};
use orscope_telemetry::{Collector, Counter, Gauge, Scope, TelemetrySnapshot};
use parking_lot::{Mutex, RwLock};

use crate::churn::{ChurnConfig, ChurnModel};
use crate::resolve::{Resolution, Resolve, Update};
use crate::series::{EpochRow, RollingTables, TransitionMatrix};
use crate::state::{Fingerprint, ObservatoryCheckpoint};

/// Multiplier for deriving per-epoch campaign seeds (SplitMix64's
/// golden-ratio increment — any odd constant with good bit dispersion
/// works; what matters is that it is fixed, so epoch seeds survive
/// restarts).
const EPOCH_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic epoch-failure injection, for exercising the epoch
/// supervisor. The targeted epoch's first `failures` *attempts* (the
/// initial run and, if needed, the retry) panic before the campaign
/// starts: `failures: 1` exercises the invisible-retry path, `failures:
/// 2` forces a degraded row. Not part of the run [`Fingerprint`] — a
/// sabotaged-then-retried epoch produces byte-identical tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSabotage {
    /// Which epoch's attempts to fail.
    pub epoch: u64,
    /// How many consecutive attempts to fail.
    pub failures: u32,
}

/// Everything that shapes a serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Which scan year's population mix to reproduce.
    pub year: Year,
    /// Population down-scaling factor (1:scale).
    pub scale: f64,
    /// Base seed: campaign rounds derive per-epoch seeds from it.
    pub seed: u64,
    /// Shards per campaign round (results are shard-invariant).
    pub shards: usize,
    /// Virtual seconds per epoch (86 400 = one virtual day).
    pub epoch_virtual_secs: u64,
    /// Stop after this many epochs; `None` = run until shutdown.
    pub epochs: Option<u64>,
    /// Churn model knobs.
    pub churn: ChurnConfig,
    /// Where checkpoint generations live. The library default is a path
    /// under the OS temp dir so tests and casual runs never litter the
    /// working tree; the CLI overrides it with a visible (gitignored)
    /// default.
    pub state_dir: PathBuf,
    /// Also checkpoint every N completed epochs (0 = only the final
    /// flush on exit).
    pub checkpoint_every: u64,
    /// Verified checkpoint generations to retain (oldest are pruned).
    pub keep_generations: usize,
    /// Wall-clock pause between epochs, so a demo serve doesn't spin
    /// a core replaying days as fast as it can.
    pub interval: Duration,
    /// Collect campaign telemetry for the `/metrics` surface.
    pub telemetry: bool,
    /// Virtual-time budget per campaign round, in virtual seconds. A
    /// round still busy at the deadline fails its attempt (and, after
    /// the retry, degrades the epoch) instead of stalling the scheduler
    /// forever. `None` runs every round to idle.
    pub epoch_deadline_virtual_secs: Option<u64>,
    /// Failure injection for the epoch supervisor (tests only).
    pub sabotage: Option<EpochSabotage>,
}

impl ServeConfig {
    /// Defaults: one virtual day per epoch, default churn, telemetry
    /// on, run-until-shutdown, state under the OS temp dir, three
    /// checkpoint generations, no deadline.
    pub fn new(year: Year, scale: f64) -> Self {
        Self {
            year,
            scale,
            seed: 7,
            shards: 1,
            epoch_virtual_secs: 86_400,
            epochs: None,
            churn: ChurnConfig::default(),
            state_dir: std::env::temp_dir().join("orscope-serve"),
            checkpoint_every: 0,
            keep_generations: 3,
            interval: Duration::ZERO,
            telemetry: true,
            epoch_deadline_virtual_secs: None,
            sabotage: None,
        }
    }

    /// Checks the knobs for operator errors.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range knob.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!("scale {} must be positive", self.scale));
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".to_string());
        }
        if self.epoch_virtual_secs == 0 {
            return Err("epoch length must be positive".to_string());
        }
        if self.epochs == Some(0) {
            return Err("epoch limit 0 would never scan".to_string());
        }
        if self.keep_generations == 0 {
            return Err("keep-generations 0 would delete every checkpoint".to_string());
        }
        if self.epoch_deadline_virtual_secs == Some(0) {
            return Err("epoch deadline 0 would fail every round".to_string());
        }
        self.churn.validate()
    }

    /// The identity of this run's deterministic output stream.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            year: self.year.as_u16(),
            scale: self.scale,
            seed: self.seed,
            shards: self.shards,
            epoch_virtual_secs: self.epoch_virtual_secs,
            churn: self.churn.clone(),
            epoch_deadline_virtual_secs: self.epoch_deadline_virtual_secs,
        }
    }
}

/// A serve-run failure.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// A campaign round failed.
    Campaign(CampaignError),
    /// The state dir is unusable: not creatable, not a directory, or
    /// not writable. Detected at startup, before any epoch runs.
    StateDir(String),
    /// The state dir could not be read or written.
    Io(std::io::Error),
    /// The state dir holds a checkpoint from a different run identity;
    /// continuing would splice two incompatible output streams.
    IncompatibleCheckpoint(String),
    /// Every checkpoint generation in the state dir failed
    /// verification. The corrupt files were quarantined (`*.corrupt`);
    /// resuming silently from scratch would hide the data loss, so the
    /// operator must opt in by pointing at a fresh state dir.
    CorruptState(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(reason) => write!(f, "invalid serve config: {reason}"),
            ServeError::Campaign(err) => write!(f, "campaign round failed: {err}"),
            ServeError::StateDir(reason) => write!(f, "unusable state dir: {reason}"),
            ServeError::Io(err) => write!(f, "serve state dir: {err}"),
            ServeError::IncompatibleCheckpoint(reason) => {
                write!(f, "incompatible checkpoint: {reason}")
            }
            ServeError::CorruptState(reason) => write!(f, "corrupt state: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CampaignError> for ServeError {
    fn from(err: CampaignError) -> Self {
        ServeError::Campaign(err)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err)
    }
}

/// What a finished (or shut down) run did.
#[derive(Debug)]
pub struct RunReport {
    /// Epochs absorbed into the tables, counting resumed ones.
    pub epochs_completed: u64,
    /// `Some(n)` when the run resumed a checkpoint with `n` epochs done.
    pub resumed_from: Option<u64>,
    /// Where the final checkpoint generation was flushed.
    pub checkpoint_path: PathBuf,
    /// Corrupt generations quarantined (`*.corrupt`) during recovery;
    /// each one is a rollback to an older generation.
    pub quarantined: Vec<PathBuf>,
    /// Epochs that exhausted their retry and were absorbed as degraded
    /// rows this run.
    pub epochs_degraded: u64,
}

/// Where the scheduler is in its lifecycle, as exposed on `/readyz`.
/// `/healthz` answers "is the process alive" and stays 200 through
/// recovery and degradation; `/readyz` answers "is the data surface
/// fully caught up and clean".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Constructed, not yet running.
    Starting,
    /// Verifying checkpoint generations / replaying churn.
    Recovering,
    /// Serving; last epoch completed normally.
    Ready,
    /// Serving, but the most recent epoch was absorbed as a degraded
    /// row.
    Degraded,
    /// Final checkpoint flushed; scheduler exited.
    Stopping,
}

impl ServiceState {
    fn from_u8(value: u8) -> Self {
        match value {
            0 => ServiceState::Starting,
            1 => ServiceState::Recovering,
            2 => ServiceState::Ready,
            3 => ServiceState::Degraded,
            _ => ServiceState::Stopping,
        }
    }

    /// The state's wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceState::Starting => "starting",
            ServiceState::Recovering => "recovering",
            ServiceState::Ready => "ready",
            ServiceState::Degraded => "degraded",
            ServiceState::Stopping => "stopping",
        }
    }
}

/// State shared between the epoch scheduler and the HTTP surface.
/// Readers (HTTP handlers) never block the scheduler for longer than
/// one table clone.
pub struct ObservatoryShared {
    tables: RwLock<RollingTables>,
    campaign_telemetry: Mutex<TelemetrySnapshot>,
    service: Collector,
    /// The record bus every campaign round publishes to; `/tap`
    /// connections subscribe here.
    bus: Arc<RecordBus>,
    epochs_gauge: Gauge,
    population_gauge: Gauge,
    materialized_gauge: Gauge,
    joins_counter: Counter,
    leaves_counter: Counter,
    drifts_counter: Counter,
    rounds_counter: Counter,
    http_requests: Counter,
    degraded_counter: Counter,
    retries_counter: Counter,
    rollbacks_counter: Counter,
    http_rejected: Counter,
    http_timeout: Counter,
    epochs_completed: AtomicU64,
    population: AtomicU64,
    state: AtomicU8,
    healthy: AtomicBool,
    shutdown: AtomicBool,
}

impl ObservatoryShared {
    pub(crate) fn new() -> Arc<Self> {
        let service = Collector::new();
        Arc::new(Self {
            tables: RwLock::new(RollingTables::default()),
            campaign_telemetry: Mutex::new(TelemetrySnapshot::default()),
            bus: Arc::new(RecordBus::new()),
            epochs_gauge: service.gauge(Scope::Shard, "observe.epochs_completed"),
            population_gauge: service.gauge(Scope::Shard, "observe.population"),
            materialized_gauge: service.gauge(Scope::Shard, "observe.materialized_hosts"),
            joins_counter: service.counter(Scope::Shard, "observe.churn_joins"),
            leaves_counter: service.counter(Scope::Shard, "observe.churn_leaves"),
            drifts_counter: service.counter(Scope::Shard, "observe.churn_drifts"),
            rounds_counter: service.counter(Scope::Shard, "observe.rounds"),
            http_requests: service.counter(Scope::Shard, "observe.http_requests"),
            degraded_counter: service.counter(Scope::Shard, "observe.epochs_degraded"),
            retries_counter: service.counter(Scope::Shard, "observe.epoch_retries"),
            rollbacks_counter: service.counter(Scope::Shard, "observe.checkpoint_rollbacks"),
            http_rejected: service.counter(Scope::Shard, "observe.http_rejected_conns"),
            http_timeout: service.counter(Scope::Shard, "observe.http_timeouts"),
            service,
            epochs_completed: AtomicU64::new(0),
            population: AtomicU64::new(0),
            state: AtomicU8::new(ServiceState::Starting as u8),
            healthy: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Asks the scheduler (and the HTTP accept loop) to wind down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Epochs absorbed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed.load(Ordering::SeqCst)
    }

    /// Whether the scheduler is up (true from run start to final
    /// checkpoint flush; liveness, not readiness).
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Where the scheduler is in its lifecycle.
    pub fn state(&self) -> ServiceState {
        ServiceState::from_u8(self.state.load(Ordering::SeqCst))
    }

    pub(crate) fn set_state(&self, state: ServiceState) {
        self.state.store(state as u8, Ordering::SeqCst);
    }

    /// Whether `/readyz` should answer 200: serving, caught up, and the
    /// last epoch was clean.
    pub fn is_ready(&self) -> bool {
        self.state() == ServiceState::Ready
    }

    /// The record bus campaign rounds publish to. `/tap` handlers
    /// subscribe here; each subscription gets its own bounded lane.
    pub fn bus(&self) -> &Arc<RecordBus> {
        &self.bus
    }

    /// Counts one HTTP request against the service metrics.
    pub fn record_http_request(&self) {
        self.http_requests.inc();
    }

    /// Counts one connection turned away at the limit.
    pub fn record_http_rejected(&self) {
        self.http_rejected.inc();
    }

    /// Counts one connection dropped for blowing an I/O deadline.
    pub fn record_http_timeout(&self) {
        self.http_timeout.inc();
    }

    /// A point-in-time clone of the rolling tables (for exporters and
    /// invariant checks; the HTTP surface uses the `*_bytes` forms).
    pub fn tables_snapshot(&self) -> RollingTables {
        self.tables.read().clone()
    }

    /// The `/tables` document, as served.
    pub fn tables_bytes(&self) -> Vec<u8> {
        self.tables.read().tables_bytes()
    }

    /// The `/trends` document, as served.
    pub fn trends_bytes(&self) -> Vec<u8> {
        self.tables.read().trends_bytes()
    }

    /// The `/healthz` document, as served. Liveness only: 200 as long
    /// as the process runs, through recovery and degraded epochs alike.
    pub fn healthz_bytes(&self) -> Vec<u8> {
        // Hand-formatted (like the checkpoint codec): the probes must
        // answer even if a serializer is misbehaving — they are what
        // the operator's monitoring trusts.
        let status = if self.is_healthy() { "ok" } else { "stopping" };
        format!(
            "{{\n  \"epochs_completed\": {},\n  \"population\": {},\n  \"status\": \"{status}\"\n}}\n",
            self.epochs_completed(),
            self.population.load(Ordering::SeqCst),
        )
        .into_bytes()
    }

    /// The `/readyz` document, as served (the HTTP layer pairs it with
    /// 200 when [`Self::is_ready`], 503 otherwise).
    pub fn readyz_bytes(&self) -> Vec<u8> {
        let state = self.state();
        format!(
            "{{\n  \"checkpoint_rollbacks\": {},\n  \"epoch_retries\": {},\n  \
             \"epochs_completed\": {},\n  \"epochs_degraded\": {},\n  \
             \"ready\": {},\n  \"state\": \"{}\"\n}}\n",
            self.rollbacks_counter.get(),
            self.retries_counter.get(),
            self.epochs_completed(),
            self.degraded_counter.get(),
            state == ServiceState::Ready,
            state.as_str(),
        )
        .into_bytes()
    }

    /// The `/metrics` document: service gauges/counters plus the
    /// absorbed campaign telemetry, both in Prometheus text format with
    /// a `surface` label telling them apart.
    pub fn metrics_bytes(&self) -> Vec<u8> {
        let mut out = self
            .service
            .snapshot()
            .to_prometheus_labeled(&[("surface", "service")]);
        out.push_str(
            &self
                .campaign_telemetry
                .lock()
                .to_prometheus_labeled(&[("surface", "campaign")]),
        );
        // Tap/bus metrics are rendered straight from the bus rather
        // than through a Collector: their values depend on how fast
        // external tap consumers drain their lanes (queue depth, drops),
        // so they are load-dependent and deliberately excluded from the
        // shard-invariance assertions that cover the campaign surface.
        let bus = self.bus.stats();
        out.push_str(&format!(
            "orscope_tap_subscribers{{surface=\"service\"}} {}\n\
             orscope_tap_subscribers_total{{surface=\"service\"}} {}\n\
             orscope_tap_events_published{{surface=\"service\"}} {}\n\
             orscope_tap_events_dropped{{surface=\"service\"}} {}\n",
            bus.subscribers, bus.attached_total, bus.published, bus.dropped,
        ));
        for lane in self.bus.lane_stats() {
            out.push_str(&format!(
                "orscope_tap_queue_depth{{surface=\"service\",lane=\"{id}\"}} {depth}\n\
                 orscope_tap_lane_dropped{{surface=\"service\",lane=\"{id}\"}} {dropped}\n",
                id = lane.id,
                depth = lane.depth,
                dropped = lane.dropped,
            ));
        }
        out.into_bytes()
    }
}

/// The long-running service: epoch scheduler plus shared state.
pub struct Observatory<R: Resolve = ChurnModel> {
    config: ServeConfig,
    resolve: R,
    shared: Arc<ObservatoryShared>,
}

impl Observatory<ChurnModel> {
    /// An observatory over the built-in seeded churn model.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`] failures.
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        let churn = ChurnModel::new(config.churn.clone());
        Self::with_resolve(config, churn)
    }
}

impl<R: Resolve> Observatory<R> {
    /// An observatory over a custom discovery source.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`] failures.
    pub fn with_resolve(config: ServeConfig, resolve: R) -> Result<Self, ServeError> {
        config.validate().map_err(ServeError::InvalidConfig)?;
        Ok(Self {
            config,
            resolve,
            shared: ObservatoryShared::new(),
        })
    }

    /// The state the HTTP surface (and tests) read.
    pub fn shared(&self) -> Arc<ObservatoryShared> {
        self.shared.clone()
    }

    /// The configuration this observatory runs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs epochs until the limit is reached or shutdown is requested,
    /// then flushes the final checkpoint generation. Blocking; pair
    /// with [`crate::http::serve`] on another thread for the live
    /// surface.
    ///
    /// # Errors
    ///
    /// Fails on an unusable state dir, a state dir whose every
    /// generation is corrupt or was written by an incompatible run, or
    /// a non-degradable campaign error. Epoch-level failures (panics,
    /// deadline blows, lost shards) do NOT error: they degrade.
    pub fn run(&mut self) -> Result<RunReport, ServeError> {
        let config = &self.config;
        let shared = &self.shared;
        let clock = EpochClock::new(Duration::from_secs(config.epoch_virtual_secs));

        ensure_state_dir(&config.state_dir)?;
        shared.set_state(ServiceState::Recovering);
        shared.healthy.store(true, Ordering::SeqCst);

        let mut target = PopulationConfig::new(config.year, config.scale);
        target.seed = config.seed;
        target.reserved_hosts = Infra::default().addresses();
        let mut resolution = self.resolve.resolve(&target);
        let statics = resolution.seed_population();

        // Resume: verify generations newest-first, quarantining corrupt
        // ones, then fast-forward churn through the completed epochs
        // (membership is a pure function of the seed, so no scans
        // re-run).
        let ours = config.fingerprint();
        let recovery = ObservatoryCheckpoint::recover(&config.state_dir, &ours)?;
        let quarantined = recovery.quarantined.clone();
        if recovery.rollbacks() > 0 {
            shared.rollbacks_counter.add(recovery.rollbacks());
        }
        let mut resumed_from = None;
        match recovery.checkpoint {
            Some(checkpoint) => {
                resumed_from = Some(checkpoint.epochs_done);
                *shared.tables.write() = checkpoint.tables;
            }
            None if !recovery.incompatible.is_empty() => {
                return Err(ServeError::IncompatibleCheckpoint(format!(
                    "state dir {} was written by a different run ({}); \
                     move it aside or change --state-dir",
                    config.state_dir.display(),
                    recovery.incompatible[0].display(),
                )));
            }
            None if !recovery.quarantined.is_empty() => {
                return Err(ServeError::CorruptState(format!(
                    "every checkpoint generation in {} failed verification and was \
                     quarantined as *.corrupt; restarting from epoch 0 would silently \
                     discard history — point --state-dir at a fresh directory to start over",
                    config.state_dir.display(),
                )));
            }
            None => {}
        }
        let start_epoch = resumed_from.unwrap_or(0);

        let mut members: BTreeMap<Ipv4Addr, PlannedResolver> = BTreeMap::new();
        let mut classes: BTreeMap<Ipv4Addr, ProfileClass> = BTreeMap::new();
        for epoch in 0..start_epoch {
            while let Some(update) = resolution.poll_update(epoch) {
                apply_update(update, &mut members, &mut classes);
            }
        }

        shared.epochs_completed.store(start_epoch, Ordering::SeqCst);
        shared
            .population
            .store(members.len() as u64, Ordering::SeqCst);
        shared.set_state(ServiceState::Ready);

        let mut sabotage_left = config.sabotage.map_or(0, |plan| plan.failures);
        let mut epochs_degraded = 0u64;
        let mut epochs_completed = start_epoch;
        let result = loop {
            if config.epochs.is_some_and(|limit| epochs_completed >= limit) {
                break Ok(());
            }
            if shared.shutdown_requested() {
                break Ok(());
            }
            let epoch = epochs_completed;

            let prev_classes = classes.clone();
            let (mut joins, mut leaves, mut drifts) = (0u64, 0u64, 0u64);
            while let Some(update) = resolution.poll_update(epoch) {
                match apply_update(update, &mut members, &mut classes) {
                    Applied::Join => joins += 1,
                    Applied::Leave => leaves += 1,
                    Applied::Drift => drifts += 1,
                    Applied::Ignored => {}
                }
            }

            // ---- supervised campaign round: attempt, retry once with
            // the identical seed, then degrade ----
            let mut round = None;
            for attempt in 0..2u32 {
                let sabotaged =
                    config.sabotage.is_some_and(|plan| plan.epoch == epoch) && sabotage_left > 0;
                if sabotaged {
                    sabotage_left -= 1;
                }
                match self.run_round(epoch, &statics, &members, sabotaged) {
                    Ok(result) => {
                        round = Some(result);
                        break;
                    }
                    Err(message) => {
                        if attempt == 0 {
                            shared.retries_counter.inc();
                            eprintln!("epoch {epoch} attempt failed ({message}); retrying");
                        } else {
                            eprintln!("epoch {epoch} retry failed ({message}); degrading");
                        }
                    }
                }
            }

            let row = match &round {
                Some(round) => {
                    let mut transitions = TransitionMatrix::default();
                    let mut class_counts: BTreeMap<String, u64> = BTreeMap::new();
                    for (addr, class) in &classes {
                        transitions.record(prev_classes.get(addr).copied(), *class);
                        *class_counts.entry(class.as_str().to_string()).or_insert(0) += 1;
                    }
                    let breakdown = round.table3_measured().0;
                    let rcodes = round.table6_measured();
                    let (nx_w, nx_wo) = rcodes.get(Rcode::NXDomain);
                    let (ref_w, ref_wo) = rcodes.get(Rcode::Refused);
                    EpochRow {
                        epoch,
                        virtual_day: clock.days_at(epoch),
                        population: members.len() as u64,
                        joins,
                        leaves,
                        drifts,
                        r2: breakdown.total(),
                        without_answer: breakdown.wo,
                        correct: breakdown.w_corr,
                        incorrect: breakdown.w_incorr,
                        err_pct: breakdown.err_pct(),
                        nxdomain: nx_w + nx_wo,
                        refused: ref_w + ref_wo,
                        malicious: round.table9_measured().total_r2(),
                        class_counts,
                        transitions,
                        degraded: false,
                    }
                }
                None => {
                    // Degraded epoch: the scan never produced a usable
                    // round. Membership still advanced (churn is pure),
                    // so the population is conserved in the `skip`
                    // pseudo-row at each member's current class; scan
                    // counts stay zero.
                    let mut transitions = TransitionMatrix::default();
                    let mut class_counts: BTreeMap<String, u64> = BTreeMap::new();
                    for class in classes.values() {
                        transitions.record_skip(*class);
                        *class_counts.entry(class.as_str().to_string()).or_insert(0) += 1;
                    }
                    EpochRow {
                        epoch,
                        virtual_day: clock.days_at(epoch),
                        population: members.len() as u64,
                        joins,
                        leaves,
                        drifts,
                        r2: 0,
                        without_answer: 0,
                        correct: 0,
                        incorrect: 0,
                        err_pct: 0.0,
                        nxdomain: 0,
                        refused: 0,
                        malicious: 0,
                        class_counts,
                        transitions,
                        degraded: true,
                    }
                }
            };
            shared.tables.write().absorb_epoch(row);

            epochs_completed += 1;
            shared
                .epochs_completed
                .store(epochs_completed, Ordering::SeqCst);
            shared
                .population
                .store(members.len() as u64, Ordering::SeqCst);
            shared.epochs_gauge.set(epochs_completed);
            shared.population_gauge.set(members.len() as u64);
            if epoch > 0 {
                shared.joins_counter.add(joins);
            }
            shared.leaves_counter.add(leaves);
            shared.drifts_counter.add(drifts);
            match round {
                Some(round) => {
                    shared
                        .materialized_gauge
                        .set(round.materialized_hosts() as u64);
                    shared.rounds_counter.inc();
                    if let Some(snapshot) = round.telemetry() {
                        shared.campaign_telemetry.lock().absorb(snapshot);
                    }
                    shared.set_state(ServiceState::Ready);
                }
                None => {
                    epochs_degraded += 1;
                    shared.degraded_counter.inc();
                    shared.set_state(ServiceState::Degraded);
                }
            }

            if config.checkpoint_every > 0 && epochs_completed % config.checkpoint_every == 0 {
                self.flush_generation(epochs_completed)?;
            }
            wait_interval(shared, config.interval);
        };

        // Final flush happens even on an error path: the completed
        // epochs are valid and resumable.
        let checkpoint_path = self.flush_generation(epochs_completed)?;
        shared.set_state(ServiceState::Stopping);
        shared.healthy.store(false, Ordering::SeqCst);
        result.map(|()| RunReport {
            epochs_completed,
            resumed_from,
            checkpoint_path,
            quarantined,
            epochs_degraded,
        })
    }

    /// One supervised campaign attempt for `epoch`: builds the round's
    /// population (members interned against the shared pool table),
    /// runs the campaign under `catch_unwind`, and maps every failure
    /// mode — panic, campaign error, shard-incomplete result — to an
    /// `Err` so the epoch supervisor can retry or degrade uniformly.
    fn run_round(
        &self,
        epoch: u64,
        statics: &orscope_resolver::population::Population,
        members: &BTreeMap<Ipv4Addr, PlannedResolver>,
        sabotaged: bool,
    ) -> Result<CampaignResult, String> {
        let config = &self.config;
        let bus = Arc::clone(self.shared.bus());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if sabotaged {
                panic!("sabotaged epoch attempt");
            }
            // The epoch membership re-enters the compact representation
            // here: each member's (owned) policy is interned against
            // the shared pool table, so a round's storage stays ~10
            // bytes per host no matter how large the membership grows.
            // For the built-in churn model every policy is already a
            // pool profile and interning allocates nothing new.
            let mut population = statics.clone();
            let table = Arc::make_mut(&mut population.table);
            let mut resolvers = HostList::with_capacity(members.len());
            for member in members.values() {
                let profile = table.intern(member.policy.clone());
                let country = table.intern_country(member.country);
                resolvers.push(member.addr, profile, country);
            }
            population.resolvers = resolvers;

            let mut campaign_config = CampaignConfig::new(config.year, config.scale)
                .with_seed(
                    config
                        .seed
                        .wrapping_add(epoch.wrapping_mul(EPOCH_SEED_STRIDE)),
                )
                .with_shards(config.shards)
                .with_telemetry(config.telemetry);
            if let Some(deadline) = config.epoch_deadline_virtual_secs {
                campaign_config =
                    campaign_config.with_virtual_deadline(Duration::from_secs(deadline));
            }
            Campaign::new(campaign_config)
                .with_bus(bus)
                .run_with_population(population)
        }));
        match outcome {
            Ok(Ok(round)) => {
                if round.is_partial() {
                    // A shard is missing, so the counts depend on the
                    // shard layout; absorbing them would break
                    // byte-invariance. Treat like any other failure.
                    let report = round
                        .degraded()
                        .map(ToString::to_string)
                        .unwrap_or_default();
                    Err(format!("shard-incomplete result: {}", report.trim_end()))
                } else {
                    Ok(round)
                }
            }
            Ok(Err(err)) => Err(err.to_string()),
            Err(panic) => Err(panic_message(&panic)),
        }
    }

    fn flush_generation(&self, epochs_done: u64) -> Result<PathBuf, ServeError> {
        let checkpoint = ObservatoryCheckpoint {
            fingerprint: self.config.fingerprint(),
            epochs_done,
            tables: self.shared.tables.read().clone(),
        };
        Ok(checkpoint.save_generation(&self.config.state_dir, self.config.keep_generations)?)
    }
}

/// Creates the state dir if needed and proves it is a writable
/// directory, so a bad `--state-dir` fails at startup with a clear
/// message instead of after the first epoch's worth of work.
fn ensure_state_dir(dir: &Path) -> Result<(), ServeError> {
    std::fs::create_dir_all(dir)
        .map_err(|err| ServeError::StateDir(format!("cannot create {}: {err}", dir.display())))?;
    if !dir.is_dir() {
        return Err(ServeError::StateDir(format!(
            "{} exists but is not a directory",
            dir.display()
        )));
    }
    let probe = dir.join(".write-probe.tmp");
    std::fs::write(&probe, b"probe")
        .and_then(|()| std::fs::remove_file(&probe))
        .map_err(|err| ServeError::StateDir(format!("{} is not writable: {err}", dir.display())))
}

/// Best-effort text of a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        format!("panic: {message}")
    } else if let Some(message) = panic.downcast_ref::<String>() {
        format!("panic: {message}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// What applying one update did to the membership table.
enum Applied {
    Join,
    Leave,
    Drift,
    Ignored,
}

fn apply_update(
    update: Update,
    members: &mut BTreeMap<Ipv4Addr, PlannedResolver>,
    classes: &mut BTreeMap<Ipv4Addr, ProfileClass>,
) -> Applied {
    match update {
        Update::Add(planned) => {
            classes.insert(planned.addr, planned.policy.class());
            members.insert(planned.addr, *planned);
            Applied::Join
        }
        Update::Remove(addr) => {
            if members.remove(&addr).is_some() {
                classes.remove(&addr);
                Applied::Leave
            } else {
                Applied::Ignored
            }
        }
        Update::Drift { addr, to } => match members.get_mut(&addr) {
            Some(member) => {
                member.policy = *to;
                classes.insert(addr, member.policy.class());
                Applied::Drift
            }
            None => Applied::Ignored,
        },
    }
}

/// Sleeps `interval` in short slices, returning early on shutdown.
fn wait_interval(shared: &ObservatoryShared, interval: Duration) {
    let mut remaining = interval;
    while !remaining.is_zero() && !shared.shutdown_requested() {
        let slice = remaining.min(Duration::from_millis(20));
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "orscope-observatory-test-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(label: &str) -> ServeConfig {
        let mut config = ServeConfig::new(Year::Y2018, 60_000.0);
        config.epochs = Some(3);
        config.state_dir = scratch(label);
        config
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut bad = config("validate");
        bad.shards = 0;
        assert!(matches!(
            Observatory::new(bad).err(),
            Some(ServeError::InvalidConfig(_))
        ));
        let mut zero_epochs = config("validate2");
        zero_epochs.epochs = Some(0);
        assert!(Observatory::new(zero_epochs).is_err());
        let mut zero_keep = config("validate3");
        zero_keep.keep_generations = 0;
        assert!(Observatory::new(zero_keep).is_err());
        let mut zero_deadline = config("validate4");
        zero_deadline.epoch_deadline_virtual_secs = Some(0);
        assert!(Observatory::new(zero_deadline).is_err());
    }

    #[test]
    fn runs_the_configured_number_of_epochs() {
        let mut observatory = Observatory::new(config("runs")).unwrap();
        let shared = observatory.shared();
        assert_eq!(shared.state(), ServiceState::Starting);
        let report = observatory.run().unwrap();
        assert_eq!(report.epochs_completed, 3);
        assert_eq!(report.resumed_from, None);
        assert_eq!(report.epochs_degraded, 0);
        assert!(report.quarantined.is_empty());
        assert_eq!(shared.epochs_completed(), 3);
        assert!(!shared.is_healthy(), "unhealthy after final flush");
        assert_eq!(shared.state(), ServiceState::Stopping);
        assert!(!shared.is_ready());
        let tables = shared.tables_bytes();
        assert!(!tables.is_empty());
        assert!(report.checkpoint_path.exists());
        std::fs::remove_dir_all(&observatory.config().state_dir).unwrap();
    }

    #[test]
    fn transition_rows_sum_to_population_every_epoch() {
        let mut observatory = Observatory::new(config("conserve")).unwrap();
        let shared = observatory.shared();
        observatory.run().unwrap();
        let tables = shared.tables.read();
        assert_eq!(tables.epochs().len(), 3);
        for row in tables.epochs() {
            assert_eq!(
                row.transitions.total(),
                row.population,
                "epoch {}: every member must land in exactly one cell",
                row.epoch
            );
            assert!(row.population > 0);
            assert!(row.r2 > 0, "epoch {} campaign saw responses", row.epoch);
        }
        drop(tables);
        std::fs::remove_dir_all(&observatory.config().state_dir).unwrap();
    }

    #[test]
    fn incompatible_checkpoint_is_refused() {
        let dir = scratch("refuse");
        let mut first = config("refuse");
        first.state_dir = dir.clone();
        first.epochs = Some(1);
        Observatory::new(first.clone()).unwrap().run().unwrap();
        let mut reseeded = first;
        reseeded.seed = 999;
        let err = Observatory::new(reseeded).unwrap().run().unwrap_err();
        assert!(
            matches!(err, ServeError::IncompatibleCheckpoint(_)),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_before_first_epoch_still_flushes_a_checkpoint() {
        let mut config = config("early-shutdown");
        config.epochs = None;
        let mut observatory = Observatory::new(config).unwrap();
        observatory.shared().request_shutdown();
        let report = observatory.run().unwrap();
        assert_eq!(report.epochs_completed, 0);
        assert!(report.checkpoint_path.exists());
        std::fs::remove_dir_all(&observatory.config().state_dir).unwrap();
    }

    #[test]
    fn state_dir_under_a_file_is_a_startup_error() {
        let blocker = std::env::temp_dir().join(format!(
            "orscope-observatory-blocker-{}",
            std::process::id()
        ));
        std::fs::write(&blocker, b"in the way").unwrap();
        let mut bad = config("statedir");
        bad.state_dir = blocker.join("nested");
        let err = Observatory::new(bad).unwrap().run().unwrap_err();
        assert!(matches!(err, ServeError::StateDir(_)), "{err}");
        std::fs::remove_file(&blocker).unwrap();
    }

    #[test]
    fn sabotaged_epoch_degrades_after_one_retry() {
        let mut sabotaged = config("sabotage");
        sabotaged.sabotage = Some(EpochSabotage {
            epoch: 1,
            failures: 2,
        });
        let mut observatory = Observatory::new(sabotaged).unwrap();
        let shared = observatory.shared();
        let report = observatory.run().unwrap();
        assert_eq!(report.epochs_completed, 3, "run survived the bad epoch");
        assert_eq!(report.epochs_degraded, 1);
        let tables = shared.tables_snapshot();
        let row = &tables.epochs()[1];
        assert!(row.degraded);
        assert_eq!(row.r2, 0);
        assert_eq!(row.transitions.total(), row.population, "conserved");
        assert!(!tables.epochs()[0].degraded);
        assert!(!tables.epochs()[2].degraded);
        std::fs::remove_dir_all(&observatory.config().state_dir).unwrap();
    }
}
